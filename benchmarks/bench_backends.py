"""Evaluation backends — model vs measured rank agreement and tuning cost.

The hybrid backend's whole premise (the paper's Section 4.3) is that the
analytical model is a good *pruning* device: it need not predict absolute
milliseconds, but its ranking of candidates must correlate with reality well
enough that the true winner survives into the measured top-K.  This harness
quantifies that premise:

* **rank correlation** — evaluate one shared candidate set under ``model:``
  and under ``measure-py:`` and report Spearman's rho between the two
  rankings (1.0 = identical order), plus where the measured winner landed in
  the model's ranking (the "would top-K have kept it?" number);
* **tune wall-time** — time one complete ``autotune`` request per backend
  (``model:``, ``measure-py:``, ``hybrid:model>measure-py``) over the same
  space, showing what the measured re-ranking actually costs on top of pure
  model pricing.

Runs standalone for CI smoke checks::

    PYTHONPATH=src python benchmarks/bench_backends.py --quick
"""

from __future__ import annotations

import argparse
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import pytest

from repro.autotune import (
    ConfigurationEvaluator,
    ConfigurationSpace,
    SpaceOptions,
    autotune,
)
from repro.compiler import CompilationSession
from repro.kernels import build_matmul_program
from repro.telemetry.history import spearman_rho

from conftest import DEFAULT_SEED, print_series

SPACE = SpaceOptions(
    thread_counts=(16, 32),
    block_counts=(4, 8),
    tile_candidates_per_geometry=3,
)
FAST_PY = "measure-py:warmup=0,repeat=3,trim=0.34"
HYBRID = f"hybrid:model>{FAST_PY}?top=4"


def rank_correlation(size: int) -> Dict[str, object]:
    """Price one shared candidate set under both backends; Spearman over times."""
    program = build_matmul_program(size, size, size)
    session = CompilationSession(program)
    space = ConfigurationSpace(program, space_options=SPACE, session=session)
    candidates = space.enumerate()

    model_eval = ConfigurationEvaluator(program, session=session, seed=DEFAULT_SEED)
    measured_eval = ConfigurationEvaluator(
        program, session=session, seed=DEFAULT_SEED, backend=FAST_PY
    )
    pairs = []
    for config in candidates:
        model = model_eval.evaluate(config)
        measured = measured_eval.evaluate(config)
        if model.feasible and measured.feasible:
            pairs.append((model.time_ms, measured.time_ms, config))
    model_times = [p[0] for p in pairs]
    measured_times = [p[1] for p in pairs]
    rho = spearman_rho(model_times, measured_times)

    # where does the measured winner sit in the model's ranking?
    measured_winner = min(range(len(pairs)), key=lambda i: measured_times[i])
    model_rank_of_winner = 1 + sum(
        1 for t in model_times if t < model_times[measured_winner]
    )
    return {
        "candidates": len(pairs),
        "spearman_rho": rho,
        "winner_model_rank": model_rank_of_winner,
    }


def tune_walltime(size: int, history: Optional[str] = None) -> List[Dict[str, object]]:
    """One complete autotune request per backend over the same space.

    When ``history`` names a store path every request also appends its
    :class:`~repro.telemetry.history.HistoryRecord` there, so the bench's
    winner trend can be read back for ``BENCH_history.json``.
    """
    rows: List[Dict[str, object]] = []
    for label, backend in (("model", "model:"), ("measure-py", FAST_PY), ("hybrid", HYBRID)):
        program = build_matmul_program(size, size, size)
        start = time.perf_counter()
        report = autotune(
            program, space_options=SPACE, seed=DEFAULT_SEED, backend=backend,
            history=history,
        )
        elapsed = time.perf_counter() - start
        rows.append(
            {
                "backend": label,
                "wall_s": elapsed,
                "evaluations": len(report.results),
                "best_ms": report.best.time_ms,
                "best_kind": report.best.measurement_kind,
            }
        )
    return rows


# -- pytest entry points -----------------------------------------------------------
@pytest.mark.parametrize("size", [16])
def test_rank_correlation_is_well_formed(size: int) -> None:
    stats = rank_correlation(size)
    assert stats["candidates"] >= 4
    assert -1.0 <= stats["spearman_rho"] <= 1.0
    assert 1 <= stats["winner_model_rank"] <= stats["candidates"]
    # NOTE: the *value* of rho at interpreter-measured toy sizes is reported,
    # not asserted — Python wall time at 16^3 barely separates mappings, so
    # the ranking is noise-dominated there; the number becomes meaningful at
    # the sizes `main()` runs (and with the measure-c backend)


def test_spearman_helper_matches_known_values() -> None:
    assert spearman_rho([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)
    assert spearman_rho([1, 2, 3], [30, 20, 10]) == pytest.approx(-1.0)
    assert spearman_rho([1, 1, 2], [1, 1, 2]) == pytest.approx(1.0)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Model vs measured backend rank agreement and tuning cost."
    )
    parser.add_argument("--size", type=int, default=24, help="matmul problem size")
    parser.add_argument(
        "--quick", action="store_true", help="small problem size for CI smoke runs"
    )
    parser.add_argument(
        "--json",
        metavar="OUT",
        default=None,
        help="merge results + telemetry counters into OUT (e.g. BENCH_telemetry.json)",
    )
    args = parser.parse_args(argv)
    size = 16 if args.quick else args.size

    stats = rank_correlation(size)
    print_series(
        f"model vs measure-py rank agreement (matmul {size}^3)",
        [stats],
    )
    with tempfile.TemporaryDirectory(prefix="bench-backends-") as scratch:
        history = str(Path(scratch) / "history.jsonl") if args.json else None
        rows = tune_walltime(size, history=history)
        print_series(f"per-backend tune wall-time (matmul {size}^3)", rows)
        print(
            f"\nspearman rho {stats['spearman_rho']:.2f} over {stats['candidates']} "
            f"candidates; measured winner sits at model rank {stats['winner_model_rank']}"
        )
        if args.json:
            from conftest import write_bench_history, write_bench_json

            write_bench_json(
                args.json,
                "bench_backends",
                {"size": size, "rank_agreement": stats, "tune_walltime": rows},
            )
            print(f"json -> {args.json}")
            history_out = str(Path(args.json).with_name("BENCH_history.json"))
            write_bench_history(history_out, "bench_backends", history)
            print(f"history json -> {history_out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
