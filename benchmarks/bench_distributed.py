"""The distributed-GEMM acceptance bench: schedules, asymmetry, history gate.

Three sections, mirroring the ISSUE-9 acceptance criteria:

* **asymmetry** — the link model at the Snippet 3 operating point (4×4
  sub-grid, 56³ problem): broadcast must sustain ~0.868 words/cycle,
  gather ~0.298, a ≥ 2.5× per-byte gather-vs-broadcast gap.
* **compute-bound** — tune a 64³ SUMMA GEMM; the winner must be the
  pipelined schedule with ≥ 50% of its panel broadcasts hidden under
  compute, and the blocking-vs-pipelined winner gap is reported.
* **gather-bound** — tune a (212, 216, 4) GEMM whose D2H collection of C
  dominates; the winner must be a blocking mapping whose C tile is larger
  than the best pipelined candidate's (the footprint of the pipeline's
  panel buffers prices the overlap out of the tight mapping).

Runs standalone for CI::

    PYTHONPATH=src python benchmarks/bench_distributed.py --quick --json BENCH_distributed.json

With ``--history FILE`` every tuning round appends one
:class:`~repro.telemetry.history.HistoryRecord`, so two bench invocations
give the ``history check`` regression sentinel a comparable window per
(kernel, variant, spec, backend) group.
"""

from __future__ import annotations

import argparse
from typing import Dict, List, Optional, Sequence

from repro.autotune import SpaceOptions, autotune
from repro.distmodel import LinkModel, broadcast_cost, gather_cost
from repro.kernels import build_distributed_gemm_program
from repro.machine import GridSpec, WSE2_GRID
from repro.telemetry.history import open_history

from conftest import print_series, write_bench_history, write_bench_json

#: the compute-bound SUMMA shape: deep k, overlap pays
COMPUTE_BOUND = (64, 64, 64)
#: the gather-bound shape: huge C, k=4 — the contended D2H drain dominates
GATHER_BOUND = (212, 216, 4)
#: a smaller fabric for the gather-bound shape — same link calibration, but a
#: distinct variant, so the two shapes land in separate history groups and the
#: regression gate compares like with like
SMALL_GRID = GridSpec(name="4x4 host-port fabric (modelled)", grid_p=4)


def link_asymmetry() -> Dict[str, float]:
    """The Snippet 3 calibration check: per-byte H2D vs contended D2H."""
    link = LinkModel.from_grid(WSE2_GRID)
    words_out, words_back, p = 56 * 56 * 2, 56 * 56, 4
    broadcast = broadcast_cost(link, words_out, p)
    gather = gather_cost(link, words_back, p)
    out_rate = words_out / broadcast
    back_rate = words_back / gather
    return {
        "broadcast_cycles": round(broadcast, 1),
        "gather_cycles": round(gather, 1),
        "broadcast_words_per_cycle": round(out_rate, 3),
        "gather_words_per_cycle": round(back_rate, 3),
        "per_byte_asymmetry": round(out_rate / back_rate, 3),
    }


def _best_of_schedule(report, schedule: str):
    candidates = [
        r
        for r in report.results
        if r.feasible and r.configuration.extras_dict.get("schedule") == schedule
    ]
    return min(candidates, key=lambda r: (r.time_ms, r.configuration.key())) if candidates else None


def tune_shape(shape, grid, history, candidates: int) -> Dict[str, object]:
    """Tune one SUMMA shape and report the blocking-vs-pipelined outcome."""
    m, n, k = shape
    report = autotune(
        build_distributed_gemm_program(m, n, k),
        grid=grid,
        space_options=SpaceOptions(tile_candidates_per_geometry=candidates),
        history=history,
    )
    best = report.best
    extras = best.configuration.extras_dict
    tiles = dict(best.configuration.tile_sizes)
    metadata = best.measurement.metadata
    blocking = _best_of_schedule(report, "blocking")
    pipelined = _best_of_schedule(report, "pipelined")
    loser = blocking if extras["schedule"] == "pipelined" else pipelined
    gap_pct = (
        100.0 * (loser.time_ms - best.time_ms) / best.time_ms if loser else None
    )
    row: Dict[str, object] = {
        "shape": f"{m}x{n}x{k}",
        "winner_schedule": extras["schedule"],
        "winner_grid_p": extras["grid_p"],
        "winner_depth": extras["depth"],
        "winner_tiles": tiles,
        "winner_ms": round(best.time_ms, 6),
        "winner_cycles": round(metadata["cycles"], 1),
        "hidden_fraction": round(metadata["hidden_fraction"], 3),
        "schedule_gap_pct": round(gap_pct, 2) if gap_pct is not None else None,
        "best_blocking_ms": round(blocking.time_ms, 6) if blocking else None,
        "best_pipelined_ms": round(pipelined.time_ms, 6) if pipelined else None,
        "evaluations": report.num_evaluations,
    }
    # area of the winner's C tile vs the best mapping of the losing schedule
    if loser is not None:
        loser_tiles = dict(loser.configuration.tile_sizes)
        row["winner_c_tile"] = _c_tile_area(tiles)
        row["loser_c_tile"] = _c_tile_area(loser_tiles)
    return row


def _c_tile_area(tiles: Dict[str, int]) -> int:
    mt, nt, _kt = (tiles[name] for name in ("i", "j", "k"))
    return mt * nt


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Distributed-GEMM schedule/asymmetry acceptance bench."
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="fewer tile candidates per geometry (CI-sized run)",
    )
    parser.add_argument(
        "--json", metavar="OUT", default=None,
        help="merge results (and telemetry counters) into this JSON file",
    )
    parser.add_argument(
        "--history", metavar="FILE", default=None,
        help="append one HistoryRecord per tuning round to this JSONL store",
    )
    args = parser.parse_args(argv)
    candidates = 2 if args.quick else 6
    history = open_history(args.history)

    asymmetry = link_asymmetry()
    print_series("Snippet-3 link asymmetry (4x4 grid, 56^3)", [asymmetry])

    rows: List[Dict[str, object]] = [
        tune_shape(COMPUTE_BOUND, WSE2_GRID, history, candidates),
        tune_shape(GATHER_BOUND, SMALL_GRID, history, candidates),
    ]
    printable = [
        {k: v for k, v in row.items() if k not in ("winner_tiles",)} for row in rows
    ]
    print_series("SUMMA schedule selection", printable)

    compute_row, gather_row = rows
    failures: List[str] = []
    if asymmetry["per_byte_asymmetry"] < 2.5:
        failures.append(
            f"gather-vs-broadcast per-byte asymmetry "
            f"{asymmetry['per_byte_asymmetry']} < 2.5"
        )
    if compute_row["winner_schedule"] != "pipelined":
        failures.append("compute-bound shape did not pick the pipelined schedule")
    if compute_row["hidden_fraction"] < 0.5:
        failures.append(
            f"pipelined schedule hid only {compute_row['hidden_fraction']} "
            "of its panel broadcasts (< 0.5)"
        )
    if gather_row["winner_schedule"] != "blocking":
        failures.append("gather-bound shape did not pick the blocking schedule")
    if gather_row.get("winner_c_tile", 0) <= gather_row.get("loser_c_tile", 0):
        failures.append("gather-bound winner's C tile is not larger")

    if args.json:
        write_bench_json(
            args.json,
            "bench_distributed",
            {
                "asymmetry": asymmetry,
                "compute_bound": compute_row,
                "gather_bound": gather_row,
                "grid": WSE2_GRID.name,
            },
        )
        if args.history:
            write_bench_history(
                args.json.replace(".json", "_history.json"),
                "bench_distributed",
                args.history,
            )
        print(f"json -> {args.json}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(
        "distributed acceptance: all criteria met — "
        f"asymmetry {asymmetry['per_byte_asymmetry']}x, "
        f"pipelined hides {compute_row['hidden_fraction']:.0%} on "
        f"{compute_row['shape']}, blocking wins {gather_row['shape']} "
        f"by {gather_row['schedule_gap_pct']}%"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
