"""Shared helpers for the figure-reproduction benchmarks.

Each ``bench_fig*`` module regenerates one figure of the paper's evaluation
(Section 6): it sweeps the same configurations, prints the series the figure
plots (modelled milliseconds instead of measured milliseconds — see DESIGN.md
for the testbed substitution) and asserts the qualitative shape the paper
reports.  ``pytest-benchmark`` times the pricing function itself, which keeps
the harness honest about its own cost while the printed table carries the
reproduced result.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

#: single source of truth for every randomised benchmark input (problem-size
#: generation, array contents), so benchmark runs are reproducible
DEFAULT_SEED = 2008


def print_series(title: str, rows: Iterable[Dict[str, object]]) -> None:
    """Print one figure's data as an aligned table."""
    rows = list(rows)
    if not rows:
        return
    headers = list(rows[0].keys())
    widths = {h: max(len(str(h)), max(len(_fmt(r[h])) for r in rows)) for h in headers}
    print(f"\n=== {title} ===")
    print("  ".join(str(h).ljust(widths[h]) for h in headers))
    for row in rows:
        print("  ".join(_fmt(row[h]).ljust(widths[h]) for h in headers))


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def telemetry_counters() -> Dict[str, float]:
    """Flatten the process-wide metrics registry for a benchmark JSON payload.

    Labelled samples render in Prometheus selector syntax
    (``repro_stage_runs_total{stage="tiling"}``) so the JSON stays greppable.
    """
    from repro.telemetry import METRICS, parse_prometheus_text

    flat: Dict[str, float] = {}
    for name, samples in parse_prometheus_text(METRICS.render()).items():
        for labels, value in samples.items():
            rendered = ",".join(f'{key}="{val}"' for key, val in labels)
            flat[f"{name}{{{rendered}}}" if rendered else name] = value
    return flat


def write_bench_json(path: str, section: str, payload: Dict[str, object]) -> None:
    """Merge one benchmark's results (plus telemetry counters) into ``path``.

    Each harness writes its own section, so several benches can share one
    ``BENCH_telemetry.json`` artifact in CI.
    """
    import json
    import os

    document: Dict[str, object] = {}
    if os.path.exists(path):
        with open(path, "r", encoding="utf-8") as handle:
            try:
                document = json.load(handle)
            except ValueError:
                document = {}
    document[section] = {"results": payload, "telemetry": telemetry_counters()}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def write_bench_history(path: str, section: str, history_path: str) -> None:
    """Summarise a tuning-history store into ``path`` (``BENCH_history.json``).

    Reads the JSONL history the bench appended to and writes, per
    (kernel, variant, spec, backend) group, the winner-time trend (oldest → newest)
    plus the percentile rollup — the repo's machine-readable perf
    trajectory.  Same one-section-per-bench merge discipline as
    :func:`write_bench_json`.
    """
    import json
    import os

    from repro.telemetry.history import HistoryStore, group_records, rollup

    store = HistoryStore(history_path)
    records = store.records()
    trends: Dict[str, object] = {}
    for key, group in sorted(group_records(records).items()):
        ordered = sorted(group, key=lambda r: r.ts)
        label = "|".join(part for part in key if part)
        trends[label] = {
            "kernel": key[0],
            "variant": key[1],
            "spec": key[2],
            "backend": key[3],
            "winner_ms": [round(r.winner_ms, 6) for r in ordered],
            "evaluations": [r.evaluations for r in ordered],
            "rho": [r.rho for r in ordered],
            "best_ms": round(min(r.winner_ms for r in ordered), 6),
        }

    document: Dict[str, object] = {}
    if os.path.exists(path):
        with open(path, "r", encoding="utf-8") as handle:
            try:
                document = json.load(handle)
            except ValueError:
                document = {}
    document[section] = {
        "records": len(records),
        "trends": trends,
        "rollup": rollup(records),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
