"""Fig. 5 — 1-D Jacobi execution time vs. problem size (8 K … 512 K elements).

Same three configurations as Fig. 4, with the paper's Jacobi setup: 4096 time
iterations, time tile 32, 64 threads per block.  Expected shape: scratchpad
staging beats the DRAM-only version by roughly an order of magnitude (paper:
~10×) and the CPU is slowest.
"""

from __future__ import annotations

import pytest

from repro import simulate_cpu, simulate_gpu
from repro.kernels import JACOBI_PROBLEM_SIZES, JacobiWorkloadModel

from conftest import print_series

SIZES = ["8k", "16k", "32k", "64k", "128k", "256k", "512k"]


def _row(label: str):
    size = JACOBI_PROBLEM_SIZES[label]
    # Small problems keep one space tile per block; larger ones are tiled down
    # to the (space 256, time 32) configuration the Section-4.3 search selects
    # (Fig. 8) so that the staged data fits the per-block scratchpad budget.
    per_block = -(-size // 128)
    space_tile = per_block if per_block <= 256 else 256
    model = JacobiWorkloadModel(
        size=size,
        time_steps=4096,
        num_blocks=128,
        threads_per_block=64,
        time_tile=32,
        space_tile=space_tile,
    )
    spm = simulate_gpu(
        f"jacobi-{label}-spm",
        model.block_workload(True),
        model.geometry(True),
        model.global_sync_rounds(True),
    )
    dram = simulate_gpu(
        f"jacobi-{label}-dram",
        model.block_workload(False),
        model.geometry(False),
        model.global_sync_rounds(False),
    )
    cpu = simulate_cpu(f"jacobi-{label}-cpu", model.cpu_workload())
    return {
        "problem": label,
        "gpu_no_scratchpad_ms": dram.time_ms,
        "gpu_scratchpad_ms": spm.time_ms,
        "cpu_ms": cpu.time_ms,
        "spm_speedup": dram.time_ms / spm.time_ms,
        "cpu_speedup": cpu.time_ms / spm.time_ms,
    }


@pytest.fixture(scope="module")
def figure5_rows():
    rows = [_row(label) for label in SIZES]
    print_series("Fig. 5: 1-D Jacobi execution time vs problem size (modelled ms)", rows)
    return rows


def test_fig5_shape(figure5_rows):
    for row in figure5_rows:
        assert row["gpu_scratchpad_ms"] < row["gpu_no_scratchpad_ms"] < row["cpu_ms"]
        assert row["spm_speedup"] >= 3, "scratchpad staging must clearly win"
        assert row["cpu_speedup"] > 10, "paper reports ~15x over the CPU"
    # At the larger, scratchpad-limited sizes the staging advantage sits in the
    # order-of-magnitude band the paper reports (~10x).
    for row in figure5_rows:
        if row["problem"] in ("64k", "128k", "256k", "512k"):
            assert 5 <= row["spm_speedup"] <= 30
    times = [row["gpu_scratchpad_ms"] for row in figure5_rows]
    assert times == sorted(times)


def test_fig5_benchmark(benchmark, figure5_rows):
    benchmark(lambda: _row("512k"))
