"""Fig. 7 — 1-D Jacobi execution time vs. number of thread blocks (N = 8 K–32 K).

For problem sizes that fit entirely in the device's aggregate scratchpad, the
paper varies the number of thread blocks and observes a U-shaped curve: more
blocks first improves performance (more parallelism), then hurts once the
per-block work is too small to hide the cross-block synchronisation cost.
"""

from __future__ import annotations

import pytest

from repro import simulate_gpu
from repro.kernels import JACOBI_PROBLEM_SIZES, JacobiWorkloadModel

from conftest import print_series

BLOCK_COUNTS = [4, 8, 16, 32, 64, 128, 192, 256]
SIZES = ["8k", "16k", "32k"]


def _time_for(size_label: str, num_blocks: int) -> float:
    size = JACOBI_PROBLEM_SIZES[size_label]
    per_block = -(-size // num_blocks)
    model = JacobiWorkloadModel(
        size=size,
        time_steps=4096,
        num_blocks=num_blocks,
        threads_per_block=64,
        time_tile=32,
        space_tile=min(per_block, 256),
    )
    report = simulate_gpu(
        f"jacobi-{size_label}-{num_blocks}b",
        model.block_workload(True),
        model.geometry(True),
        model.global_sync_rounds(True),
    )
    return report.time_ms


@pytest.fixture(scope="module")
def figure7_rows():
    rows = []
    for blocks in BLOCK_COUNTS:
        row = {"thread_blocks": blocks}
        for label in SIZES:
            row[f"N={label}"] = _time_for(label, blocks)
        rows.append(row)
    print_series(
        "Fig. 7: 1-D Jacobi time vs number of thread blocks (modelled ms)", rows
    )
    return rows


def test_fig7_more_blocks_helps_initially(figure7_rows):
    """Going from few blocks to a moderate count reduces execution time."""
    for label in SIZES:
        series = [row[f"N={label}"] for row in figure7_rows]
        assert series[1] <= series[0] * 1.001


def test_fig7_larger_problems_benefit_from_more_blocks(figure7_rows):
    """The optimal block count grows (or stays) with the problem size."""
    optima = {}
    for label in SIZES:
        series = {row["thread_blocks"]: row[f"N={label}"] for row in figure7_rows}
        optima[label] = min(series, key=series.get)
    assert optima["8k"] <= optima["32k"]


def test_fig7_sync_cost_dominates_eventually():
    """With a very high block count and a tiny problem, adding blocks stops helping."""
    tiny_few = _time_for("8k", 64)
    tiny_many = _time_for("8k", 256)
    assert tiny_many >= tiny_few * 0.95, (
        "per-block work at 256 blocks is too small for extra blocks to keep paying off"
    )


def test_fig7_benchmark(benchmark):
    benchmark(lambda: _time_for("32k", 128))
