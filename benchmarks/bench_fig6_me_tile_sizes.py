"""Fig. 6 — MPEG-4 ME execution time for varying tile sizes (8 M … 64 M pixels).

The paper compares six candidate sub-tile sizes and reports that the
(32, 16, 16, 16) tile chosen by the Section-4.3 search is the best at every
problem size.  This harness reprices the same candidates on the machine model
and additionally runs the tile-size search on the cost model to check that it
selects a tile whose modelled time is within a few percent of the best
candidate.
"""

from __future__ import annotations

import pytest

from repro import simulate_gpu
from repro.kernels import ME_PROBLEM_SIZES, MEWorkloadModel, build_me_program
from repro.tiling.cost_model import DataMovementCostModel
from repro.tiling.tile_search import TileSearchProblem, search_tile_sizes

from conftest import print_series

TILE_CANDIDATES = [
    (8, 8, 16, 16),
    (16, 8, 16, 16),
    (16, 16, 16, 16),
    (32, 16, 16, 16),
    (32, 32, 16, 16),
    (64, 16, 16, 16),
]
SIZES = ["8M", "16M", "64M"]
ME_PROBLEM_SIZES.setdefault("8M", (4096, 2048))


def _time_for(label: str, tile):
    height, width = ME_PROBLEM_SIZES[label]
    model = MEWorkloadModel(height, width, num_blocks=32, threads_per_block=256)
    if model.subtile_footprint_bytes(tile) > 16 * 1024:
        return None
    report = simulate_gpu(
        f"me-{label}-{tile}", model.block_workload(tile, True), model.geometry(tile, True)
    )
    return report.time_ms


@pytest.fixture(scope="module")
def figure6_rows():
    rows = []
    for label in SIZES:
        row = {"problem": label}
        for tile in TILE_CANDIDATES:
            time_ms = _time_for(label, tile)
            row[f"tile {tile}"] = time_ms if time_ms is not None else float("nan")
        rows.append(row)
    print_series("Fig. 6: Mpeg4 ME execution time for varying tile sizes (modelled ms)", rows)
    return rows


def test_fig6_search_tile_is_best(figure6_rows):
    """The tile the paper's search selects, (32,16,16,16), is best (or ties)."""
    for row in figure6_rows:
        feasible = {
            tile: row[f"tile {tile}"]
            for tile in TILE_CANDIDATES
            if row[f"tile {tile}"] == row[f"tile {tile}"]  # not NaN
        }
        best_tile = min(feasible, key=feasible.get)
        assert feasible[(32, 16, 16, 16)] <= feasible[best_tile] * 1.05


def test_fig6_tile_search_agrees_with_model():
    """Run the actual Section-4.3 search (on a scaled-down frame for speed)."""
    program = build_me_program(256, 256, window=16)
    cost_model = DataMovementCostModel(
        program=program,
        tile_loops=["i", "j", "k", "l"],
        loop_extents={"i": 256, "j": 256, "k": 16, "l": 16},
        threads=256,
        sync_cost=8.0,
        transfer_cost=4.0,
    )
    result = search_tile_sizes(
        TileSearchProblem(cost_model=cost_model, memory_limit_bytes=16 * 1024, min_parallelism=256)
    )
    assert result.feasible
    assert result.footprint_bytes <= 16 * 1024
    # The chosen tile must be at least as good (per the cost model) as the
    # paper's hand-enumerated candidates that fit in the scratchpad.
    candidate_costs = [
        cost_model.movement_cost(dict(zip(["i", "j", "k", "l"], tile)))
        for tile in TILE_CANDIDATES
        if cost_model.footprint_bytes(dict(zip(["i", "j", "k", "l"], tile))) <= 16 * 1024
    ]
    assert result.cost <= min(candidate_costs) * 1.05


def test_fig6_benchmark(benchmark):
    benchmark(lambda: _time_for("16M", (32, 16, 16, 16)))
