"""Fig. 8 — 1-D Jacobi execution time for larger problem sizes (64 K – 512 K)
and varying (time, space) tile sizes.

The paper fixes 128 thread blocks and 64 threads, limits the active scratchpad
per block to 2^11 bytes, and reports that the (space 256, time 32) tile chosen
by the tile-size search is the best configuration for every problem size.
"""

from __future__ import annotations

import pytest

from repro import simulate_gpu
from repro.kernels import JACOBI_PROBLEM_SIZES, JacobiWorkloadModel

from conftest import print_series

#: (time tile, space tile) candidates of the paper's Fig. 8.
TILE_CANDIDATES = [(32, 64), (32, 128), (16, 256), (32, 256), (64, 256)]
SIZES = ["64k", "128k", "256k", "512k"]
MEMORY_LIMIT_BYTES = 2 ** 11


def _time_for(size_label: str, time_tile: int, space_tile: int):
    size = JACOBI_PROBLEM_SIZES[size_label]
    model = JacobiWorkloadModel(
        size=size,
        time_steps=4096,
        num_blocks=128,
        threads_per_block=64,
        time_tile=time_tile,
        space_tile=space_tile,
    )
    report = simulate_gpu(
        f"jacobi-{size_label}-t{time_tile}-s{space_tile}",
        model.block_workload(True),
        model.geometry(True),
        model.global_sync_rounds(True),
    )
    return report.time_ms, model.shared_bytes_per_block()


@pytest.fixture(scope="module")
def figure8_rows():
    rows = []
    for size_label in SIZES:
        row = {"problem": size_label}
        for time_tile, space_tile in TILE_CANDIDATES:
            time_ms, _ = _time_for(size_label, time_tile, space_tile)
            row[f"tile {time_tile},{space_tile}"] = time_ms
        rows.append(row)
    print_series(
        "Fig. 8: 1-D Jacobi time for varying (time, space) tile sizes (modelled ms)",
        rows,
    )
    return rows


def test_fig8_search_tile_is_best(figure8_rows):
    """The paper's search result (time 32, space 256) wins at every size."""
    for row in figure8_rows:
        times = {tile: row[f"tile {tile[0]},{tile[1]}"] for tile in TILE_CANDIDATES}
        best = min(times, key=times.get)
        assert times[(32, 256)] <= times[best] * 1.05


def test_fig8_larger_space_tiles_reduce_copy_overhead(figure8_rows):
    """Within a fixed time tile, growing the space tile reduces modelled time."""
    for row in figure8_rows:
        assert row["tile 32,256"] <= row["tile 32,64"]


def test_fig8_memory_constraint_respected():
    """The selected configuration fits the 2^11-byte per-block limit of the paper."""
    _, shared_bytes = _time_for("512k", 32, 256)
    # The paper describes the limit as 2^11 bytes (2^9 words); our staged
    # buffer is double-buffered, so compare against twice that figure.
    assert shared_bytes <= 2 * MEMORY_LIMIT_BYTES


def test_fig8_benchmark(benchmark):
    benchmark(lambda: _time_for("512k", 32, 256))
