"""Ablation benchmarks (extensions beyond the paper's figures).

* ABL1 — δ-threshold of Algorithm 1: how the staging decision changes with the
  overlap-volume threshold.
* ABL2 — hoisting of copy code out of redundant loops (Section 4.2): effect on
  the data-movement cost model.
* ABL3 — dependence-based copy minimisation (Section 3.1.4, left as future
  work in the paper): effect on copy volumes, with semantics preserved.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ir import ProgramBuilder
from repro.kernels import build_conv2d_program, build_me_program
from repro.runtime import run_program
from repro.scratchpad import ScratchpadManager, ScratchpadOptions
from repro.tiling.cost_model import DataMovementCostModel

from conftest import DEFAULT_SEED, print_series


# -- ABL1: delta threshold ------------------------------------------------------------
@pytest.fixture(scope="module")
def delta_rows():
    program = build_conv2d_program(16, 16, kernel=3)
    rows = []
    for delta in (0.1, 0.3, 0.6):
        plan = ScratchpadManager(
            ScratchpadOptions(target="gpu", delta=delta, param_binding={})
        ).plan(program)
        rows.append(
            {
                "delta": delta,
                "staged_buffers": len(plan.buffers),
                "skipped": len(plan.skipped),
                "footprint_bytes": plan.total_footprint_bytes(),
            }
        )
    print_series("ABL1: Algorithm-1 delta threshold (conv2d 16x16)", rows)
    return rows


def test_abl1_delta_monotone(delta_rows):
    staged = [row["staged_buffers"] for row in delta_rows]
    assert staged == sorted(staged, reverse=True), "higher delta stages fewer partitions"
    assert delta_rows[0]["staged_buffers"] >= 2


def test_abl1_benchmark(benchmark):
    program = build_conv2d_program(8, 8, kernel=3)
    benchmark(
        lambda: ScratchpadManager(
            ScratchpadOptions(target="gpu", delta=0.3, param_binding={})
        ).plan(program)
    )


# -- ABL2: hoisting -------------------------------------------------------------------
@pytest.fixture(scope="module")
def hoisting_rows():
    program = build_me_program(64, 64, window=16)
    rows = []
    for hoisting in (False, True):
        model = DataMovementCostModel(
            program=program,
            tile_loops=["i", "j", "k", "l"],
            loop_extents={"i": 64, "j": 64, "k": 16, "l": 16},
            threads=64,
            sync_cost=8.0,
            transfer_cost=4.0,
            hoisting=hoisting,
        )
        tile = {"i": 32, "j": 16, "k": 16, "l": 16}
        details = model.buffer_details(tile)
        rows.append(
            {
                "hoisting": hoisting,
                "movement_cost": model.movement_cost(tile),
                "total_occurrences": sum(d["occurrences"] for d in details),
            }
        )
    print_series("ABL2: copy-code hoisting (Section 4.2) on the ME cost model", rows)
    return rows


def test_abl2_hoisting_reduces_cost(hoisting_rows):
    without, with_hoisting = hoisting_rows
    assert with_hoisting["movement_cost"] <= without["movement_cost"]
    assert with_hoisting["total_occurrences"] <= without["total_occurrences"]


def test_abl2_benchmark(benchmark, hoisting_rows):
    program = build_me_program(32, 32, window=8)
    model = DataMovementCostModel(
        program=program,
        tile_loops=["i", "j", "k", "l"],
        loop_extents={"i": 32, "j": 32, "k": 8, "l": 8},
        threads=64,
        sync_cost=8.0,
        transfer_cost=4.0,
    )
    benchmark(lambda: model.movement_cost({"i": 16, "j": 16, "k": 8, "l": 8}))


# -- ABL3: liveness-based copy minimisation -----------------------------------------------
def _producer_consumer_program():
    b = ProgramBuilder("prodcons")
    A = b.array("A", (32,))
    T = b.array("T", (32,))
    B = b.array("B", (32,))
    i = b.var("i")
    with b.loop("i", 0, 31):
        b.assign(T[i], A[i] * 2, name="produce")
    with b.loop("i2", 0, 31):
        b.assign(B[b.var("i2")], T[b.var("i2")] + 1, name="consume")
    return b.build()


@pytest.fixture(scope="module")
def liveness_rows():
    program = _producer_consumer_program()
    rows = []
    for liveness in (False, True):
        manager = ScratchpadManager(
            ScratchpadOptions(
                target="cell", liveness=liveness, live_out=["B"], param_binding={}
            )
        )
        plan = manager.plan(program)
        rows.append(
            {
                "liveness": liveness,
                "copy_in_elements": plan.volume_in({}),
                "copy_out_elements": plan.volume_out({}),
            }
        )
    print_series("ABL3: Section-3.1.4 copy minimisation (producer/consumer)", rows)
    return rows


def test_abl3_liveness_reduces_copy_volume(liveness_rows):
    without, with_liveness = liveness_rows
    assert with_liveness["copy_in_elements"] < without["copy_in_elements"]
    assert with_liveness["copy_out_elements"] < without["copy_out_elements"]


def test_abl3_liveness_preserves_semantics():
    program = _producer_consumer_program()
    manager = ScratchpadManager(
        ScratchpadOptions(target="cell", liveness=True, live_out=["B"], param_binding={})
    )
    transformed, _ = manager.apply(program)
    data = np.random.default_rng(DEFAULT_SEED).random(32)
    reference = run_program(program, inputs={"A": data.copy()})
    staged = run_program(transformed, inputs={"A": data.copy()})
    assert np.allclose(reference.data("B"), staged.data("B"))


def test_abl3_benchmark(benchmark):
    program = _producer_consumer_program()
    manager = ScratchpadManager(
        ScratchpadOptions(target="cell", liveness=True, live_out=["B"], param_binding={})
    )
    benchmark(lambda: manager.plan(program))
