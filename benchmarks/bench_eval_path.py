"""The ISSUE-8 evaluation fast path — reuse counters and wall-time proof.

Three sections, one per fast-path layer:

* **compile-cache** — a cold ``measure-c:`` tune followed by the identical
  warm tune against one on-disk binary cache; the
  ``repro_compile_cache_total`` deltas prove the warm request performs
  ≥ 80% fewer ``cc`` invocations (it performs zero).  Skipped cleanly on
  toolchain-less hosts.
* **vectorised lower-py** — rank-order one explicit matmul candidate set
  (long innermost k-loops, where vectorisation matters) under
  ``vectorize=off`` and ``vectorize=on``; both must crown the same winner
  while the vectorised pass does it ≥ 3x faster.
* **artifact-cache** — two identical ``autotune`` requests sharing an
  :class:`~repro.compiler.ArtifactCache`; the second runs the analysis pass
  zero times (``repro_artifact_cache_total{outcome="hit"}``).

Runs standalone for CI::

    PYTHONPATH=src python benchmarks/bench_eval_path.py --quick --json BENCH_eval_path.json

With ``--history FILE`` the scalar/vectorised tunes append two rounds of
:class:`~repro.telemetry.history.HistoryRecord` per backend, giving the
``history check`` regression sentinel a comparable window over the
evaluation path's wall time.
"""

from __future__ import annotations

import argparse
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import pytest

from repro.autotune import ConfigurationEvaluator, SpaceOptions, autotune
from repro.autotune.space import Configuration
from repro.codegen.compile_cache import COMPILE_CACHE_TOTAL
from repro.codegen.toolchain import c_toolchain_skip_reason
from repro.compiler import ArtifactCache, counting_stage_runs
from repro.compiler.artifact_cache import ARTIFACT_CACHE_TOTAL
from repro.kernels import build_matmul_program

from conftest import DEFAULT_SEED, print_series

#: one geometry, no scratchpad branch — keeps the measure-c space tiny
C_SPACE = SpaceOptions(
    thread_counts=(16,),
    block_counts=(4,),
    scratchpad_choices=(False,),
    tile_candidates_per_geometry=2,
)
MODEL_SPACE = SpaceOptions(
    thread_counts=(64,), block_counts=(16,), tile_candidates_per_geometry=2
)


def compile_cache_reuse(size: int, cache_dir: str) -> Dict[str, object]:
    """Cold vs warm ``measure-c:`` tune against one shared binary cache."""
    backend = f"measure-c:warmup=0,repeat=1,cache={cache_dir}"

    def cc_invocations() -> float:
        # every cache miss is exactly one ``cc`` run; hits are zero
        return COMPILE_CACHE_TOTAL.value(outcome="miss")

    before = cc_invocations()
    autotune(
        build_matmul_program(size, size, size),
        space_options=C_SPACE,
        backend=backend,
        seed=DEFAULT_SEED,
    )
    cold = cc_invocations() - before
    autotune(
        build_matmul_program(size, size, size),
        space_options=C_SPACE,
        backend=backend,
        seed=DEFAULT_SEED,
    )
    warm = cc_invocations() - before - cold
    reduction = 100.0 * (1.0 - warm / cold) if cold else 0.0
    return {
        "cold_cc_invocations": int(cold),
        "warm_cc_invocations": int(warm),
        "reduction_pct": reduction,
        "cache_hits": int(COMPILE_CACHE_TOTAL.value(outcome="hit")),
    }


def _long_k_candidates(size: int) -> List[Configuration]:
    """Matmul mappings whose innermost (k) loop is long — where numpy pays.

    Exactly one candidate skips the scratchpad staging copies: it is the
    structural winner under both lowerings (the copies are real extra work
    either way), so the same-winner acceptance does not hinge on timing noise
    between otherwise-equivalent geometries.
    """
    return [
        Configuration.make(4, 16, {"i": 32, "j": 32, "k": size}, False),
        Configuration.make(4, 16, {"i": 32, "j": 32, "k": size}, True),
        Configuration.make(8, 32, {"i": 32, "j": 32, "k": size}, True),
        Configuration.make(8, 32, {"i": 16, "j": 16, "k": size}, True),
    ]


def vectorised_rank_order(size: int) -> Dict[str, object]:
    """Rank one candidate set scalar vs vectorised; same winner, ≥3x faster."""
    program = build_matmul_program(size, size, size)
    candidates = _long_k_candidates(size)
    stats: Dict[str, object] = {"candidates": len(candidates)}
    winners: Dict[str, str] = {}
    for mode in ("off", "on"):
        evaluator = ConfigurationEvaluator(
            program,
            seed=DEFAULT_SEED,
            backend=f"measure-py:warmup=0,repeat=2,vectorize={mode}",
        )
        started = time.perf_counter()
        results = [evaluator.evaluate(config) for config in candidates]
        elapsed = time.perf_counter() - started
        best = min((r for r in results if r.feasible), key=lambda r: r.time_ms)
        label = "scalar" if mode == "off" else "vectorised"
        stats[f"{label}_wall_s"] = elapsed
        winners[label] = best.configuration.key()
    stats["same_winner"] = winners["scalar"] == winners["vectorised"]
    stats["winner"] = winners["vectorised"]
    stats["speedup"] = stats["scalar_wall_s"] / stats["vectorised_wall_s"]
    return stats


def tune_walltime(
    size: int, history: Optional[str], rounds: int
) -> List[Dict[str, object]]:
    """Full scalar vs vectorised tunes — the history sentinel's bench round."""
    rows: List[Dict[str, object]] = []
    for mode in ("off", "on"):
        backend = f"measure-py:warmup=0,repeat=2,vectorize={mode}"
        for _ in range(rounds):
            program = build_matmul_program(size, size, size)
            started = time.perf_counter()
            report = autotune(
                program,
                space_options=MODEL_SPACE,
                backend=backend,
                seed=DEFAULT_SEED,
                history=history,
            )
            elapsed = time.perf_counter() - started
        rows.append(
            {
                "vectorize": mode,
                "wall_s": elapsed,
                "evaluations": len(report.results),
                "best_ms": report.best.time_ms,
                "lowering": report.best.measurement.metadata["lowering"],
            }
        )
    return rows


def artifact_cache_reuse(size: int) -> Dict[str, object]:
    """Two identical requests through one artifact cache: analysis 1 then 0."""
    cache = ArtifactCache()
    hits_before = ARTIFACT_CACHE_TOTAL.value(outcome="hit")
    # counts materialise at context exit — read them only after the block
    with counting_stage_runs() as cold_runs:
        autotune(
            build_matmul_program(size, size, size),
            space_options=MODEL_SPACE,
            artifact_cache=cache,
            seed=DEFAULT_SEED,
        )
    with counting_stage_runs() as warm_runs:
        autotune(
            build_matmul_program(size, size, size),
            space_options=MODEL_SPACE,
            artifact_cache=cache,
            seed=DEFAULT_SEED,
        )
    return {
        "cold_analysis_runs": cold_runs.counts.get("analysis", 0),
        "warm_analysis_runs": warm_runs.counts.get("analysis", 0),
        "artifact_cache_hits": int(
            ARTIFACT_CACHE_TOTAL.value(outcome="hit") - hits_before
        ),
    }


# -- pytest entry points -----------------------------------------------------------
def test_artifact_cache_round_is_well_formed() -> None:
    stats = artifact_cache_reuse(16)
    assert stats["cold_analysis_runs"] == 1
    assert stats["warm_analysis_runs"] == 0
    assert stats["artifact_cache_hits"] >= 1


def test_vectorised_rank_order_keeps_the_winner() -> None:
    stats = vectorised_rank_order(32)
    assert stats["same_winner"]
    assert stats["vectorised_wall_s"] > 0
    # NOTE: the ≥3x speedup is asserted in `main()` at the full bench size —
    # at this toy size the ratio is real but noisy, so only shape is pinned


@pytest.mark.skipif(
    c_toolchain_skip_reason() is not None,
    reason=c_toolchain_skip_reason() or "C toolchain present",
)
def test_compile_cache_round_eliminates_warm_compiles(tmp_path) -> None:
    stats = compile_cache_reuse(8, str(tmp_path / "bin"))
    assert stats["cold_cc_invocations"] >= 1
    assert stats["warm_cc_invocations"] == 0
    assert stats["reduction_pct"] == 100.0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Evaluation fast path: compile/artifact cache reuse and "
        "vectorised lowering speedup."
    )
    parser.add_argument(
        "--size", type=int, default=96,
        help="matmul problem size (must be divisible by 32 — the rank-order "
        "candidates tile i/j at 32)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller spaces for CI (the vectorised section keeps the full "
        "size — the ≥3x claim is only meaningful on long innermost loops)",
    )
    parser.add_argument(
        "--json", metavar="OUT", default=None,
        help="merge results + telemetry counters into OUT",
    )
    parser.add_argument(
        "--history", metavar="FILE", default=None,
        help="append two rounds of tuning HistoryRecords to FILE for the "
        "'history check' regression gate",
    )
    args = parser.parse_args(argv)
    size = args.size
    failures: List[str] = []

    skip_reason = c_toolchain_skip_reason()
    if skip_reason is None:
        with tempfile.TemporaryDirectory(prefix="bench-eval-path-cc-") as cache_dir:
            cc_stats = compile_cache_reuse(8 if args.quick else 16, cache_dir)
        print_series("measure-c compile-cache reuse (cold vs warm tune)", [cc_stats])
        if cc_stats["reduction_pct"] < 80.0:
            failures.append(
                f"warm measure-c reduction {cc_stats['reduction_pct']:.0f}% < 80%"
            )
        print(
            f"\ncompile cache: warm request ran {cc_stats['warm_cc_invocations']} "
            f"cc invocations vs {cc_stats['cold_cc_invocations']} cold "
            f"({cc_stats['reduction_pct']:.0f}% reduction)"
        )
    else:
        cc_stats = {"skipped": skip_reason}
        print(f"\ncompile cache section skipped: {skip_reason}")

    vec_stats = vectorised_rank_order(size)
    print_series(
        f"scalar vs vectorised lower-py rank-order (matmul {size}^3)", [vec_stats]
    )
    if not vec_stats["same_winner"]:
        failures.append("scalar and vectorised paths disagree on the winner")
    if vec_stats["speedup"] < 3.0:
        failures.append(f"vectorised speedup {vec_stats['speedup']:.2f}x < 3x")
    print(
        f"\nvectorised lowering: {vec_stats['speedup']:.2f}x faster rank-order, "
        f"same winner {vec_stats['winner']}"
    )

    rounds = 2 if args.history else 1
    tune_rows = tune_walltime(24 if args.quick else size, args.history, rounds)
    print_series("scalar vs vectorised full tune (history rounds)", tune_rows)

    art_stats = artifact_cache_reuse(24 if args.quick else size)
    print_series("cross-request artifact-cache reuse", [art_stats])
    if art_stats["warm_analysis_runs"] != 0:
        failures.append(
            f"repeat request ran analysis {art_stats['warm_analysis_runs']} times"
        )
    print(
        f"\nartifact cache: repeat request ran analysis "
        f"{art_stats['warm_analysis_runs']} times "
        f"({art_stats['artifact_cache_hits']} cache hits)"
    )

    if args.json:
        from conftest import write_bench_json

        write_bench_json(
            args.json,
            "bench_eval_path",
            {
                "size": size,
                "compile_cache": cc_stats,
                "vectorised_rank_order": vec_stats,
                "tune_walltime": tune_rows,
                "artifact_cache": art_stats,
            },
        )
        print(f"json -> {args.json}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("\neval-path acceptance: all criteria met")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
