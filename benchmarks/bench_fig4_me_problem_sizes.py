"""Fig. 4 — MPEG-4 ME execution time vs. problem size (256 K … 64 M pixels).

Three configurations, as in the paper: GPU without scratchpad staging, GPU
with scratchpad staging (tile 32·16·16·16, 32 blocks, 256 threads) and the
sequential CPU.  Expected shape: the scratchpad version is roughly an order of
magnitude (paper: ~8×) faster than the DRAM-only version and more than 100×
faster than the CPU, at every problem size.
"""

from __future__ import annotations

import pytest

from repro import simulate_cpu, simulate_gpu
from repro.kernels import ME_PROBLEM_SIZES, MEWorkloadModel

from conftest import print_series

TILE = (32, 16, 16, 16)
SIZES = ["256k", "1M", "2M", "4M", "9M", "16M", "64M"]


def _row(label: str):
    height, width = ME_PROBLEM_SIZES[label]
    model = MEWorkloadModel(height, width, num_blocks=32, threads_per_block=256)
    spm = simulate_gpu(
        f"me-{label}-spm", model.block_workload(TILE, True), model.geometry(TILE, True)
    )
    dram = simulate_gpu(
        f"me-{label}-dram", model.block_workload(TILE, False), model.geometry(TILE, False)
    )
    cpu = simulate_cpu(f"me-{label}-cpu", model.cpu_workload())
    return {
        "problem": label,
        "gpu_no_scratchpad_ms": dram.time_ms,
        "gpu_scratchpad_ms": spm.time_ms,
        "cpu_ms": cpu.time_ms,
        "spm_speedup": dram.time_ms / spm.time_ms,
        "cpu_speedup": cpu.time_ms / spm.time_ms,
    }


@pytest.fixture(scope="module")
def figure4_rows():
    rows = [_row(label) for label in SIZES]
    print_series("Fig. 4: Mpeg4 ME execution time vs problem size (modelled ms)", rows)
    return rows


def test_fig4_shape(figure4_rows):
    for row in figure4_rows:
        assert row["gpu_scratchpad_ms"] < row["gpu_no_scratchpad_ms"] < row["cpu_ms"]
        assert 4 <= row["spm_speedup"] <= 16, "paper reports ~8x from scratchpad staging"
        assert row["cpu_speedup"] >= 100, "paper reports >100x over the CPU"
    times = [row["gpu_scratchpad_ms"] for row in figure4_rows]
    assert times == sorted(times), "time grows monotonically with problem size"


def test_fig4_benchmark(benchmark, figure4_rows):
    benchmark(lambda: _row("16M"))
