"""Fleet acceptance bench: exactly-once tuning and warm-hit latency percentiles.

Boots N thread-executor tuning servers *in this process*, joins them into a
consistent-hash ring over one shared sharded cache, then drives them the way
a build farm would:

* a **cold** round tunes each problem size once through whichever server the
  round-robin lands on (the ring routes it home — this is where the fleet's
  exactly-once property is earned);
* a **warm** round hammers every server from M client threads with the same
  requests and records per-request wall time — each answer is an inline
  cache hit, so the distribution is pure routing + HTTP overhead.

The headline numbers are the warm-hit p50/p90/p99 across servers x clients
and the fleet-wide tuning-run count (must equal the number of distinct
fingerprints — N servers must not mean N runs).  Standalone for CI::

    PYTHONPATH=src python benchmarks/bench_fleet.py --quick --json BENCH_fleet.json

With ``--history FILE`` every server appends its HistoryRecords there, so two
bench invocations give ``python -m repro.autotune history check`` a
comparable window per tuned group.
"""

from __future__ import annotations

import argparse
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.service import TuneRequest, TuningClient, TuningServer
from repro.telemetry import parse_prometheus_text

from conftest import print_series

SPACE = {"thread_counts": [64], "block_counts": [16], "tile_candidates_per_geometry": 2}


def _requests(sizes: Sequence[int]) -> List[TuneRequest]:
    return [
        TuneRequest(kernel="matmul", sizes={"m": m, "n": m, "k": m}, space=SPACE)
        for m in sizes
    ]


def start_fleet(
    count: int, cache_root: str, history: Optional[str], mode: str = "redirect"
) -> List[TuningServer]:
    """``count`` ringed servers sharing one sharded cache store."""
    servers = [
        TuningServer(
            port=0,
            executor="thread",
            max_workers=2,
            cache=f"dir:{cache_root}",
            history=history,
        ).start()
        for _ in range(count)
    ]
    for server in servers:
        peers = [peer.url for peer in servers if peer is not server]
        server.configure_fleet(peers, mode=mode)
    return servers


def _percentiles(samples_ms: Sequence[float]) -> Dict[str, float]:
    data = np.asarray(samples_ms, dtype=float)
    return {
        "p50_ms": float(np.percentile(data, 50)),
        "p90_ms": float(np.percentile(data, 90)),
        "p99_ms": float(np.percentile(data, 99)),
        "max_ms": float(data.max()),
        "samples": int(data.size),
    }


def run_fleet(
    servers_n: int,
    clients_m: int,
    warm_iterations: int,
    sizes: Sequence[int],
    history: Optional[str] = None,
) -> Dict[str, object]:
    """One full cold + warm round; the bench's result payload."""
    requests = _requests(sizes)
    with tempfile.TemporaryDirectory(prefix="bench-fleet-cache-") as cache_root:
        servers = start_fleet(servers_n, cache_root, history)
        try:
            clients = [TuningClient(server.url) for server in servers]

            cold_ms = []
            for index, request in enumerate(requests):
                start = time.perf_counter()
                clients[index % len(clients)].tune(request, timeout=600)
                cold_ms.append(1000 * (time.perf_counter() - start))

            # a batch ride-along: mixed priorities through one POST
            batch = [
                TuneRequest(
                    kernel="matmul",
                    sizes={"m": m, "n": m, "k": m},
                    space=SPACE,
                    priority=priority,
                )
                for m, priority in zip(sizes, ("high", "low", "normal") * len(sizes))
            ]
            batch_handles = clients[0].submit_batch(batch)
            for handle in batch_handles:
                handle.result(timeout=600)

            def warm_worker(worker: int) -> List[float]:
                latencies = []
                for i in range(warm_iterations):
                    request = requests[(worker + i) % len(requests)]
                    client = clients[(worker + i) % len(clients)]
                    start = time.perf_counter()
                    report = client.tune(request, timeout=60)
                    latencies.append(1000 * (time.perf_counter() - start))
                    assert report.from_cache, "warm round must be all cache hits"
                return latencies

            with ThreadPoolExecutor(max_workers=clients_m) as pool:
                warm_ms = [
                    sample
                    for worker in pool.map(warm_worker, range(clients_m))
                    for sample in worker
                ]

            tuning_runs = sum(
                server.service.stats()["server"]["tuning_runs"] for server in servers
            )
            redirects = sum(
                value
                for key, value in parse_prometheus_text(clients[0].metrics())
                .get("repro_fleet_redirects_total", {})
                .items()
            )
            return {
                "servers": servers_n,
                "clients": clients_m,
                "distinct_fingerprints": len(requests),
                "tuning_runs": tuning_runs,
                "fleet_redirects": redirects,
                "cold_mean_ms": float(np.mean(cold_ms)),
                "warm": _percentiles(warm_ms),
            }
        finally:
            for server in servers:
                server.stop()


# -- pytest smoke (collected by the tier-1 run) ------------------------------------
def test_fleet_bench_round_trip_quick() -> None:
    results = run_fleet(servers_n=2, clients_m=2, warm_iterations=3, sizes=[24])
    assert results["tuning_runs"] == results["distinct_fingerprints"] == 1
    warm = results["warm"]
    assert warm["samples"] == 6
    assert warm["p99_ms"] < results["cold_mean_ms"]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fleet warm-hit latency percentiles and the exactly-once gate."
    )
    parser.add_argument("--servers", type=int, default=3, help="ring size")
    parser.add_argument("--clients", type=int, default=4, help="client threads")
    parser.add_argument(
        "--iterations", type=int, default=16, help="warm requests per client"
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="2 servers x 2 clients and fewer warm iterations, for CI",
    )
    parser.add_argument(
        "--json", metavar="OUT", default=None,
        help="merge results + telemetry counters into OUT",
    )
    parser.add_argument(
        "--history", metavar="FILE", default=None,
        help="append every server's HistoryRecords to FILE for the "
        "'history check' regression gate",
    )
    args = parser.parse_args(argv)
    servers_n = 2 if args.quick else args.servers
    clients_m = 2 if args.quick else args.clients
    iterations = 6 if args.quick else args.iterations
    sizes = [32, 48] if args.quick else [32, 48, 64]

    results = run_fleet(servers_n, clients_m, iterations, sizes, args.history)
    warm = dict(results["warm"])
    print_series(
        f"fleet warm-hit latency ({servers_n} servers x {clients_m} clients)",
        [warm],
    )
    print_series(
        "fleet exactly-once accounting",
        [
            {
                "distinct_fingerprints": results["distinct_fingerprints"],
                "tuning_runs": results["tuning_runs"],
                "fleet_redirects": results["fleet_redirects"],
                "cold_mean_ms": results["cold_mean_ms"],
            }
        ],
    )

    failures: List[str] = []
    if results["tuning_runs"] != results["distinct_fingerprints"]:
        failures.append(
            f"{results['tuning_runs']} tuning runs for "
            f"{results['distinct_fingerprints']} distinct fingerprints — "
            "exactly-once does not hold fleet-wide"
        )
    if warm["p99_ms"] >= results["cold_mean_ms"]:
        failures.append(
            f"warm-hit p99 {warm['p99_ms']:.1f}ms not below the cold mean "
            f"{results['cold_mean_ms']:.1f}ms"
        )
    if warm["p99_ms"] > 1000.0:
        failures.append(f"warm-hit p99 {warm['p99_ms']:.1f}ms > 1000ms")

    if args.json:
        from conftest import write_bench_json

        write_bench_json(args.json, "bench_fleet", results)
        print(f"json -> {args.json}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(
        f"\nfleet acceptance: {results['distinct_fingerprints']} fingerprints, "
        f"{results['tuning_runs']} tuning runs, warm p99 {warm['p99_ms']:.1f}ms"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
