"""Staged compiler — session-replay speedup over the monolithic compile path.

The autotuner evaluates hundreds of configurations per tuning request.  The
old monolithic ``MappingPipeline.compile_with_config`` re-ran the
config-invariant affine analysis (dependence polyhedra, bands, loop extents)
for **every** candidate; the staged :class:`repro.compiler.CompilationSession`
freezes the analysis artifact once per request and replays only the
config-dependent stages (``tiling → scratchpad → mapping``).

This harness runs the same ≥50-candidate hill-climb twice — once through
session replay, once through the legacy cold-compile-per-candidate path
(``ConfigurationEvaluator(reuse_analysis=False)``, which performs exactly the
monolithic path's work) — and reports the measured per-request speedup.  The
stage counters are the hard evidence: the session path executes the
``analysis`` stage once while the monolith executes it once per candidate.

Runs standalone for CI smoke checks::

    PYTHONPATH=src python benchmarks/bench_compiler_stages.py --quick
"""

from __future__ import annotations

import argparse
import time
from typing import Dict, Optional, Sequence

import pytest

from repro.autotune import (
    ConfigurationEvaluator,
    ConfigurationSpace,
    RandomHillClimbSearch,
    SpaceOptions,
    make_batch_evaluator,
)
from repro.compiler import CompilationSession, counting_stage_runs
from repro.kernels import build_matmul_program

from conftest import DEFAULT_SEED, print_series

#: wide enough that the seeded hill-climb evaluates ≥ 50 candidates
SPACE = SpaceOptions(
    thread_counts=(64, 128),
    block_counts=(16, 32),
    tile_candidates_per_geometry=3,
)
STRATEGY_KNOBS = {"seed": DEFAULT_SEED, "restarts": 6, "max_steps": 8}
MIN_CANDIDATES = 50


def run_hillclimb(size: int, reuse_analysis: bool) -> Dict[str, object]:
    """One seeded hill-climb tuning request; returns timing + stage counts.

    ``reuse_analysis=False`` compiles every candidate from a cold session —
    stage-for-stage the work of the legacy monolithic
    ``compile_with_config`` path.
    """
    program = build_matmul_program(size, size, size)
    strategy = RandomHillClimbSearch(**STRATEGY_KNOBS)
    # The counted region covers the whole request — space construction (which
    # performs the request's one analysis) plus the search — matching what
    # one autotune() call does.
    with counting_stage_runs() as stage_runs:
        start = time.perf_counter()
        session = CompilationSession(program)
        space = ConfigurationSpace(program, space_options=SPACE, session=session)
        evaluator = ConfigurationEvaluator(
            program, session=session, reuse_analysis=reuse_analysis
        )
        results = strategy.run(space, make_batch_evaluator(evaluator))
        seconds = time.perf_counter() - start
    counts = dict(stage_runs.counts)
    return {
        "path": "session-replay" if reuse_analysis else "monolithic",
        "candidates": len(results),
        "seconds": seconds,
        "ms_per_candidate": 1e3 * seconds / max(len(results), 1),
        "analysis_runs": counts.get("analysis", 0),
        "tiling_runs": counts.get("tiling", 0),
        "results": results,
    }


def compare_paths(size: int) -> Dict[str, object]:
    """Run both paths on identical requests; returns rows + the speedup."""
    monolith = run_hillclimb(size, reuse_analysis=False)
    session = run_hillclimb(size, reuse_analysis=True)
    speedup = monolith["seconds"] / session["seconds"]
    return {"monolith": monolith, "session": session, "speedup": speedup}


@pytest.fixture(scope="module")
def comparison():
    data = compare_paths(size=64)
    rows = []
    for row in (data["monolith"], data["session"]):
        rows.append({k: v for k, v in row.items() if k != "results"})
    print_series("Staged compiler: monolithic vs session-replay hill-climb", rows)
    print_series(
        "Per-request speedup from analysis-artifact reuse",
        [{"speedup": f"{data['speedup']:.2f}x"}],
    )
    return data


def test_hillclimb_is_large_enough(comparison):
    """Acceptance: the tuning request evaluates at least 50 candidates."""
    assert comparison["session"]["candidates"] >= MIN_CANDIDATES
    assert comparison["monolith"]["candidates"] == comparison["session"]["candidates"]


def test_session_runs_analysis_once_per_request(comparison):
    """The stage counters prove the reuse: analysis once, not once per candidate.

    The session path's single analysis run happens when the request's shared
    session is built; the monolithic path re-analyses for every candidate.
    """
    session, monolith = comparison["session"], comparison["monolith"]
    assert session["analysis_runs"] <= 2
    assert monolith["analysis_runs"] >= monolith["candidates"]
    assert session["analysis_runs"] < monolith["analysis_runs"]
    # both paths execute the config-dependent stages once per candidate
    assert session["tiling_runs"] == monolith["tiling_runs"]


def test_session_reports_identical_results(comparison):
    """Artifact reuse must not change a single evaluation result."""
    session = [r.to_dict() for r in comparison["session"]["results"]]
    monolith = [r.to_dict() for r in comparison["monolith"]["results"]]
    assert session == monolith


def test_session_replay_is_not_slower(comparison):
    """The reused-analysis path must win (generous bound against timer noise;
    the measured speedup is printed by the fixture)."""
    assert comparison["session"]["seconds"] < comparison["monolith"]["seconds"] * 1.02


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Measure the session-replay speedup of a ≥50-candidate "
        "hill-climb tuning request over the monolithic compile path."
    )
    parser.add_argument(
        "--size", type=int, default=64, help="matmul problem size (default: 64)"
    )
    parser.add_argument(
        "--quick", action="store_true", help="small problem size for CI smoke runs"
    )
    args = parser.parse_args(argv)
    size = 32 if args.quick else args.size

    data = compare_paths(size)
    monolith, session = data["monolith"], data["session"]
    rows = [
        {k: v for k, v in row.items() if k != "results"}
        for row in (monolith, session)
    ]
    print_series("Staged compiler: monolithic vs session-replay hill-climb", rows)
    print(
        f"\nper-request speedup: {data['speedup']:.2f}x "
        f"({monolith['seconds']:.2f}s -> {session['seconds']:.2f}s over "
        f"{session['candidates']} candidates)"
    )
    print(
        f"analysis stage runs: monolithic={monolith['analysis_runs']} "
        f"session={session['analysis_runs']}"
    )
    if session["candidates"] < MIN_CANDIDATES:
        print(f"error: expected >= {MIN_CANDIDATES} candidates", flush=True)
        return 1
    if not session["analysis_runs"] < monolith["analysis_runs"]:
        print("error: session path did not reuse the analysis artifact", flush=True)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
