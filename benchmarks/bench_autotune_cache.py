"""Autotuning service — cold-vs-warm cache speedup and per-backend timings.

The persistent compilation cache is the infrastructure piece that turns the
one-shot pipeline into a service: the first tuning request pays the full
search-and-evaluate cost, every identical request afterwards is answered from
disk with zero pipeline compiles.  This harness measures both paths over a
seeded batch of matmul problem sizes and asserts the warm path is at least an
order of magnitude faster.

It also times the pluggable persistence backends (legacy single JSON file,
``dir:`` sharded store, ``log:`` append log) at put/get/warm-open, and runs
standalone for CI smoke checks::

    PYTHONPATH=src python benchmarks/bench_autotune_cache.py --quick --backend sharded

Backend-selection errors (unknown scheme, bad layout) exit non-zero.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, Optional, Sequence

import numpy as np
import pytest

from repro import COMPILE_COUNTER, TuningCache, autotune
from repro.autotune import SpaceOptions, TuningJob, autotune_batch
from repro.kernels import build_matmul_program

from conftest import DEFAULT_SEED, print_series

#: backend name → store URI template, rooted at a scratch directory
BACKEND_SPECS = {
    "json": "{root}/cache.json",
    "sharded": "dir:{root}/cache-dir",
    "log": "log:{root}/cache.log",
}

SPACE = SpaceOptions(
    thread_counts=(64, 128),
    block_counts=(16, 32),
    tile_candidates_per_geometry=2,
)


def _problem_sizes(count: int = 3):
    """Seeded random (m, n, k) triples — reproducible across runs."""
    rng = np.random.default_rng(DEFAULT_SEED)
    sizes = []
    for _ in range(count):
        m, n, k = (int(2 ** rng.integers(5, 8)) for _ in range(3))
        sizes.append((m, n, k))
    return sizes


@pytest.fixture(scope="module")
def cache_rows(tmp_path_factory):
    cache_path = tmp_path_factory.mktemp("autotune") / "cache.json"
    jobs = [
        TuningJob(build_matmul_program(m, n, k), label=f"matmul_{m}x{n}x{k}")
        for m, n, k in _problem_sizes()
    ]
    rows = []

    COMPILE_COUNTER.reset()
    start = time.perf_counter()
    cold_reports = autotune_batch(
        jobs, cache=TuningCache(cache_path), seed=DEFAULT_SEED, space_options=SPACE
    )
    cold_seconds = time.perf_counter() - start
    cold_compiles = COMPILE_COUNTER.count

    COMPILE_COUNTER.reset()
    start = time.perf_counter()
    warm_reports = autotune_batch(
        jobs, cache=TuningCache(cache_path), seed=DEFAULT_SEED, space_options=SPACE
    )
    warm_seconds = time.perf_counter() - start
    warm_compiles = COMPILE_COUNTER.count

    for cold, warm in zip(cold_reports, warm_reports):
        rows.append(
            {
                "kernel": cold.kernel_name,
                "best_ms": cold.best.time_ms,
                "baseline_ms": cold.baseline.time_ms,
                "evaluations": cold.num_evaluations,
                "warm_hit": warm.from_cache,
            }
        )
    print_series("Autotune: best configurations (modelled ms)", rows)
    print_series(
        "Autotune: cold vs warm cache",
        [
            {
                "path": "cold",
                "seconds": cold_seconds,
                "pipeline_compiles": cold_compiles,
            },
            {
                "path": "warm",
                "seconds": warm_seconds,
                "pipeline_compiles": warm_compiles,
            },
        ],
    )
    return {
        "rows": rows,
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "cold_compiles": cold_compiles,
        "warm_compiles": warm_compiles,
        "cold_reports": cold_reports,
        "warm_reports": warm_reports,
    }


def test_warm_cache_serves_without_compiling(cache_rows):
    """Every warm request is a cache hit and triggers zero pipeline compiles."""
    assert cache_rows["warm_compiles"] == 0
    assert cache_rows["cold_compiles"] > 0
    assert all(row["warm_hit"] for row in cache_rows["rows"])


def test_warm_cache_is_much_faster(cache_rows):
    """Cold tuning compiles dozens of configurations; warm reads one JSON file."""
    assert cache_rows["warm_seconds"] < cache_rows["cold_seconds"] / 10


def test_warm_report_matches_cold(cache_rows):
    """The cached report is byte-identical to the freshly computed one."""
    for cold, warm in zip(cache_rows["cold_reports"], cache_rows["warm_reports"]):
        assert warm.best.to_dict() == cold.best.to_dict()
        assert warm.fingerprint == cold.fingerprint


def test_tuned_never_worse_than_baseline(cache_rows):
    """Acceptance: modelled time of the winner ≤ the seed pipeline's default."""
    for report in cache_rows["cold_reports"]:
        assert report.best.time_ms <= report.baseline.time_ms


def test_parallel_matches_serial_report():
    """max_workers > 1 must produce the identical TuningReport."""
    program = build_matmul_program(64, 64, 64)
    serial = autotune(program, space_options=SPACE, max_workers=1, seed=DEFAULT_SEED)
    parallel = autotune(program, space_options=SPACE, max_workers=4, seed=DEFAULT_SEED)
    assert parallel.to_dict() == serial.to_dict()


def test_cold_tuning_benchmark(benchmark):
    program = build_matmul_program(64, 64, 64)
    small = SpaceOptions(
        thread_counts=(64,), block_counts=(16,), tile_candidates_per_geometry=2
    )
    benchmark(lambda: autotune(program, space_options=small, seed=DEFAULT_SEED))


# -- per-backend store microbenchmarks ---------------------------------------------
def _payload(index: int, size: int) -> Dict[str, object]:
    """A report-shaped value of roughly ``size`` JSON bytes."""
    return {"index": index, "blob": "x" * size, "best": {"time_ms": float(index)}}


def run_backend_microbench(
    backend: str, root: Path, entries: int = 64, payload_bytes: int = 512
) -> Dict[str, object]:
    """Put/get/warm-open timings of one backend; raises on selection errors."""
    spec = BACKEND_SPECS[backend].format(root=root)
    cache = TuningCache(spec)
    if cache.backend not in ("json", "sharded", "log"):
        raise RuntimeError(f"{spec!r} selected unexpected backend {cache.backend!r}")

    start = time.perf_counter()
    for i in range(entries):
        cache.put(f"fingerprint-{i:05d}", _payload(i, payload_bytes))
    put_seconds = time.perf_counter() - start

    start = time.perf_counter()
    for i in range(entries):
        assert cache.get(f"fingerprint-{i:05d}") is not None
    get_seconds = time.perf_counter() - start

    # warm open: a fresh instance (new process in production) answering one hit
    start = time.perf_counter()
    warm = TuningCache(spec)
    assert warm.get(f"fingerprint-{entries - 1:05d}") is not None
    warm_hit_seconds = time.perf_counter() - start

    stats = warm.stats()
    return {
        "backend": cache.backend,
        "entries": entries,
        "put_ms_per_entry": 1e3 * put_seconds / entries,
        "get_ms_per_entry": 1e3 * get_seconds / entries,
        "warm_open_hit_ms": 1e3 * warm_hit_seconds,
        "store_bytes": stats["bytes"],
    }


@pytest.mark.parametrize("backend", sorted(BACKEND_SPECS))
def test_backend_microbench_smoke(backend, tmp_path):
    """Every backend completes the put/get/warm-hit loop and stays consistent."""
    row = run_backend_microbench(backend, tmp_path, entries=16, payload_bytes=128)
    assert row["store_bytes"] > 0
    print_series(f"Cache store microbench ({backend})", [row])


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Time the tuning-cache persistence backends at put/get/warm-hit."
    )
    parser.add_argument(
        "--backend",
        default="all",
        choices=["all", *sorted(BACKEND_SPECS)],
        help="which store backend to exercise (default: all)",
    )
    parser.add_argument(
        "--entries", type=int, default=256, help="entries to put/get per backend"
    )
    parser.add_argument(
        "--payload-bytes", type=int, default=2048, help="approx JSON bytes per entry"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small sizes for CI smoke runs (64 entries of 256 bytes)",
    )
    parser.add_argument(
        "--json",
        metavar="OUT",
        default=None,
        help="merge results + telemetry counters into OUT (e.g. BENCH_telemetry.json)",
    )
    args = parser.parse_args(argv)
    entries = 64 if args.quick else args.entries
    payload = 256 if args.quick else args.payload_bytes
    backends = sorted(BACKEND_SPECS) if args.backend == "all" else [args.backend]
    rows = []
    for backend in backends:
        with tempfile.TemporaryDirectory(prefix=f"bench-cache-{backend}-") as root:
            try:
                rows.append(run_backend_microbench(backend, Path(root), entries, payload))
            except Exception as error:  # backend selection/IO failure fails the job
                print(f"error: backend {backend!r} failed: {error}", file=sys.stderr)
                return 1
    print_series("Cache store microbench (per-backend put/get/warm-hit)", rows)
    if args.json:
        from conftest import write_bench_history, write_bench_json

        write_bench_json(
            args.json,
            "bench_autotune_cache",
            {"entries": entries, "payload_bytes": payload, "stores": rows},
        )
        print(f"json -> {args.json}")

        # one cold + one warm request against the same cache, both recorded in
        # a history store, so BENCH_history.json shows the hit/miss pair
        with tempfile.TemporaryDirectory(prefix="bench-cache-history-") as root:
            history = str(Path(root) / "history.jsonl")
            cache = TuningCache(str(Path(root) / "cache.json"))
            small = SpaceOptions(
                thread_counts=(64,), block_counts=(16,), tile_candidates_per_geometry=2
            )
            program = build_matmul_program(32, 32, 32)
            for _ in range(2):
                autotune(
                    program,
                    space_options=small,
                    seed=DEFAULT_SEED,
                    cache=cache,
                    history=history,
                )
            history_out = str(Path(args.json).with_name("BENCH_history.json"))
            write_bench_history(history_out, "bench_autotune_cache", history)
            print(f"history json -> {history_out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
