"""Autotuning service — cold-vs-warm cache speedup and parallel evaluation.

The persistent compilation cache is the infrastructure piece that turns the
one-shot pipeline into a service: the first tuning request pays the full
search-and-evaluate cost, every identical request afterwards is answered from
disk with zero pipeline compiles.  This harness measures both paths over a
seeded batch of matmul problem sizes and asserts the warm path is at least an
order of magnitude faster.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import COMPILE_COUNTER, TuningCache, autotune
from repro.autotune import SpaceOptions, TuningJob, autotune_batch
from repro.kernels import build_matmul_program

from conftest import DEFAULT_SEED, print_series

SPACE = SpaceOptions(
    thread_counts=(64, 128),
    block_counts=(16, 32),
    tile_candidates_per_geometry=2,
)


def _problem_sizes(count: int = 3):
    """Seeded random (m, n, k) triples — reproducible across runs."""
    rng = np.random.default_rng(DEFAULT_SEED)
    sizes = []
    for _ in range(count):
        m, n, k = (int(2 ** rng.integers(5, 8)) for _ in range(3))
        sizes.append((m, n, k))
    return sizes


@pytest.fixture(scope="module")
def cache_rows(tmp_path_factory):
    cache_path = tmp_path_factory.mktemp("autotune") / "cache.json"
    jobs = [
        TuningJob(build_matmul_program(m, n, k), label=f"matmul_{m}x{n}x{k}")
        for m, n, k in _problem_sizes()
    ]
    rows = []

    COMPILE_COUNTER.reset()
    start = time.perf_counter()
    cold_reports = autotune_batch(
        jobs, cache=TuningCache(cache_path), seed=DEFAULT_SEED, space_options=SPACE
    )
    cold_seconds = time.perf_counter() - start
    cold_compiles = COMPILE_COUNTER.count

    COMPILE_COUNTER.reset()
    start = time.perf_counter()
    warm_reports = autotune_batch(
        jobs, cache=TuningCache(cache_path), seed=DEFAULT_SEED, space_options=SPACE
    )
    warm_seconds = time.perf_counter() - start
    warm_compiles = COMPILE_COUNTER.count

    for cold, warm in zip(cold_reports, warm_reports):
        rows.append(
            {
                "kernel": cold.kernel_name,
                "best_ms": cold.best.time_ms,
                "baseline_ms": cold.baseline.time_ms,
                "evaluations": cold.num_evaluations,
                "warm_hit": warm.from_cache,
            }
        )
    print_series("Autotune: best configurations (modelled ms)", rows)
    print_series(
        "Autotune: cold vs warm cache",
        [
            {
                "path": "cold",
                "seconds": cold_seconds,
                "pipeline_compiles": cold_compiles,
            },
            {
                "path": "warm",
                "seconds": warm_seconds,
                "pipeline_compiles": warm_compiles,
            },
        ],
    )
    return {
        "rows": rows,
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "cold_compiles": cold_compiles,
        "warm_compiles": warm_compiles,
        "cold_reports": cold_reports,
        "warm_reports": warm_reports,
    }


def test_warm_cache_serves_without_compiling(cache_rows):
    """Every warm request is a cache hit and triggers zero pipeline compiles."""
    assert cache_rows["warm_compiles"] == 0
    assert cache_rows["cold_compiles"] > 0
    assert all(row["warm_hit"] for row in cache_rows["rows"])


def test_warm_cache_is_much_faster(cache_rows):
    """Cold tuning compiles dozens of configurations; warm reads one JSON file."""
    assert cache_rows["warm_seconds"] < cache_rows["cold_seconds"] / 10


def test_warm_report_matches_cold(cache_rows):
    """The cached report is byte-identical to the freshly computed one."""
    for cold, warm in zip(cache_rows["cold_reports"], cache_rows["warm_reports"]):
        assert warm.best.to_dict() == cold.best.to_dict()
        assert warm.fingerprint == cold.fingerprint


def test_tuned_never_worse_than_baseline(cache_rows):
    """Acceptance: modelled time of the winner ≤ the seed pipeline's default."""
    for report in cache_rows["cold_reports"]:
        assert report.best.time_ms <= report.baseline.time_ms


def test_parallel_matches_serial_report():
    """max_workers > 1 must produce the identical TuningReport."""
    program = build_matmul_program(64, 64, 64)
    serial = autotune(program, space_options=SPACE, max_workers=1, seed=DEFAULT_SEED)
    parallel = autotune(program, space_options=SPACE, max_workers=4, seed=DEFAULT_SEED)
    assert parallel.to_dict() == serial.to_dict()


def test_cold_tuning_benchmark(benchmark):
    program = build_matmul_program(64, 64, 64)
    small = SpaceOptions(
        thread_counts=(64,), block_counts=(16,), tile_candidates_per_geometry=2
    )
    benchmark(lambda: autotune(program, space_options=small, seed=DEFAULT_SEED))
