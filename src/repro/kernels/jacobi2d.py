"""2-D Jacobi stencil — the polybench-style 5-point sweep.

``B[i][j] = (A[i][j] + A[i-1][j] + A[i+1][j] + A[i][j-1] + A[i][j+1]) / 5``
over the interior of a padded grid: the classic heat-equation relaxation
step (polybench's ``jacobi-2d``, one sweep).  Neighbouring output points
share four of their five input reads, so the kernel exercises the same
overlap-volume analysis as :mod:`repro.kernels.conv2d` but with a sparse
cross-shaped footprint instead of a dense window — the single-device
scenario-diversity widening ROADMAP item 5 asks for alongside the
distributed family.
"""

from __future__ import annotations

from repro.ir.builder import ProgramBuilder
from repro.ir.program import Program


def build_jacobi2d_program(height: int, width: int) -> Program:
    """One 5-point Jacobi sweep over the ``height×width`` interior."""
    if height <= 2 or width <= 2:
        raise ValueError("height and width must exceed 2")
    builder = ProgramBuilder("jacobi2d")
    a = builder.array("A", (height + 2, width + 2))
    b = builder.array("B", (height + 2, width + 2))
    i, j = builder.var("i"), builder.var("j")
    with builder.loop("i", 1, height):
        with builder.loop("j", 1, width):
            builder.assign(
                b[i, j],
                (a[i, j] + a[i - 1, j] + a[i + 1, j] + a[i, j - 1] + a[i, j + 1]) / 5,
                name="sweep2d",
            )
    return builder.build()
