"""2-D convolution — a stencil-like workload with constant reuse.

``Out[i][j] = Σ_{k,l} In[i+k][j+l] · W[k][l]``: the input-window accesses of
neighbouring output points overlap heavily, exercising both the
order-of-magnitude reuse test (the weight array) and the overlap-volume test
of Algorithm 1.
"""

from __future__ import annotations

from repro.ir.builder import ProgramBuilder
from repro.ir.program import Program


def build_conv2d_program(height: int, width: int, kernel: int = 3) -> Program:
    """``Out (H×W) = In ((H+K)×(W+K)) ⊛ W (K×K)`` as an IR program."""
    if min(height, width, kernel) <= 0:
        raise ValueError("dimensions must be positive")
    builder = ProgramBuilder("conv2d")
    image = builder.array("In", (height + kernel, width + kernel))
    weights = builder.array("W", (kernel, kernel))
    out = builder.array("Out", (height, width))
    i, j, k, l = (builder.var(name) for name in ("i", "j", "k", "l"))
    with builder.loop("i", 0, height - 1):
        with builder.loop("j", 0, width - 1):
            with builder.loop("k", 0, kernel - 1):
                with builder.loop("l", 0, kernel - 1):
                    builder.assign(
                        out[i, j],
                        image[i + k, j + l] * weights[k, l],
                        reduction="+",
                        name="conv_update",
                    )
    return builder.build()
