"""Evaluation workloads (paper Section 6) expressed with the public API.

* :mod:`repro.kernels.mpeg4_me` — MPEG-4 motion estimation (no cross-block
  synchronisation; Figs. 4 and 6);
* :mod:`repro.kernels.jacobi1d` — 1-D Jacobi, time-tiled with concurrent start
  (cross-block synchronisation every time tile; Figs. 5, 7 and 8);
* :mod:`repro.kernels.matmul`, :mod:`repro.kernels.conv2d` — additional
  workloads used by examples, tests and the ablation benchmarks.

Each kernel module provides (a) a builder returning an IR program for
functional verification at small sizes and (b) a workload model producing the
:class:`~repro.machine.gpu.BlockWorkload` / launch geometry for the large
problem sizes of the paper's figures.
"""

from repro.kernels.mpeg4_me import (
    ME_PROBLEM_SIZES,
    MEWorkloadModel,
    build_me_program,
)
from repro.kernels.jacobi1d import (
    JACOBI_PROBLEM_SIZES,
    JacobiWorkloadModel,
    build_jacobi_sweep_program,
    build_jacobi_time_program,
)
from repro.kernels.matmul import build_matmul_program
from repro.kernels.conv2d import build_conv2d_program
from repro.kernels.jacobi2d import build_jacobi2d_program
from repro.kernels.distributed_gemm import build_distributed_gemm_program
from repro.kernels.registry import (
    TunableKernel,
    available_kernels,
    get_kernel,
    register_kernel,
)

__all__ = [
    "TunableKernel",
    "available_kernels",
    "get_kernel",
    "register_kernel",
    "ME_PROBLEM_SIZES",
    "MEWorkloadModel",
    "build_me_program",
    "JACOBI_PROBLEM_SIZES",
    "JacobiWorkloadModel",
    "build_jacobi_sweep_program",
    "build_jacobi_time_program",
    "build_matmul_program",
    "build_conv2d_program",
    "build_jacobi2d_program",
    "build_distributed_gemm_program",
]
