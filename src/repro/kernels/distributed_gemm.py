"""Distributed SUMMA GEMM — the multi-PE kernel family.

The program itself is the plain ``C += A·B`` triple loop (identical
semantics to :mod:`repro.kernels.matmul`, so interpreter spot-checks and
the staged compiler keep working unchanged); what makes the family
*distributed* is its tuning space: a :class:`repro.machine.GridSpec`
attached to the registry entry turns the autotuner's configuration space
into mappings onto a P×P PE grid — sub-grid size, Mt/Nt/Kt tiles,
blocking-vs-pipelined panel broadcasts and pipeline depth — priced by
:mod:`repro.distmodel` instead of the single-GPU model.
"""

from __future__ import annotations

from repro.ir.builder import ProgramBuilder
from repro.ir.program import Program


def build_distributed_gemm_program(m: int, n: int, k: int) -> Program:
    """``C (m×n) += A (m×k) · B (k×n)``, named for the distributed family."""
    if min(m, n, k) <= 0:
        raise ValueError("matrix dimensions must be positive")
    builder = ProgramBuilder("distributed-gemm")
    a = builder.array("A", (m, k))
    b = builder.array("B", (k, n))
    c = builder.array("C", (m, n))
    i, j, kk = builder.var("i"), builder.var("j"), builder.var("k")
    with builder.loop("i", 0, m - 1):
        with builder.loop("j", 0, n - 1):
            with builder.loop("k", 0, k - 1):
                builder.assign(c[i, j], a[i, kk] * b[kk, j], reduction="+", name="mac")
    return builder.build()
