"""MPEG-4 motion estimation (ME) kernel.

The paper's Fig. 2 shows the kernel's structure: two parallel (space) loops
``i, j`` over pixel positions and two small sequential loops ``k, l`` over the
search window (extent ``WS = 16`` in the experiments), accumulating a sum of
absolute differences (SAD) between the current frame and the reference frame.
The kernel needs no synchronisation across thread blocks.

``build_me_program`` produces the IR program (used for functional checks and
for exercising the full pipeline); :class:`MEWorkloadModel` produces the
workload descriptors for the paper's large problem sizes (256 K – 64 M pixels)
in closed form, using exactly the footprint/volume/occurrence formulas the
scratchpad framework derives for a sub-tile (the integration tests check the
two against each other).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.ir.builder import ProgramBuilder
from repro.ir.expressions import absolute
from repro.ir.program import Program
from repro.machine.cpu import CPUWorkload
from repro.machine.gpu import BlockWorkload
from repro.tiling.mapping import LaunchGeometry

#: Paper Fig. 4 problem sizes (pixels) → frame dimensions (height, width).
ME_PROBLEM_SIZES: Dict[str, Tuple[int, int]] = {
    "256k": (512, 512),
    "1M": (1024, 1024),
    "2M": (2048, 1024),
    "4M": (2048, 2048),
    "9M": (3072, 3072),
    "16M": (4096, 4096),
    "64M": (8192, 8192),
}

#: Search-window extent used throughout the paper's experiments.
DEFAULT_WINDOW = 16


def build_me_program(height: int, width: int, window: int = DEFAULT_WINDOW) -> Program:
    """The ME kernel as an IR program (Fig. 2 structure).

    ``Cur`` and ``Ref`` are padded by the window extent so that all accesses
    stay in bounds; ``SAD[i][j]`` accumulates the sum of absolute differences
    over the window.
    """
    if height <= 0 or width <= 0 or window <= 0:
        raise ValueError("height, width and window must be positive")
    builder = ProgramBuilder("mpeg4_me")
    cur = builder.array("Cur", (height + window, width + window))
    ref = builder.array("Ref", (height + window, width + window))
    sad = builder.array("SAD", (height, width))
    i, j, k, l = (builder.var(name) for name in ("i", "j", "k", "l"))
    with builder.loop("i", 0, height - 1):
        with builder.loop("j", 0, width - 1):
            with builder.loop("k", 0, window - 1):
                with builder.loop("l", 0, window - 1):
                    builder.assign(
                        sad[i, j],
                        absolute(cur[i + k, j + l] - ref[i + k, j + l]),
                        reduction="+",
                        name="sad_update",
                    )
    return builder.build()


@dataclass
class MEWorkloadModel:
    """Closed-form workload model for the ME kernel on the two-level machine.

    All quantities follow from the tiled structure of Fig. 3 and the
    scratchpad framework's allocation for a sub-tile of sizes
    ``(ti, tj, tk, tl)``:

    * staged regions per sub-tile: ``Cur``/``Ref`` footprints of
      ``(ti + tk − 1) × (tj + tl − 1)`` elements each and the ``SAD`` tile of
      ``ti × tj`` elements (copy-in because of the accumulation, copy-out as
      the result);
    * ``Cur``/``Ref`` copies repeat for every sub-tile; the ``SAD`` copy hoists
      out of the window loops (Section 4.2) because its access does not depend
      on ``k``/``l``.
    """

    height: int
    width: int
    window: int = DEFAULT_WINDOW
    num_blocks: int = 32
    threads_per_block: int = 256
    element_size: int = 4

    @property
    def pixels(self) -> int:
        return self.height * self.width

    @property
    def total_instances(self) -> float:
        return float(self.pixels) * self.window * self.window

    def outer_tile(self) -> Tuple[int, int]:
        """Per-block tile of the pixel domain (problem split evenly, Fig. 6 setup)."""
        blocks_i, blocks_j = _split_blocks(self.num_blocks, self.height, self.width)
        return math.ceil(self.height / blocks_i), math.ceil(self.width / blocks_j)

    # -- per-sub-tile geometry (the scratchpad framework's formulas) -----------------
    def subtile_footprint_bytes(self, tile: Tuple[int, int, int, int]) -> int:
        ti, tj, tk, tl = tile
        frame_region = (ti + tk - 1) * (tj + tl - 1)
        return (2 * frame_region + ti * tj) * self.element_size

    def subtile_volumes(self, tile: Tuple[int, int, int, int]) -> Tuple[int, int]:
        """(copy-in, copy-out) elements per sub-tile execution."""
        ti, tj, tk, tl = tile
        frame_region = (ti + tk - 1) * (tj + tl - 1)
        return 2 * frame_region + ti * tj, ti * tj

    def block_workload(
        self, tile: Tuple[int, int, int, int], use_scratchpad: bool = True
    ) -> BlockWorkload:
        """Workload of one thread block for the given sub-tile sizes."""
        ti, tj, tk, tl = tile
        if min(tile) <= 0:
            raise ValueError("tile sizes must be positive")
        outer_i, outer_j = self.outer_tile()
        instances_per_block = self.total_instances / self.num_blocks
        if not use_scratchpad:
            return BlockWorkload(
                compute_instances=instances_per_block,
                global_accesses_per_instance=4.0,  # Cur, Ref, SAD read, SAD write
                shared_accesses_per_instance=0.0,
                element_size=self.element_size,
            )
        subtiles_ij = math.ceil(outer_i / ti) * math.ceil(outer_j / tj)
        subtiles_kl = math.ceil(self.window / tk) * math.ceil(self.window / tl)
        frame_region = (ti + tk - 1) * (tj + tl - 1)
        copy_in = subtiles_ij * (
            subtiles_kl * 2 * frame_region  # Cur and Ref, per (k, l) sub-tile
            + ti * tj                        # SAD, hoisted out of the window loops
        )
        copy_out = subtiles_ij * ti * tj
        occurrences = subtiles_ij * (subtiles_kl + 1) + subtiles_ij
        return BlockWorkload(
            compute_instances=instances_per_block,
            global_accesses_per_instance=0.0,
            shared_accesses_per_instance=4.0,
            copy_in_elements=float(copy_in),
            copy_out_elements=float(copy_out),
            copy_occurrences=float(occurrences),
            element_size=self.element_size,
        )

    def geometry(self, tile: Tuple[int, int, int, int], use_scratchpad: bool = True) -> LaunchGeometry:
        shared = self.subtile_footprint_bytes(tile) if use_scratchpad else 0
        return LaunchGeometry(
            num_blocks=self.num_blocks,
            threads_per_block=self.threads_per_block,
            shared_memory_per_block_bytes=shared,
        )

    def cpu_workload(self) -> CPUWorkload:
        # The sequential ME sweep reuses a sliding band of `window` rows of the
        # current and reference frames; that band is the working set that
        # determines the cache behaviour, not the whole frames.
        working_set = 2 * (self.width + self.window) * self.window
        return CPUWorkload(
            compute_instances=self.total_instances,
            accesses_per_instance=4.0,
            working_set_bytes=working_set * self.element_size,
        )


def _split_blocks(num_blocks: int, height: int, width: int) -> Tuple[int, int]:
    """Split a block count across the two pixel dimensions, favouring the larger."""
    best = (num_blocks, 1)
    best_score = float("inf")
    for blocks_i in range(1, num_blocks + 1):
        if num_blocks % blocks_i:
            continue
        blocks_j = num_blocks // blocks_i
        tile_i = math.ceil(height / blocks_i)
        tile_j = math.ceil(width / blocks_j)
        score = abs(tile_i - tile_j)
        if score < best_score:
            best_score = score
            best = (blocks_i, blocks_j)
    return best
