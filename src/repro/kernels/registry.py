"""Registry of tunable kernels.

Each evaluation workload registers itself as a :class:`TunableKernel`: a
program builder plus the metadata the autotuner needs — which problem-size
knobs exist (with defaults), which loops carry the memory-level tiling, and a
functional-verification size small enough for interpreter spot-checks.  The
autotuning CLI (``python -m repro.autotune``) and the batch tuning API resolve
kernels by name through this registry, so new workloads become tunable by
adding one :func:`register_kernel` call.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.ir.program import Program
from repro.kernels.conv2d import build_conv2d_program
from repro.kernels.distributed_gemm import build_distributed_gemm_program
from repro.kernels.jacobi1d import build_jacobi_sweep_program
from repro.kernels.jacobi2d import build_jacobi2d_program
from repro.kernels.matmul import build_matmul_program
from repro.kernels.mpeg4_me import build_me_program
from repro.machine.spec import GridSpec, WSE2_GRID


@dataclass(frozen=True)
class TunableKernel:
    """A kernel builder plus the knobs the autotuner may turn."""

    name: str
    description: str
    builder: Callable[..., Program]
    #: problem-size keyword arguments of the builder, with default values
    default_sizes: Mapping[str, int]
    #: loops whose memory-level tile sizes are tunable
    tile_loops: Tuple[str, ...]
    #: small problem sizes safe for interpreter-based correctness spot-checks
    check_sizes: Mapping[str, int] = field(default_factory=dict)
    #: the PE-grid target of a *distributed* kernel family (``None`` for
    #: single-device kernels); tuning requests for the kernel inherit it,
    #: and it fingerprints into their cache keys
    grid: Optional[GridSpec] = None

    @property
    def family(self) -> str:
        """``distributed`` when the kernel tunes onto a PE grid."""
        return "distributed" if self.grid is not None else "single-device"

    def build(self, **overrides: int) -> Program:
        """Build the program at the default sizes, overridden per keyword."""
        sizes = dict(self.default_sizes)
        unknown = set(overrides) - set(sizes)
        if unknown:
            raise ValueError(
                f"kernel {self.name!r} has no size parameters {sorted(unknown)}; "
                f"available: {sorted(sizes)}"
            )
        sizes.update(overrides)
        return self.builder(**sizes)

    def build_check(self) -> Program:
        """Build the small functional-verification instance."""
        return self.builder(**dict(self.check_sizes or self.default_sizes))

    def describe(self) -> Dict[str, object]:
        """JSON-serialisable metadata (the tuning service's ``/kernels`` view)."""
        payload: Dict[str, object] = {
            "name": self.name,
            "description": self.description,
            "family": self.family,
            "default_sizes": dict(self.default_sizes),
            "tile_loops": list(self.tile_loops),
            "check_sizes": dict(self.check_sizes),
        }
        if self.grid is not None:
            payload["grid"] = asdict(self.grid)
        return payload


_REGISTRY: Dict[str, TunableKernel] = {}


def register_kernel(kernel: TunableKernel) -> TunableKernel:
    """Add a kernel to the registry (name must be unique)."""
    if kernel.name in _REGISTRY:
        raise ValueError(f"kernel {kernel.name!r} is already registered")
    _REGISTRY[kernel.name] = kernel
    return kernel


def get_kernel(name: str) -> TunableKernel:
    """Look up a registered kernel by name, with a helpful error."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown kernel {name!r}; available: {', '.join(available_kernels())}"
        ) from None


def available_kernels() -> List[str]:
    """Sorted names of all registered kernels."""
    return sorted(_REGISTRY)


register_kernel(
    TunableKernel(
        name="matmul",
        description="dense matrix multiplication C += A·B (reuse-heavy)",
        builder=build_matmul_program,
        default_sizes={"m": 128, "n": 128, "k": 128},
        tile_loops=("i", "j", "k"),
        check_sizes={"m": 8, "n": 8, "k": 8},
    )
)

register_kernel(
    TunableKernel(
        name="conv2d",
        description="2-D convolution over a padded image",
        builder=build_conv2d_program,
        default_sizes={"height": 64, "width": 64, "kernel": 3},
        tile_loops=("i", "j"),
        check_sizes={"height": 8, "width": 8, "kernel": 3},
    )
)

register_kernel(
    TunableKernel(
        name="jacobi1d",
        description="one 1-D Jacobi sweep (Figs. 5/7/8 workload, single step)",
        builder=build_jacobi_sweep_program,
        default_sizes={"size": 1024},
        tile_loops=("i",),
        check_sizes={"size": 32},
    )
)

register_kernel(
    TunableKernel(
        name="jacobi2d",
        description="one 5-point 2-D Jacobi sweep (polybench-style stencil)",
        builder=build_jacobi2d_program,
        default_sizes={"height": 64, "width": 64},
        tile_loops=("i", "j"),
        check_sizes={"height": 8, "width": 8},
    )
)

register_kernel(
    TunableKernel(
        name="distributed-gemm",
        description="SUMMA GEMM on a P×P PE grid (blocking/pipelined broadcasts)",
        builder=build_distributed_gemm_program,
        default_sizes={"m": 64, "n": 64, "k": 64},
        tile_loops=("i", "j", "k"),
        check_sizes={"m": 8, "n": 8, "k": 8},
        grid=WSE2_GRID,
    )
)

register_kernel(
    TunableKernel(
        name="mpeg4_me",
        description="MPEG-4 motion estimation (Figs. 4/6 workload)",
        builder=build_me_program,
        default_sizes={"height": 64, "width": 64, "window": 4},
        tile_loops=("i", "j"),
        check_sizes={"height": 16, "width": 16, "window": 2},
    )
)
