"""Dense matrix multiplication — an additional reuse-heavy workload.

``C[i][j] += A[i][k] · B[k][j]``: every access function is rank-deficient with
respect to the three-dimensional iteration space, so Algorithm 1 stages all
three arrays; used by the examples, the property tests and the δ-threshold
ablation benchmark.
"""

from __future__ import annotations

from repro.ir.builder import ProgramBuilder
from repro.ir.program import Program


def build_matmul_program(m: int, n: int, k: int) -> Program:
    """``C (m×n) += A (m×k) · B (k×n)`` as an IR program."""
    if min(m, n, k) <= 0:
        raise ValueError("matrix dimensions must be positive")
    builder = ProgramBuilder("matmul")
    a = builder.array("A", (m, k))
    b = builder.array("B", (k, n))
    c = builder.array("C", (m, n))
    i, j, kk = builder.var("i"), builder.var("j"), builder.var("k")
    with builder.loop("i", 0, m - 1):
        with builder.loop("j", 0, n - 1):
            with builder.loop("k", 0, k - 1):
                builder.assign(c[i, j], a[i, kk] * b[kk, j], reduction="+", name="mac")
    return builder.build()
