"""1-D Jacobi kernel, time-tiled with concurrent start.

The paper runs a 1-D Jacobi stencil for 4096 time steps; the space loop is
tiled across thread blocks, the time loop is tiled (time tile 32) and — using
the transformation of Krishnamoorthy et al. [27] — the tiles are reshaped so
that all blocks can start concurrently.  Every time tile ends with a
synchronisation across all thread blocks (modelled as a kernel relaunch).

``build_jacobi_sweep_program`` / ``build_jacobi_time_program`` express the
kernel in the IR for functional verification and for exercising dependence
analysis, skewing and the scratchpad framework.  :class:`JacobiWorkloadModel`
produces the workload descriptors for the paper's problem sizes using the
overlapped-tile geometry of [27]: a block staging a space tile of ``B``
elements for a time tile of ``T_t`` steps must load ``B + 2·T_t`` elements
(halo grows with the time tile) and performs ``Σ_s (B + 2·(T_t − s))``
updates, i.e. redundant computation in exchange for fewer global
synchronisations — the trade-off Figs. 7 and 8 explore.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.ir.builder import ProgramBuilder
from repro.ir.program import Program
from repro.machine.cpu import CPUWorkload
from repro.machine.gpu import BlockWorkload
from repro.tiling.mapping import LaunchGeometry

#: Paper problem sizes (elements) for Figs. 5, 7 and 8.
JACOBI_PROBLEM_SIZES: Dict[str, int] = {
    "8k": 8 * 1024,
    "16k": 16 * 1024,
    "32k": 32 * 1024,
    "64k": 64 * 1024,
    "128k": 128 * 1024,
    "256k": 256 * 1024,
    "512k": 512 * 1024,
}

DEFAULT_TIME_STEPS = 4096


def build_jacobi_sweep_program(size: int) -> Program:
    """One Jacobi sweep ``B[i] = (A[i-1] + A[i] + A[i+1]) / 3`` over ``i in [1, N]``."""
    if size <= 2:
        raise ValueError("size must exceed 2")
    builder = ProgramBuilder("jacobi1d_sweep")
    a = builder.array("A", (size + 2,))
    b = builder.array("B", (size + 2,))
    i = builder.var("i")
    with builder.loop("i", 1, size):
        builder.assign(b[i], (a[i - 1] + a[i] + a[i + 1]) / 3, name="sweep")
    return builder.build()


def build_jacobi_time_program(size: int, time_steps: int) -> Program:
    """Time-iterated Jacobi ``A[t+1][i] = avg(A[t][i-1..i+1])`` (small sizes only).

    The 2-D array over (time, space) keeps the program affine without modulo
    indexing; it is meant for functional verification and for the dependence /
    skewing tests, not for the large experiment sizes.
    """
    if size <= 2 or time_steps <= 0:
        raise ValueError("size must exceed 2 and time_steps must be positive")
    builder = ProgramBuilder("jacobi1d_time")
    a = builder.array("A", (time_steps + 1, size + 2))
    t, i = builder.var("t"), builder.var("i")
    with builder.loop("t", 0, time_steps - 1):
        with builder.loop("i", 1, size):
            builder.assign(
                a[t + 1, i], (a[t, i - 1] + a[t, i] + a[t, i + 1]) / 3, name="update"
            )
    return builder.build()


@dataclass
class JacobiWorkloadModel:
    """Workload model for the time-tiled, concurrently-started Jacobi kernel."""

    size: int
    time_steps: int = DEFAULT_TIME_STEPS
    num_blocks: int = 128
    threads_per_block: int = 64
    time_tile: int = 32
    space_tile: int = 0  # 0 → problem size divided evenly across blocks
    element_size: int = 4

    def __post_init__(self) -> None:
        if self.size <= 2:
            raise ValueError("size must exceed 2")
        if self.time_tile <= 0:
            raise ValueError("time_tile must be positive")
        if self.space_tile == 0:
            self.space_tile = math.ceil(self.size / self.num_blocks)

    # -- geometry -----------------------------------------------------------------
    @property
    def time_tiles(self) -> int:
        """Number of time tiles — each ends with a device-wide synchronisation."""
        return math.ceil(self.time_steps / self.time_tile)

    @property
    def space_tiles_per_block(self) -> int:
        total_tiles = math.ceil(self.size / self.space_tile)
        return max(1, math.ceil(total_tiles / self.num_blocks))

    def staged_elements_per_tile(self) -> int:
        """Elements a block stages per (space tile, time tile): tile + halo, double-buffered."""
        return 2 * (self.space_tile + 2 * self.time_tile)

    def shared_bytes_per_block(self) -> int:
        return self.staged_elements_per_tile() * self.element_size

    def updates_per_tile(self) -> float:
        """Stencil updates one overlapped tile performs (includes redundant halo work)."""
        total = 0.0
        for step in range(self.time_tile):
            total += self.space_tile + 2 * (self.time_tile - step - 1)
        return total

    # -- workloads -----------------------------------------------------------------
    def block_workload(self, use_scratchpad: bool = True) -> BlockWorkload:
        tiles = self.space_tiles_per_block * self.time_tiles
        if use_scratchpad:
            instances = self.updates_per_tile() * tiles
            copy_in = (self.space_tile + 2 * self.time_tile) * tiles
            copy_out = self.space_tile * tiles
            return BlockWorkload(
                compute_instances=instances,
                global_accesses_per_instance=0.0,
                shared_accesses_per_instance=4.0,  # three reads + one write
                copy_in_elements=float(copy_in),
                copy_out_elements=float(copy_out),
                copy_occurrences=float(2 * tiles),
                extra_block_syncs=float(self.time_tile * tiles),
                element_size=self.element_size,
            )
        # Without the scratchpad every sweep reads/writes global memory and the
        # blocks must synchronise after every single time step.
        instances = float(self.space_tile * self.space_tiles_per_block) * self.time_steps
        return BlockWorkload(
            compute_instances=instances,
            global_accesses_per_instance=4.0,
            shared_accesses_per_instance=0.0,
            element_size=self.element_size,
        )

    def geometry(self, use_scratchpad: bool = True) -> LaunchGeometry:
        return LaunchGeometry(
            num_blocks=self.num_blocks,
            threads_per_block=self.threads_per_block,
            shared_memory_per_block_bytes=self.shared_bytes_per_block()
            if use_scratchpad
            else 0,
        )

    def global_sync_rounds(self, use_scratchpad: bool = True) -> int:
        """Device-wide synchronisations: one per time tile (or per step without staging)."""
        return self.time_tiles if use_scratchpad else self.time_steps

    def cpu_workload(self) -> CPUWorkload:
        return CPUWorkload(
            compute_instances=float(self.size) * self.time_steps,
            accesses_per_instance=4.0,
            working_set_bytes=2 * self.size * self.element_size,
        )
