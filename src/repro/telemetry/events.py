"""Structured event log for the tuning stack's lifecycle edges.

Metrics aggregate, spans time, events *narrate*: each call to :func:`emit`
writes one line describing a lifecycle edge (``job.submit``, ``job.start``,
``cache.put``, ``job.error``, ...) carrying whatever correlation ids the
call site has — request fingerprint, job id, trace id — so a fleet operator
can stitch a single request's path across server, worker, and cache from
the log alone.

Two renderings of the same stream:

* human (default): ``HH:MM:SS LEVEL event message key=value ...`` — what
  ``serve`` prints to a terminal;
* JSON (``--log-json``): one ``json.dumps`` object per line with sorted
  keys, greppable and machine-parseable (``{"event": "job.submit", ...}``).

The module-level :data:`EVENTS` log defaults to the ``warning`` threshold so
importing the library stays quiet; entry points (``repro.service.cli
serve``) call :func:`configure` to open it up.  Rendering failures never
propagate into the tuning path — an event log that can crash the server is
worse than no event log.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from typing import Any, Dict, IO, Optional

__all__ = [
    "EVENTS",
    "EventLog",
    "LEVELS",
    "configure",
    "emit",
    "events_pass_hook",
]

LEVELS: Dict[str, int] = {"debug": 10, "info": 20, "warning": 30, "error": 40}


class EventLog:
    """A line-oriented event sink with a level threshold and two renderers."""

    def __init__(
        self,
        json_mode: bool = False,
        level: str = "warning",
        stream: Optional[IO[str]] = None,
    ) -> None:
        self._lock = threading.Lock()
        self._json = json_mode
        self._threshold = LEVELS[level]
        self._stream = stream  # None = resolve sys.stderr at emit time

    def configure(
        self,
        json_mode: Optional[bool] = None,
        level: Optional[str] = None,
        stream: Optional[IO[str]] = None,
    ) -> None:
        with self._lock:
            if json_mode is not None:
                self._json = json_mode
            if level is not None:
                if level not in LEVELS:
                    raise ValueError(
                        f"unknown log level {level!r} (choose from {sorted(LEVELS)})"
                    )
                self._threshold = LEVELS[level]
            if stream is not None:
                self._stream = stream

    def enabled(self, level: str = "info") -> bool:
        return LEVELS.get(level, LEVELS["info"]) >= self._threshold

    def emit(
        self, event: str, level: str = "info", msg: Optional[str] = None, **fields: Any
    ) -> None:
        if LEVELS.get(level, LEVELS["info"]) < self._threshold:
            return
        now = time.time()
        if self._json:
            payload: Dict[str, Any] = {"ts": now, "level": level, "event": event}
            if msg is not None:
                payload["msg"] = msg
            payload.update(fields)
            try:
                line = json.dumps(payload, sort_keys=True, default=str)
            except (TypeError, ValueError):
                line = json.dumps(
                    {"ts": now, "level": level, "event": event, "msg": str(msg)},
                    sort_keys=True,
                )
        else:
            clock = time.strftime("%H:%M:%S", time.localtime(now))
            parts = [clock, level.upper(), event]
            if msg is not None:
                parts.append(msg)
            parts.extend(f"{key}={fields[key]}" for key in sorted(fields))
            line = " ".join(parts)
        with self._lock:
            stream = self._stream if self._stream is not None else sys.stderr
            try:
                stream.write(line + "\n")
                stream.flush()
            except (OSError, ValueError):
                pass  # closed/broken stream must not take down the tuner


#: Process-wide event log; quiet (warning+) until an entry point configures it.
EVENTS = EventLog()


def configure(
    json_mode: Optional[bool] = None,
    level: Optional[str] = None,
    stream: Optional[IO[str]] = None,
) -> None:
    """Reconfigure the process-wide :data:`EVENTS` log."""
    EVENTS.configure(json_mode=json_mode, level=level, stream=stream)


def emit(
    event: str, level: str = "info", msg: Optional[str] = None, **fields: Any
) -> None:
    """Emit one event on the process-wide log."""
    EVENTS.emit(event, level=level, msg=msg, **fields)


def events_pass_hook(stage: str, artifact: Any, elapsed_s: float) -> None:
    """A :class:`~repro.compiler.passes.PassManager` hook that narrates each
    completed compiler stage at debug level."""
    EVENTS.emit("stage.complete", level="debug", stage=stage, elapsed_s=round(elapsed_s, 6))
