"""Persistent tuning history: one record per completed tuning request.

Metrics (:mod:`repro.telemetry.metrics`) answer "what is the fleet doing
*now*"; this module answers "what has it done *over time*".  Every completed
request — tuned or answered from cache, run inline by :func:`repro.autotune.
autotune` or shipped back from a service worker — appends one
:class:`HistoryRecord` to a :class:`HistoryStore`: an append-only JSONL file
using the same crash-safety idiom as the autotune cache's append-log backend
(exclusive sidecar lock, tail-newline termination before append, corrupt
lines skipped and counted, a truncated final line left pending).

On top of the raw records sit the analysis helpers the ``python -m
repro.autotune history`` subcommands and the server's ``/dashboard`` render:

* :func:`rollup` — per-(kernel, variant, spec, backend) percentile summaries
  (``variant`` holds family parameters such as a distributed kernel's grid
  target, so kernel families never collapse into one group);
* :func:`compare_windows` — the last-N window of each group against all of
  its prior records;
* :func:`check_history` — the **regression sentinel**: flags any group whose
  current-window best winner time (or mean evaluation count) regressed
  beyond a threshold against the best prior window.  CI gates on its
  non-zero exit.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.telemetry.metrics import METRICS

__all__ = [
    "HistoryRecord",
    "HistoryStore",
    "check_history",
    "compare_windows",
    "group_records",
    "open_history",
    "parse_threshold",
    "percentile",
    "rollup",
    "spearman_rho",
    "split_window",
]

HISTORY_RECORDS_TOTAL = METRICS.counter(
    "repro_history_records_total",
    "Tuning-history records appended, by producer.",
    labels=("source",),
)


def spearman_rho(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Spearman rank correlation (scipy, average ranks on ties).

    A degenerate (constant) sample has no ranking to correlate; scipy says
    nan, we report 1.0 when the inputs agree trivially and 0.0 otherwise.
    """
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need two equal-length samples of at least 2 points")
    from scipy import stats  # already a hard dependency (SLSQP tile search)

    rho = stats.spearmanr(list(xs), list(ys)).statistic
    if rho != rho:  # nan: at least one sample is constant
        return 1.0 if list(xs) == list(ys) else 0.0
    return float(rho)


@dataclass
class HistoryRecord:
    """Everything worth remembering about one completed tuning request."""

    kernel: str
    fingerprint: str
    spec_name: str = ""
    strategy: str = ""
    #: evaluation-backend URI the request ran under
    backend: str = "model:"
    cache_hit: bool = False
    winner_ms: float = 0.0
    #: provenance of the winner's time (``model`` / ``measured-py`` / ...)
    winner_kind: str = "model"
    baseline_ms: Optional[float] = None
    #: candidate evaluations this request performed (0 for a cache hit)
    evaluations: int = 0
    #: per-compiler-stage wall seconds accumulated by this request
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    #: model-vs-measured Spearman rho over the re-measured survivors
    #: (present only when a hybrid/measured backend produced paired times)
    rho: Optional[float] = None
    #: end-to-end request wall time in seconds
    wall_s: float = 0.0
    #: id of the span trace collected for this request (matches the
    #: ``trace_id`` attribute on the request's root span), if traced
    trace_id: Optional[str] = None
    seed: int = 0
    #: producer: ``autotune`` | ``worker`` | ``server`` | ``bench``
    source: str = "autotune"
    #: service job id, when the request ran through the tuning server
    job_id: Optional[str] = None
    #: family parameters that are part of the *kernel identity* (e.g. a
    #: distributed kernel's grid target, ``"16x16:WSE-2 subgrid"``); empty
    #: for single-device kernels.  Part of :meth:`group_key`, so kernel
    #: families with different family parameters never collapse into one
    #: regression group.
    variant: str = ""
    ts: float = field(default_factory=time.time)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ts": self.ts,
            "kernel": self.kernel,
            "fingerprint": self.fingerprint,
            "spec_name": self.spec_name,
            "strategy": self.strategy,
            "backend": self.backend,
            "cache_hit": self.cache_hit,
            "winner_ms": self.winner_ms,
            "winner_kind": self.winner_kind,
            "baseline_ms": self.baseline_ms,
            "evaluations": self.evaluations,
            "stage_seconds": dict(self.stage_seconds),
            "rho": self.rho,
            "wall_s": self.wall_s,
            "trace_id": self.trace_id,
            "seed": self.seed,
            "source": self.source,
            "job_id": self.job_id,
            "variant": self.variant,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "HistoryRecord":
        return cls(
            kernel=str(payload["kernel"]),
            fingerprint=str(payload.get("fingerprint", "")),
            spec_name=str(payload.get("spec_name", "")),
            strategy=str(payload.get("strategy", "")),
            backend=str(payload.get("backend", "model:")),
            cache_hit=bool(payload.get("cache_hit", False)),
            winner_ms=float(payload.get("winner_ms", 0.0)),
            winner_kind=str(payload.get("winner_kind", "model")),
            baseline_ms=payload.get("baseline_ms"),
            evaluations=int(payload.get("evaluations", 0)),
            stage_seconds=dict(payload.get("stage_seconds", {})),
            rho=payload.get("rho"),
            wall_s=float(payload.get("wall_s", 0.0)),
            trace_id=payload.get("trace_id"),
            seed=int(payload.get("seed", 0)),
            source=str(payload.get("source", "autotune")),
            job_id=payload.get("job_id"),
            variant=str(payload.get("variant", "")),
            ts=float(payload.get("ts", 0.0)),
        )

    def group_key(self) -> Tuple[str, str, str, str]:
        """The rollup/windowing identity: kernel, variant, machine, backend.

        Deliberately *not* the full fingerprint: a tuning-space or strategy
        change still tunes the same problem, and the sentinel's whole job is
        to notice when such a change made the answer worse.  ``variant``
        *is* included: family parameters like a distributed kernel's grid
        target change what problem is being tuned, so two variants must
        never share one regression baseline.
        """
        return (self.kernel, self.variant, self.spec_name, self.backend)


class HistoryStore:
    """Append-only JSONL history (``path=None`` keeps records in memory).

    Same durability idiom as the autotune cache's append-log backend: every
    append happens under an exclusive sidecar lock and terminates a
    crash-truncated tail before writing, reads skip (and count) corrupt
    lines, and an incomplete final line is left pending rather than
    treated as fatal.
    """

    def __init__(self, path: Union[str, Path, None] = None) -> None:
        self.path = Path(path) if path is not None else None
        self._memory: List[HistoryRecord] = []
        self._corrupt_lines = 0

    @property
    def uri(self) -> Optional[str]:
        """Spec string that re-opens this store (``None`` = memory only)."""
        return None if self.path is None else str(self.path)

    def _lock_path(self) -> Path:
        assert self.path is not None
        return self.path.with_name(self.path.name + ".lock")

    def append(self, record: HistoryRecord) -> None:
        HISTORY_RECORDS_TOTAL.inc(source=record.source)
        if self.path is None:
            self._memory.append(record)
            return
        # Lazy import: repro.autotune.store imports repro.telemetry at module
        # scope, so a top-level import here would be circular.
        from repro.autotune.store import _locked

        line = json.dumps(record.to_dict(), separators=(",", ":")) + "\n"
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with _locked(self._lock_path()):
            needs_newline = False
            try:
                with open(self.path, "rb") as peek:
                    peek.seek(-1, 2)  # os.SEEK_END
                    needs_newline = peek.read(1) != b"\n"
            except (OSError, ValueError):
                needs_newline = False  # missing or empty file
            with open(self.path, "ab") as handle:
                if needs_newline:
                    # terminate a crash-truncated tail so this record starts
                    # on its own line (the partial line stays skippable)
                    handle.write(b"\n")
                handle.write(line.encode("utf-8"))
                handle.flush()

    def records(self) -> List[HistoryRecord]:
        """Every parseable record, oldest first (corrupt lines skipped)."""
        if self.path is None:
            return list(self._memory)
        try:
            raw = self.path.read_bytes()
        except OSError:
            return []
        records: List[HistoryRecord] = []
        self._corrupt_lines = 0
        for line in raw.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line.decode("utf-8"))
                records.append(HistoryRecord.from_dict(payload))
            except (ValueError, KeyError, TypeError, UnicodeDecodeError):
                self._corrupt_lines += 1
        return records

    def __len__(self) -> int:
        return len(self.records())

    def stats(self) -> Dict[str, Any]:
        records = self.records()
        try:
            size = self.path.stat().st_size if self.path is not None else 0
        except OSError:
            size = 0
        return {
            "path": self.uri,
            "records": len(records),
            "bytes": size,
            "corrupt_lines": self._corrupt_lines,
            "groups": len(group_records(records)),
        }


def open_history(
    store: Union[HistoryStore, str, Path, None]
) -> Optional[HistoryStore]:
    """Coerce a history spec (store instance, path, or None) to a store."""
    if store is None or isinstance(store, HistoryStore):
        return store
    return HistoryStore(store)


# -- analysis ----------------------------------------------------------------------
def group_records(
    records: Sequence[HistoryRecord],
) -> Dict[Tuple[str, str, str, str], List[HistoryRecord]]:
    """Records bucketed by :meth:`HistoryRecord.group_key`, order preserved."""
    groups: Dict[Tuple[str, str, str, str], List[HistoryRecord]] = {}
    for record in records:
        groups.setdefault(record.group_key(), []).append(record)
    return groups


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (``q`` in [0, 100]) of a non-empty sample."""
    if not values:
        raise ValueError("percentile of an empty sample")
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


def rollup(records: Sequence[HistoryRecord]) -> List[Dict[str, Any]]:
    """Per-group percentile summary rows, sorted by group key."""
    rows: List[Dict[str, Any]] = []
    for key, group in sorted(group_records(records).items()):
        times = [r.winner_ms for r in group]
        tuned = [r for r in group if not r.cache_hit]
        rhos = [r.rho for r in group if r.rho is not None]
        rows.append(
            {
                "kernel": key[0],
                "variant": key[1],
                "spec": key[2],
                "backend": key[3],
                "requests": len(group),
                "cache_hits": sum(1 for r in group if r.cache_hit),
                "best_ms": min(times),
                "p50_ms": percentile(times, 50),
                "p90_ms": percentile(times, 90),
                "mean_evaluations": (
                    sum(r.evaluations for r in tuned) / len(tuned) if tuned else 0.0
                ),
                "mean_rho": sum(rhos) / len(rhos) if rhos else None,
                "mean_wall_s": sum(r.wall_s for r in group) / len(group),
            }
        )
    return rows


def split_window(
    group: Sequence[HistoryRecord], window: int
) -> Tuple[List[HistoryRecord], List[HistoryRecord]]:
    """``(current, prior)``: the last ``window`` records vs everything before."""
    if window < 1:
        raise ValueError(f"window must be positive, got {window}")
    ordered = sorted(group, key=lambda r: r.ts)
    return ordered[-window:], ordered[:-window]


def compare_windows(
    records: Sequence[HistoryRecord], window: int = 1
) -> List[Dict[str, Any]]:
    """Per-group delta of the current window against all prior records.

    ``delta_pct`` is the current window's best winner time relative to the
    best prior time (positive = slower = regression); groups without prior
    records report ``None`` deltas (nothing to compare against yet).
    """
    rows: List[Dict[str, Any]] = []
    for key, group in sorted(group_records(records).items()):
        current, prior = split_window(group, window)
        current_best = min(r.winner_ms for r in current)
        current_tuned = [r for r in current if not r.cache_hit]
        prior_tuned = [r for r in prior if not r.cache_hit]
        row: Dict[str, Any] = {
            "kernel": key[0],
            "variant": key[1],
            "spec": key[2],
            "backend": key[3],
            "window": len(current),
            "prior": len(prior),
            "current_best_ms": current_best,
            "prior_best_ms": None,
            "delta_pct": None,
            "current_mean_evals": (
                sum(r.evaluations for r in current_tuned) / len(current_tuned)
                if current_tuned
                else None
            ),
            "prior_mean_evals": (
                sum(r.evaluations for r in prior_tuned) / len(prior_tuned)
                if prior_tuned
                else None
            ),
        }
        if prior:
            prior_best = min(r.winner_ms for r in prior)
            row["prior_best_ms"] = prior_best
            if prior_best > 0:
                row["delta_pct"] = 100.0 * (current_best - prior_best) / prior_best
        rows.append(row)
    return rows


def parse_threshold(text: Union[str, float]) -> float:
    """A regression threshold as a fraction: ``"5%"`` and ``0.05`` both work."""
    if isinstance(text, (int, float)) and not isinstance(text, bool):
        value = float(text)
    else:
        stripped = str(text).strip()
        try:
            if stripped.endswith("%"):
                value = float(stripped[:-1]) / 100.0
            else:
                value = float(stripped)
        except ValueError:
            raise ValueError(
                f"threshold must be a fraction or percentage, got {text!r}"
            ) from None
    if value < 0:
        raise ValueError(f"threshold cannot be negative, got {text!r}")
    return value


def check_history(
    records: Sequence[HistoryRecord],
    window: int = 1,
    threshold: Union[str, float] = "10%",
) -> Tuple[List[Dict[str, Any]], List[Dict[str, Any]]]:
    """The regression sentinel: ``(failures, rows)`` over windowed history.

    A group fails when its current-window best winner time exceeds the best
    prior time by more than ``threshold``, or its current mean evaluation
    count exceeds the prior mean by the same margin (the search suddenly
    needing far more candidates for the same answer is a perf regression
    too).  Groups with no prior window are informational only.
    """
    limit = parse_threshold(threshold)
    rows = compare_windows(records, window=window)
    failures: List[Dict[str, Any]] = []
    for row in rows:
        reasons = []
        if row["delta_pct"] is not None and row["delta_pct"] > 100.0 * limit:
            reasons.append(
                f"winner time regressed {row['delta_pct']:.1f}% "
                f"({row['prior_best_ms']:.3f} -> {row['current_best_ms']:.3f} ms)"
            )
        current_evals, prior_evals = row["current_mean_evals"], row["prior_mean_evals"]
        if (
            current_evals is not None
            and prior_evals is not None
            and prior_evals > 0
            and current_evals > prior_evals * (1.0 + limit)
        ):
            growth = 100.0 * (current_evals - prior_evals) / prior_evals
            reasons.append(
                f"evaluation count grew {growth:.1f}% "
                f"({prior_evals:.1f} -> {current_evals:.1f})"
            )
        if reasons:
            failures.append({**row, "reasons": reasons})
    return failures, rows
