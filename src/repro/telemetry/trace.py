"""Span-based tracing of the tuning request lifecycle.

A trace is a tree of :class:`Span`\\ s: :func:`repro.autotune.autotune` opens
a ``request`` span, the search phase a ``search`` span, every candidate
evaluation a ``candidate`` span, every backend measurement a ``measure``
span, and the staged compiler's :class:`~repro.compiler.manager.PassManager`
hooks record one ``pass`` span per executed pass — so one traced request
shows exactly where its time went, down to "analysis ran once, tiling ran
once per candidate".

Collection is opt-in and process-global: :func:`start_trace` installs a
:class:`TraceCollector`; while none is installed, :func:`span` returns a
shared no-op context manager, so the instrumentation points cost one
attribute read and one ``is None`` test each (see the overhead guard in
``tests/test_telemetry.py``).

The span stack is per-thread.  Spans opened on a thread with an empty stack
(the parallel evaluator's pool workers) attach to the innermost open span
that declared itself an *adoption point* (``fallback=True`` — the request
and search spans do), so pool-evaluated candidates still nest under the
request that spawned them.

Completed trees export as nested JSON (:func:`save_trace` — the ``--trace
FILE`` format), JSONL (:func:`to_jsonl`), and Chrome ``trace_event`` JSON
(:func:`to_chrome_trace` — load in ``chrome://tracing`` or Perfetto), and
render as an indented tree with a hotspot table (:func:`render_tree`,
:func:`hotspots` — the ``python -m repro.autotune trace`` subcommand).
"""

from __future__ import annotations

import contextlib
import json
import sys
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Span",
    "TraceCollector",
    "active_trace",
    "annotate",
    "capture_trace",
    "current_span",
    "hotspots",
    "load_trace",
    "record_span",
    "render_tree",
    "save_trace",
    "span",
    "start_trace",
    "stop_trace",
    "summarize_spans",
    "to_chrome_trace",
    "to_jsonl",
    "trace_pass_hook",
]


# eq=False keeps identity comparison: the collector removes spans from its
# adoption-point list by identity, and field-wise comparison of trees would
# be both wrong and expensive there.
@dataclass(eq=False)
class Span:
    """One timed operation: name, kind, wall time, attributes, children."""

    name: str
    kind: str = "span"
    start_s: float = 0.0
    end_s: Optional[float] = None
    attrs: Dict[str, Any] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)
    #: small per-collector thread ordinal (0 = the thread that started tracing)
    tid: int = 0

    @property
    def duration_s(self) -> float:
        return (self.end_s if self.end_s is not None else self.start_s) - self.start_s

    @property
    def duration_ms(self) -> float:
        return 1e3 * self.duration_s

    def annotate(self, **attrs: Any) -> None:
        self.attrs.update(attrs)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "attrs": dict(self.attrs),
            "tid": self.tid,
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Span":
        return cls(
            name=payload["name"],
            kind=payload.get("kind", "span"),
            start_s=payload.get("start_s", 0.0),
            end_s=payload.get("end_s"),
            attrs=dict(payload.get("attrs", {})),
            tid=payload.get("tid", 0),
            children=[cls.from_dict(child) for child in payload.get("children", [])],
        )


class _NullSpan:
    """The shared do-nothing span yielded while tracing is disabled."""

    __slots__ = ()
    name = ""
    kind = "null"
    attrs: Dict[str, Any] = {}
    children: List[Span] = []
    duration_s = 0.0
    duration_ms = 0.0

    def annotate(self, **attrs: Any) -> None:
        pass


NULL_SPAN = _NullSpan()
#: reusable disabled-path context manager (nullcontext is stateless, so one
#: shared instance is safe under concurrent use)
_NULL_CM = contextlib.nullcontext(NULL_SPAN)


class TraceCollector:
    """Accumulates one process's span trees while installed via :func:`start_trace`."""

    def __init__(self) -> None:
        self.roots: List[Span] = []
        #: correlation id stamped onto request spans and history records so a
        #: trace file can be matched to the log/history entries it belongs to
        self.trace_id: str = uuid.uuid4().hex[:16]
        self._local = threading.local()
        self._lock = threading.Lock()
        #: open spans that adopt orphan (cross-thread) spans, innermost last
        self._adoption_points: List[Span] = []
        self._thread_ids: Dict[int, int] = {}

    # -- span stack --------------------------------------------------------------------
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _tid(self) -> int:
        ident = threading.get_ident()
        with self._lock:
            if ident not in self._thread_ids:
                self._thread_ids[ident] = len(self._thread_ids)
            return self._thread_ids[ident]

    def current(self) -> Optional[Span]:
        stack = self._stack()
        return stack[-1] if stack else None

    def _parent_for_new_span(self) -> Optional[Span]:
        parent = self.current()
        if parent is not None:
            return parent
        with self._lock:
            return self._adoption_points[-1] if self._adoption_points else None

    def _attach(self, parent: Optional[Span], child: Span) -> None:
        with self._lock:
            (self.roots if parent is None else parent.children).append(child)

    @contextlib.contextmanager
    def span(
        self, name: str, kind: str = "span", fallback: bool = False, **attrs: Any
    ) -> Iterator[Span]:
        parent = self._parent_for_new_span()
        item = Span(
            name=name,
            kind=kind,
            start_s=time.perf_counter(),
            attrs=dict(attrs),
            tid=self._tid(),
        )
        self._attach(parent, item)
        stack = self._stack()
        stack.append(item)
        if fallback:
            with self._lock:
                self._adoption_points.append(item)
        try:
            yield item
        finally:
            item.end_s = time.perf_counter()
            if stack and stack[-1] is item:
                stack.pop()
            if fallback:
                with self._lock:
                    if item in self._adoption_points:
                        self._adoption_points.remove(item)

    def record(
        self, name: str, kind: str, duration_s: float, **attrs: Any
    ) -> Span:
        """Attach an already-completed span (post-hoc timing, e.g. pass hooks)."""
        now = time.perf_counter()
        item = Span(
            name=name,
            kind=kind,
            start_s=now - duration_s,
            end_s=now,
            attrs=dict(attrs),
            tid=self._tid(),
        )
        self._attach(self._parent_for_new_span(), item)
        return item

    def to_dicts(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [root.to_dict() for root in self.roots]


# -- process-global collector ----------------------------------------------------------
_ACTIVE: Optional[TraceCollector] = None
_ACTIVE_LOCK = threading.Lock()


def start_trace() -> TraceCollector:
    """Install (and return) a fresh process-global collector.

    One collector per process: concurrent traced jobs in a thread-pool
    server would interleave into whichever collector is installed, so the
    tuning service traces through *process* workers, which own their
    collector exclusively.
    """
    global _ACTIVE
    with _ACTIVE_LOCK:
        _ACTIVE = TraceCollector()
        return _ACTIVE


def stop_trace() -> Optional[TraceCollector]:
    """Uninstall and return the active collector (``None`` when not tracing)."""
    global _ACTIVE
    with _ACTIVE_LOCK:
        collector, _ACTIVE = _ACTIVE, None
        return collector


def active_trace() -> Optional[TraceCollector]:
    return _ACTIVE


@contextlib.contextmanager
def capture_trace() -> Iterator[TraceCollector]:
    """``with capture_trace() as collector:`` — scoped start/stop for tests."""
    global _ACTIVE
    collector = start_trace()
    try:
        yield collector
    finally:
        with _ACTIVE_LOCK:
            if _ACTIVE is collector:
                _ACTIVE = None


def span(name: str, kind: str = "span", fallback: bool = False, **attrs: Any):
    """Open a child span of the current one (a shared no-op when not tracing)."""
    collector = _ACTIVE
    if collector is None:
        return _NULL_CM
    return collector.span(name, kind=kind, fallback=fallback, **attrs)


def current_span():
    """The innermost open span on this thread (``NULL_SPAN`` when not tracing)."""
    collector = _ACTIVE
    if collector is None:
        return NULL_SPAN
    return collector.current() or NULL_SPAN


def annotate(**attrs: Any) -> None:
    """Attach attributes to the innermost open span (no-op when not tracing)."""
    current_span().annotate(**attrs)


def record_span(name: str, kind: str, duration_s: float, **attrs: Any) -> None:
    """Record an already-timed operation as a completed child span."""
    collector = _ACTIVE
    if collector is not None:
        collector.record(name, kind, duration_s, **attrs)


def trace_pass_hook(stage: str, artifact: Any, elapsed_s: float) -> None:
    """A :class:`~repro.compiler.manager.PassManager` hook emitting pass spans.

    Attach with ``manager.add_hook(trace_pass_hook)`` (idempotent — the
    manager deduplicates hooks); each executed pass becomes one completed
    ``pass`` span under whatever span was open when it ran.
    """
    collector = _ACTIVE
    if collector is not None:
        collector.record(
            stage,
            "pass",
            elapsed_s,
            fingerprint=getattr(artifact, "short_fingerprint", None),
        )


# -- exports ---------------------------------------------------------------------------
def coerce_spans(roots: Sequence[Any]) -> List[Span]:
    """Accept span trees as :class:`Span` objects *or* their dict payloads.

    Job results ship span trees as plain dicts (the picklable/JSON form);
    every exporter below takes either representation.
    """
    return [
        Span.from_dict(root) if isinstance(root, Mapping) else root for root in roots
    ]


def iter_spans(
    roots: Sequence[Any], depth: int = 0
) -> Iterator[Tuple[Span, int]]:
    """Depth-first (span, depth) walk over span trees (Spans or dicts)."""
    for root in coerce_spans(roots):
        yield root, depth
        yield from iter_spans(root.children, depth + 1)


def save_trace(path: Any, roots: Sequence[Any], meta: Optional[Mapping[str, Any]] = None) -> None:
    """Write span trees as the canonical ``--trace FILE`` JSON document."""
    payload: Dict[str, Any] = {
        "version": 1,
        "spans": [root.to_dict() for root in coerce_spans(roots)],
    }
    if meta:
        payload["meta"] = dict(meta)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_trace(path: Any) -> List[Span]:
    """Read a trace file: the nested-JSON save format or a JSONL export.

    Tolerant of truncation: an empty file is an empty trace, unparseable or
    incomplete JSONL lines (a crashed writer's torn tail) are skipped with a
    warning on stderr, and a span whose parent is missing becomes a root —
    whatever survived the crash still renders.
    """

    def _warn(lineno: int, why: str) -> None:
        print(
            f"warning: {path}: skipping trace line {lineno}: {why}",
            file=sys.stderr,
        )

    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    stripped = text.strip()
    if not stripped:
        return []
    try:
        document = json.loads(stripped)
    except json.JSONDecodeError:
        document = None
    if isinstance(document, Mapping) and "spans" in document:
        return [Span.from_dict(item) for item in document["spans"]]
    # JSONL: one flattened span per line with id/parent references
    spans: Dict[int, Span] = {}
    roots: List[Span] = []
    for lineno, line in enumerate(stripped.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            _warn(lineno, f"not JSON ({error})")
            continue
        if not isinstance(record, Mapping) or "name" not in record:
            _warn(lineno, "not a span record")
            continue
        item = Span.from_dict(record)
        if "id" in record:
            spans[record["id"]] = item
        parent = record.get("parent")
        if parent is None:
            roots.append(item)
        elif parent in spans:
            spans[parent].children.append(item)
        else:
            _warn(lineno, f"parent span {parent} missing; treating as root")
            roots.append(item)
    return roots


def to_jsonl(roots: Sequence[Any]) -> str:
    """Flatten span trees to JSONL (one span per line, id/parent references)."""
    roots = coerce_spans(roots)
    lines: List[str] = []
    ids: Dict[int, int] = {}

    def walk(item: Span, parent_id: Optional[int]) -> None:
        span_id = len(ids)
        ids[id(item)] = span_id
        record = item.to_dict()
        record.pop("children")
        record.update(
            {"id": span_id, "parent": parent_id, "duration_ms": item.duration_ms}
        )
        lines.append(json.dumps(record, sort_keys=True))
        for child in item.children:
            walk(child, span_id)

    for root in roots:
        walk(root, None)
    return "\n".join(lines) + "\n"


def to_chrome_trace(roots: Sequence[Span]) -> Dict[str, Any]:
    """Span trees as Chrome ``trace_event`` JSON (complete ``"X"`` events).

    Open the saved JSON in ``chrome://tracing`` or https://ui.perfetto.dev.
    Timestamps are microseconds relative to the earliest span, so traces
    shipped from worker processes (whose ``perf_counter`` origin differs)
    still render on a sane axis.
    """
    spans = [item for item, _depth in iter_spans(roots)]
    origin = min((item.start_s for item in spans), default=0.0)
    events = [
        {
            "ph": "X",
            "name": item.name,
            "cat": item.kind,
            "ts": round(1e6 * (item.start_s - origin), 3),
            "dur": round(1e6 * item.duration_s, 3),
            "pid": 0,
            "tid": item.tid,
            "args": dict(item.attrs),
        }
        for item in spans
    ]
    return {"traceEvents": events, "displayTimeUnit": "ms"}


# -- rendering -------------------------------------------------------------------------
def _format_attrs(attrs: Mapping[str, Any], limit: int = 60) -> str:
    parts = []
    for key, value in attrs.items():
        if value is None:
            continue
        if isinstance(value, float):
            value = f"{value:.3f}"
        parts.append(f"{key}={value}")
    rendered = " ".join(parts)
    return rendered if len(rendered) <= limit else rendered[: limit - 1] + "…"


def render_tree(roots: Sequence[Span], max_depth: Optional[int] = None) -> str:
    """The span tree as indented text with per-span wall time."""
    lines: List[str] = []
    for item, depth in iter_spans(roots):
        if max_depth is not None and depth > max_depth:
            continue
        label = f"{'  ' * depth}{item.name} [{item.kind}]"
        attrs = _format_attrs(item.attrs)
        suffix = f"  {attrs}" if attrs else ""
        lines.append(f"{label:<48s} {item.duration_ms:>10.3f} ms{suffix}")
    return "\n".join(lines)


def hotspots(roots: Sequence[Span], top: int = 10) -> List[Dict[str, Any]]:
    """Top-``top`` (kind, name) groups by *self* time (total minus children)."""
    totals: Dict[Tuple[str, str], Dict[str, float]] = {}
    for item, _depth in iter_spans(roots):
        child_time = sum(child.duration_s for child in item.children)
        entry = totals.setdefault(
            (item.kind, item.name), {"count": 0, "total_s": 0.0, "self_s": 0.0}
        )
        entry["count"] += 1
        entry["total_s"] += item.duration_s
        entry["self_s"] += max(item.duration_s - child_time, 0.0)
    rows = [
        {
            "kind": kind,
            "name": name,
            "count": int(entry["count"]),
            "total_ms": 1e3 * entry["total_s"],
            "self_ms": 1e3 * entry["self_s"],
        }
        for (kind, name), entry in totals.items()
    ]
    rows.sort(key=lambda row: (-row["self_ms"], row["kind"], row["name"]))
    return rows[:top]


def render_hotspots(roots: Sequence[Span], top: int = 10) -> str:
    """The hotspot table as aligned text (the ``trace`` subcommand's footer)."""
    rows = hotspots(roots, top=top)
    lines = [
        f"{'name':<20s} {'kind':<10s} {'count':>6s} {'total_ms':>10s} {'self_ms':>10s}"
    ]
    for row in rows:
        lines.append(
            f"{row['name']:<20s} {row['kind']:<10s} {row['count']:>6d} "
            f"{row['total_ms']:>10.3f} {row['self_ms']:>10.3f}"
        )
    return "\n".join(lines)


def summarize_spans(roots: Sequence[Span]) -> Dict[str, Dict[str, float]]:
    """Per-kind span counts and total milliseconds (the /status job summary)."""
    summary: Dict[str, Dict[str, float]] = {}
    for item, _depth in iter_spans(roots):
        entry = summary.setdefault(item.kind, {"spans": 0, "total_ms": 0.0})
        entry["spans"] += 1
        entry["total_ms"] += item.duration_ms
    for entry in summary.values():
        entry["spans"] = int(entry["spans"])
        entry["total_ms"] = round(entry["total_ms"], 3)
    return summary
