"""Process-wide metrics registry with Prometheus text exposition.

One :class:`MetricsRegistry` per process (:data:`METRICS`) absorbs the
instrumentation that used to live as scattered one-off counters: compiler
stage runs and end-to-end compiles (:mod:`repro.compiler.instrument`
publishes into it while keeping its old API), tuning-cache hits/misses/
absorbs, per-``measurement.kind`` evaluation counts, and the tuning
service's HTTP and job counters.

Three instrument families, all label-aware and thread-safe:

* :class:`Counter` — monotonically increasing totals
  (``repro_stage_runs_total{stage="tiling"}``);
* :class:`Gauge` — last-written values (``repro_jobs_inflight``);
* :class:`Histogram` — bucketed observations with ``_bucket``/``_sum``/
  ``_count`` series (``repro_pass_seconds{stage="analysis"}``).

:meth:`MetricsRegistry.render` emits the Prometheus text exposition format
(``text/plain; version=0.0.4``) served by the tuning server's ``/metrics``
endpoint; :func:`parse_prometheus_text` is the matching scrape-format lint
used by tests and CI.

Worker processes cannot share the parent's registry, so the registry also
supports snapshot/delta shipping: a worker snapshots before a job, computes
:meth:`~MetricsRegistry.delta_since` after, and the server
:meth:`~MetricsRegistry.absorb`\\ s the (picklable) delta — counters and
histograms add, gauges are deliberately skipped (last-write-wins semantics
do not survive merging).
"""

from __future__ import annotations

import json
import math
import re
import threading
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "METRICS",
    "MetricsRegistry",
    "parse_prometheus_text",
]

#: default histogram buckets (seconds), spanning sub-ms passes to slow runs
DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_number(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _label_pairs(
    label_names: Sequence[str], values: Tuple[str, ...]
) -> str:
    if not label_names:
        return ""
    rendered = ",".join(
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(label_names, values)
    )
    return "{" + rendered + "}"


class _Metric:
    """Shared machinery: label validation and the per-labelset sample map."""

    type_name = "untyped"

    def __init__(self, name: str, help: str, label_names: Sequence[str]) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in label_names:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r} on metric {name!r}")
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)
        self._lock = threading.Lock()
        # labelset (tuple of values in label_names order) -> sample state
        self._samples: Dict[Tuple[str, ...], Any] = {}
        if not self.label_names:
            self._samples[()] = self._zero()

    def _zero(self) -> Any:
        return 0.0

    def _labelset(self, labels: Mapping[str, Any]) -> Tuple[str, ...]:
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"metric {self.name!r} takes labels {list(self.label_names)}, "
                f"got {sorted(labels)}"
            )
        return tuple(str(labels[name]) for name in self.label_names)

    # -- snapshot/absorb plumbing (numeric state only; see MetricsRegistry) --------
    def _state(self) -> Dict[str, Any]:
        with self._lock:
            return {
                json.dumps(list(key)): self._copy_sample(value)
                for key, value in self._samples.items()
            }

    def _copy_sample(self, value: Any) -> Any:
        return value

    def _describe(self) -> Dict[str, Any]:
        return {
            "type": self.type_name,
            "help": self.help,
            "labels": list(self.label_names),
        }


class Counter(_Metric):
    """A monotonically increasing total, optionally labelled."""

    type_name = "counter"

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc {amount})")
        key = self._labelset(labels)
        with self._lock:
            self._samples[key] = self._samples.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        key = self._labelset(labels)
        with self._lock:
            return float(self._samples.get(key, 0.0))

    def _render(self) -> List[str]:
        with self._lock:
            items = sorted(self._samples.items())
        return [
            f"{self.name}{_label_pairs(self.label_names, key)} {_render_number(value)}"
            for key, value in items
        ]


class Gauge(_Metric):
    """A last-write-wins value (queue depths, in-flight jobs, limits)."""

    type_name = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        key = self._labelset(labels)
        with self._lock:
            self._samples[key] = float(value)

    def add(self, amount: float, **labels: Any) -> None:
        key = self._labelset(labels)
        with self._lock:
            self._samples[key] = self._samples.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        key = self._labelset(labels)
        with self._lock:
            return float(self._samples.get(key, 0.0))

    def _render(self) -> List[str]:
        with self._lock:
            items = sorted(self._samples.items())
        return [
            f"{self.name}{_label_pairs(self.label_names, key)} {_render_number(value)}"
            for key, value in items
        ]


class Histogram(_Metric):
    """Bucketed observations: cumulative ``_bucket`` series plus sum/count."""

    type_name = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        label_names: Sequence[str],
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError(f"histogram {name!r} buckets must be sorted and non-empty")
        self.buckets = tuple(float(b) for b in buckets)
        super().__init__(name, help, label_names)

    def _zero(self) -> Dict[str, Any]:
        return {"count": 0.0, "sum": 0.0, "buckets": [0.0] * len(self.buckets)}

    def _copy_sample(self, value: Dict[str, Any]) -> Dict[str, Any]:
        return {
            "count": value["count"],
            "sum": value["sum"],
            "buckets": list(value["buckets"]),
        }

    def observe(self, value: float, **labels: Any) -> None:
        key = self._labelset(labels)
        with self._lock:
            state = self._samples.get(key)
            if state is None:
                state = self._samples[key] = self._zero()
            state["count"] += 1
            state["sum"] += value
            # per-bucket (non-cumulative) counts; _render accumulates into
            # the Prometheus cumulative-`le` form
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    state["buckets"][index] += 1
                    break

    def count(self, **labels: Any) -> float:
        key = self._labelset(labels)
        with self._lock:
            state = self._samples.get(key)
            return float(state["count"]) if state else 0.0

    def _render(self) -> List[str]:
        with self._lock:
            items = sorted(
                (key, self._copy_sample(value)) for key, value in self._samples.items()
            )
        lines: List[str] = []
        bucket_labels = (*self.label_names, "le")
        for key, state in items:
            cumulative = 0.0
            for bound, in_bucket in zip(self.buckets, state["buckets"]):
                cumulative += in_bucket
                pairs = _label_pairs(bucket_labels, (*key, _render_number(bound)))
                lines.append(f"{self.name}_bucket{pairs} {_render_number(cumulative)}")
            pairs = _label_pairs(bucket_labels, (*key, "+Inf"))
            lines.append(f"{self.name}_bucket{pairs} {_render_number(state['count'])}")
            base = _label_pairs(self.label_names, key)
            lines.append(f"{self.name}_sum{base} {_render_number(state['sum'])}")
            lines.append(f"{self.name}_count{base} {_render_number(state['count'])}")
        return lines


class MetricsRegistry:
    """Name → metric map with get-or-create registration and text exposition.

    Registration is idempotent: :meth:`counter`/:meth:`gauge`/
    :meth:`histogram` return the existing instrument when name, type and
    label names match, and raise ``ValueError`` on any mismatch — two
    modules cannot silently disagree about a metric's shape.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, _Metric] = {}

    # -- registration ------------------------------------------------------------------
    def _register(self, cls: type, name: str, help: str, labels: Sequence[str], **kwargs: Any) -> Any:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or existing.label_names != tuple(labels):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.type_name}{list(existing.label_names)}"
                    )
                return existing
            metric = cls(name, help, labels, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Counter:
        return self._register(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Gauge:
        return self._register(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._register(Histogram, name, help, labels, buckets=buckets)

    def get(self, name: str) -> Optional[_Metric]:
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    # -- exposition --------------------------------------------------------------------
    def render(self) -> str:
        """The registry in Prometheus text exposition format (version 0.0.4)."""
        with self._lock:
            metrics = [self._metrics[name] for name in sorted(self._metrics)]
        lines: List[str] = []
        for metric in metrics:
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.type_name}")
            lines.extend(metric._render())
        return "\n".join(lines) + "\n"

    # -- cross-process shipping --------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Picklable numeric state of every metric (the delta baseline)."""
        with self._lock:
            metrics = list(self._metrics.values())
        return {metric.name: metric._state() for metric in metrics}

    def delta_since(self, baseline: Mapping[str, Mapping[str, Any]]) -> Dict[str, Any]:
        """What changed since ``baseline`` — counters and histograms only.

        The result is a picklable/JSON-able payload :meth:`absorb` applies to
        another process's registry.  Gauges are omitted: last-write-wins
        values cannot be merged additively.
        """
        delta: Dict[str, Any] = {}
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            if isinstance(metric, Gauge):
                continue
            before = baseline.get(metric.name, {})
            changed: Dict[str, Any] = {}
            for key, state in metric._state().items():
                prev = before.get(key)
                if isinstance(metric, Histogram):
                    zero = metric._zero() if prev is None else prev
                    diff = {
                        "count": state["count"] - zero["count"],
                        "sum": state["sum"] - zero["sum"],
                        "buckets": [
                            now - then
                            for now, then in zip(state["buckets"], zero["buckets"])
                        ],
                    }
                    if diff["count"] or diff["sum"]:
                        changed[key] = diff
                else:
                    diff = state - (prev or 0.0)
                    if diff:
                        changed[key] = diff
            if changed:
                described = metric._describe()
                described["samples"] = changed
                if isinstance(metric, Histogram):
                    described["buckets"] = list(metric.buckets)
                delta[metric.name] = described
        return delta

    def absorb(self, delta: Mapping[str, Mapping[str, Any]]) -> None:
        """Add another process's :meth:`delta_since` payload to this registry.

        Metrics the delta names are created on demand (matching type, labels
        and buckets), so a server absorbs worker-side instruments it never
        imported itself.
        """
        for name, payload in delta.items():
            labels = tuple(payload.get("labels", ()))
            if payload["type"] == "histogram":
                metric: Any = self.histogram(
                    name,
                    payload.get("help", ""),
                    labels,
                    buckets=payload.get("buckets", DEFAULT_BUCKETS),
                )
                with metric._lock:
                    for key_json, diff in payload["samples"].items():
                        key = tuple(json.loads(key_json))
                        state = metric._samples.get(key)
                        if state is None:
                            state = metric._samples[key] = metric._zero()
                        state["count"] += diff["count"]
                        state["sum"] += diff["sum"]
                        for index, amount in enumerate(diff["buckets"]):
                            if index < len(state["buckets"]):
                                state["buckets"][index] += amount
            elif payload["type"] == "counter":
                metric = self.counter(name, payload.get("help", ""), labels)
                with metric._lock:
                    for key_json, diff in payload["samples"].items():
                        key = tuple(json.loads(key_json))
                        metric._samples[key] = metric._samples.get(key, 0.0) + diff
            # gauges never appear in deltas; ignore unknown types defensively

    def reset(self) -> None:
        """Zero every sample, keeping registrations (tests and benchmarks)."""
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            with metric._lock:
                metric._samples.clear()
                if not metric.label_names:
                    metric._samples[()] = metric._zero()


#: the process-wide registry every repro subsystem publishes into
METRICS = MetricsRegistry()


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>[^\s]+)(?:\s+\d+)?$"
)
_LABEL_PAIR_RE = re.compile(
    r'(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"'
)


def parse_prometheus_text(
    text: str,
) -> Dict[str, Dict[Tuple[Tuple[str, str], ...], float]]:
    """Parse (and lint) Prometheus text exposition into nested samples.

    Returns ``{series_name: {((label, value), ...): sample_value}}`` —
    histogram ``_bucket``/``_sum``/``_count`` series appear under their full
    series names.  Raises ``ValueError`` on any malformed line, which is what
    makes it usable as the CI scrape-format lint.
    """
    samples: Dict[str, Dict[Tuple[Tuple[str, str], ...], float]] = {}
    typed: Dict[str, str] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] in ("HELP", "TYPE"):
                if not _NAME_RE.match(parts[2]):
                    raise ValueError(f"line {lineno}: bad metric name in {raw!r}")
                if parts[1] == "TYPE":
                    if len(parts) != 4 or parts[3] not in (
                        "counter", "gauge", "histogram", "summary", "untyped",
                    ):
                        raise ValueError(f"line {lineno}: bad TYPE line {raw!r}")
                    typed[parts[2]] = parts[3]
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample line {raw!r}")
        labels_text = match.group("labels") or ""
        labels: List[Tuple[str, str]] = []
        if labels_text:
            consumed = 0
            for pair in _LABEL_PAIR_RE.finditer(labels_text):
                labels.append((pair.group("name"), pair.group("value")))
                consumed = pair.end()
                if consumed < len(labels_text) and labels_text[consumed] == ",":
                    consumed += 1
            if consumed != len(labels_text):
                raise ValueError(f"line {lineno}: malformed labels in {raw!r}")
        value_text = match.group("value")
        try:
            value = float(value_text.replace("+Inf", "inf").replace("-Inf", "-inf"))
        except ValueError:
            raise ValueError(
                f"line {lineno}: non-numeric sample value {value_text!r}"
            ) from None
        samples.setdefault(match.group("name"), {})[tuple(labels)] = value
    return samples
