"""Observability for the tuning stack: metrics, spans, events, history.

Four layers, all process-wide and zero-configuration:

* :mod:`repro.telemetry.metrics` — the :data:`METRICS` registry of counters,
  gauges and bucketed histograms (with labels) that every subsystem
  publishes into, rendered in Prometheus text exposition format by the
  tuning server's ``GET /metrics`` endpoint;
* :mod:`repro.telemetry.trace` — opt-in span trees over the request
  lifecycle (request → search → candidate → pass/measure), exportable as
  JSONL and Chrome ``trace_event`` JSON and rendered by
  ``python -m repro.autotune trace``;
* :mod:`repro.telemetry.events` — the structured lifecycle event log
  (``job.submit``, ``cache.put``, ``job.error``, ...) the service narrates
  through, human- or JSON-rendered (``serve --log-json``);
* :mod:`repro.telemetry.history` — the persistent per-request tuning
  history (one :class:`HistoryRecord` per completed request) behind the
  ``python -m repro.autotune history`` regression sentinel and the
  server's ``GET /dashboard``.

Metric reference (name → labels → meaning):

==================================  ==================  =============================================
``repro_compiles_total``            —                   end-to-end pipeline compiles
``repro_stage_runs_total``          ``stage``           compiler pass executions
``repro_pass_seconds``              ``stage``           per-pass wall time (histogram)
``repro_cache_hits_total``          —                   tuning-cache lookup hits
``repro_cache_misses_total``        —                   tuning-cache lookup misses
``repro_cache_puts_total``          —                   reports persisted by this process
``repro_cache_absorbs_total``       —                   worker reports absorbed without persisting
``repro_measurements_total``        ``kind``            candidate costings per measurement kind
``repro_tuning_requests_total``     ``source``          ``autotune()`` calls (``cache`` | ``tuned``)
``repro_request_seconds``           —                   end-to-end ``autotune()`` wall time
``repro_http_requests_total``       ``method``,         tuning-server HTTP requests
                                    ``endpoint``
``repro_jobs_total``                ``outcome``         service submissions by outcome
``repro_job_seconds``               —                   per-job wall time (monotonic clock)
``repro_history_records_total``     ``source``          history records appended, by producer
==================================  ==================  =============================================
"""

from repro.telemetry.metrics import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    METRICS,
    MetricsRegistry,
    parse_prometheus_text,
)
from repro.telemetry.trace import (
    Span,
    TraceCollector,
    active_trace,
    annotate,
    capture_trace,
    coerce_spans,
    current_span,
    hotspots,
    iter_spans,
    load_trace,
    record_span,
    render_hotspots,
    render_tree,
    save_trace,
    span,
    start_trace,
    stop_trace,
    summarize_spans,
    to_chrome_trace,
    to_jsonl,
    trace_pass_hook,
)
from repro.telemetry.events import (
    EVENTS,
    EventLog,
    configure as configure_events,
    emit,
    events_pass_hook,
)
from repro.telemetry.history import (
    HistoryRecord,
    HistoryStore,
    check_history,
    compare_windows,
    open_history,
    parse_threshold,
    rollup,
    spearman_rho,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "EVENTS",
    "EventLog",
    "Gauge",
    "Histogram",
    "HistoryRecord",
    "HistoryStore",
    "METRICS",
    "MetricsRegistry",
    "Span",
    "TraceCollector",
    "active_trace",
    "annotate",
    "capture_trace",
    "check_history",
    "coerce_spans",
    "compare_windows",
    "configure_events",
    "current_span",
    "emit",
    "events_pass_hook",
    "hotspots",
    "iter_spans",
    "load_trace",
    "open_history",
    "parse_prometheus_text",
    "parse_threshold",
    "record_span",
    "rollup",
    "spearman_rho",
    "render_hotspots",
    "render_tree",
    "save_trace",
    "span",
    "start_trace",
    "stop_trace",
    "summarize_spans",
    "to_chrome_trace",
    "to_jsonl",
    "trace_pass_hook",
]
