"""Array declarations.

An :class:`Array` is a named, n-dimensional data space.  Shapes may be plain
integers or affine expressions in program parameters (e.g. ``N`` × ``N``);
local scratchpad buffers created by the framework are also Arrays, flagged
with ``memory="local"`` so the machine model can charge the right access
cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence, Tuple, Union

from repro.polyhedral.affine import AffineExpr, ExprLike

GLOBAL_MEMORY = "global"
LOCAL_MEMORY = "local"


@dataclass(frozen=True)
class Array:
    """A named n-dimensional array.

    Attributes
    ----------
    name:
        Unique array name within a program.
    shape:
        One extent per dimension; each extent is an ``int`` or an
        :class:`AffineExpr` over program parameters.
    dtype:
        Element type label (informational; the interpreter uses float64 /
        int64 numpy arrays).
    memory:
        ``"global"`` for off-chip arrays, ``"local"`` for scratchpad buffers
        created by the data-management framework.
    element_size:
        Size of one element in bytes, used for footprint and bandwidth
        accounting (default 4, matching the single-precision kernels of the
        paper's evaluation).
    """

    name: str
    shape: Tuple[Union[int, AffineExpr], ...]
    dtype: str = "float32"
    memory: str = GLOBAL_MEMORY
    element_size: int = 4

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("array name must be non-empty")
        if self.memory not in (GLOBAL_MEMORY, LOCAL_MEMORY):
            raise ValueError(f"memory must be 'global' or 'local', got {self.memory!r}")
        normalised = []
        for extent in self.shape:
            if isinstance(extent, AffineExpr):
                normalised.append(extent)
            else:
                extent = int(extent)
                if extent <= 0:
                    raise ValueError(f"array {self.name}: extents must be positive")
                normalised.append(extent)
        object.__setattr__(self, "shape", tuple(normalised))

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def is_local(self) -> bool:
        return self.memory == LOCAL_MEMORY

    def concrete_shape(self, param_binding: Optional[Mapping[str, int]] = None) -> Tuple[int, ...]:
        """Numeric shape given values for any symbolic extents."""
        binding = dict(param_binding or {})
        result = []
        for extent in self.shape:
            if isinstance(extent, AffineExpr):
                value = extent.evaluate(binding)
                if value.denominator != 1:
                    raise ValueError(
                        f"array {self.name}: extent {extent} evaluates to non-integer {value}"
                    )
                result.append(int(value))
            else:
                result.append(extent)
        if any(extent <= 0 for extent in result):
            raise ValueError(f"array {self.name}: non-positive concrete extent {result}")
        return tuple(result)

    def size_expr(self) -> Union[int, AffineExpr]:
        """Total number of elements, symbolically if any extent is symbolic."""
        total: Union[int, AffineExpr] = 1
        for extent in self.shape:
            if isinstance(extent, AffineExpr) or isinstance(total, AffineExpr):
                raise ValueError(
                    "symbolic total size of multi-dimensional symbolic arrays is "
                    "not affine; evaluate concrete_shape instead"
                )
            total *= extent
        return total

    def footprint_bytes(self, param_binding: Optional[Mapping[str, int]] = None) -> int:
        """Total size in bytes for concrete extents."""
        total = 1
        for extent in self.concrete_shape(param_binding):
            total *= extent
        return total * self.element_size

    def __getitem__(self, indices) -> "repro.ir.expressions.Load":  # noqa: F821
        """Index the array with affine expressions, producing a load expression.

        The returned :class:`~repro.ir.expressions.Load` carries raw index
        expressions; the :class:`~repro.ir.builder.ProgramBuilder` turns them
        into an :class:`~repro.polyhedral.affine.AffineFunction` once the
        surrounding loops are known.
        """
        from repro.ir.expressions import Load

        if not isinstance(indices, tuple):
            indices = (indices,)
        if len(indices) != self.ndim:
            raise ValueError(
                f"array {self.name} has {self.ndim} dimensions, got {len(indices)} indices"
            )
        exprs = tuple(AffineExpr.coerce(index) for index in indices)
        return Load(array=self, indices=exprs)

    def __str__(self) -> str:
        extents = "][".join(str(extent) for extent in self.shape)
        return f"{self.name}[{extents}]"
