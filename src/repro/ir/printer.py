"""C-like pretty printing of programs and loop ASTs.

The original system was a source-to-source compiler emitting CUDA C; in this
reproduction the generated programs are executed by the interpreter and the
machine model, but a readable C-like rendering is still invaluable for
inspection, documentation and tests (the worked example of the paper's Fig. 1
is checked against this printer's output structure).
"""

from __future__ import annotations

from typing import List

from repro.ir.ast import (
    BLOCK_PARALLEL,
    THREAD_PARALLEL,
    BlockNode,
    GuardNode,
    LoopNode,
    Node,
    StatementNode,
    SyncNode,
)
from repro.ir.program import Program
from repro.ir.statements import Statement

_INDENT = "  "


def statement_to_c(statement: Statement) -> str:
    """Render one statement as a C-like assignment."""
    lhs = str(statement.lhs)
    rhs = str(statement.rhs)
    if statement.reduction:
        return f"{lhs} {statement.reduction}= {rhs};"
    return f"{lhs} = {rhs};"


def ast_to_c(node: Node, indent: int = 0) -> str:
    """Render a loop-structure AST as C-like text."""
    lines = _render(node, indent)
    return "\n".join(lines)


def _render(node: Node, indent: int) -> List[str]:
    pad = _INDENT * indent
    if isinstance(node, BlockNode):
        lines: List[str] = []
        for child in node.body:
            lines.extend(_render(child, indent))
        return lines
    if isinstance(node, LoopNode):
        keyword = "for"
        if node.parallel == BLOCK_PARALLEL:
            keyword = "forall_blocks"
        elif node.parallel == THREAD_PARALLEL:
            keyword = "forall_threads"
        step = f"; {node.iterator} += {node.step}" if node.step != 1 else f"; {node.iterator}++"
        header = (
            f"{pad}{keyword} ({node.iterator} = {node.lower}; "
            f"{node.iterator} <= {node.upper}{step}) {{"
        )
        lines = [header]
        lines.extend(_render(node.body, indent + 1))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(node, GuardNode):
        condition = " && ".join(f"({c.expr} {'==' if c.is_equality else '>='} 0)" for c in node.constraints)
        lines = [f"{pad}if ({condition}) {{"]
        lines.extend(_render(node.body, indent + 1))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(node, StatementNode):
        comment = "" if node.kind == "compute" else f"  /* {node.kind} */"
        return [f"{pad}{statement_to_c(node.statement)}{comment}"]
    if isinstance(node, SyncNode):
        call = "__syncthreads()" if node.scope == "threads" else "__global_sync()"
        return [f"{pad}{call};"]
    raise TypeError(f"cannot render node of type {type(node).__name__}")


def program_to_c(program: Program) -> str:
    """Render a whole program: array declarations followed by the body."""
    lines: List[str] = [f"/* program: {program.name} */"]
    if program.params:
        lines.append(f"/* parameters: {', '.join(program.params)} */")
    for array in program.arrays.values():
        extents = "".join(f"[{extent}]" for extent in array.shape)
        qualifier = "__shared__ " if array.is_local else ""
        lines.append(f"{qualifier}{array.dtype} {array.name}{extents};")
    lines.append("")
    lines.append(ast_to_c(program.body))
    return "\n".join(lines)
