"""Affine-program intermediate representation.

Programs are collections of statements, each with an iteration domain
(a :class:`~repro.polyhedral.polyhedron.Polyhedron`), affine array accesses
and an executable right-hand-side expression tree.  The loop structure is an
explicit AST (:mod:`repro.ir.ast`) shared with the code generator, so that the
same interpreter executes original programs, scratchpad-transformed programs
and multi-level tiled programs.
"""

from repro.ir.arrays import Array
from repro.ir.expressions import (
    Expr,
    Const,
    Load,
    Iter,
    BinOp,
    Call,
    absolute,
    maximum,
    minimum,
)
from repro.ir.statements import Reference, Statement
from repro.ir.ast import (
    Node,
    BlockNode,
    LoopNode,
    GuardNode,
    StatementNode,
    SyncNode,
)
from repro.ir.program import Program
from repro.ir.builder import ProgramBuilder
from repro.ir.printer import program_to_c, ast_to_c

__all__ = [
    "Array",
    "Expr",
    "Const",
    "Load",
    "Iter",
    "BinOp",
    "Call",
    "absolute",
    "maximum",
    "minimum",
    "Reference",
    "Statement",
    "Node",
    "BlockNode",
    "LoopNode",
    "GuardNode",
    "StatementNode",
    "SyncNode",
    "Program",
    "ProgramBuilder",
    "program_to_c",
    "ast_to_c",
]
