"""Loop-structure AST shared by original, transformed and generated programs.

The AST makes control structure explicit — which loops surround which
statements, which loops are parallel and at which level (thread blocks vs.
threads), where copy code and synchronisation points sit — while statements
keep their polyhedral domains for analysis.  The same interpreter
(:mod:`repro.runtime.interpreter`) executes any AST, and the machine model
(:mod:`repro.machine`) walks it to account execution cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from repro.ir.statements import Statement
from repro.polyhedral.affine import AffineExpr
from repro.polyhedral.constraints import Constraint
from repro.polyhedral.parametric import QuasiAffineBound
from repro.utils.frac import fraction_ceil, fraction_floor

BoundValue = Union[int, AffineExpr, QuasiAffineBound]

# Parallelism levels a loop can be mapped to.
SEQUENTIAL = None
BLOCK_PARALLEL = "blocks"     # outer level: MIMD units / CUDA thread blocks
THREAD_PARALLEL = "threads"   # inner level: SIMD units / CUDA threads

# Statement roles.
COMPUTE = "compute"
COPY_IN = "copy_in"
COPY_OUT = "copy_out"


def evaluate_bound(value: BoundValue, binding: Mapping[str, int], *, is_lower: bool) -> int:
    """Evaluate a loop bound at a parameter/iterator binding.

    Lower bounds round up, upper bounds round down, so loops over
    rational-coefficient bounds still visit exactly the integer points of the
    underlying polyhedron.
    """
    if isinstance(value, int):
        return value
    if isinstance(value, QuasiAffineBound):
        result = value.evaluate(binding)
    elif isinstance(value, AffineExpr):
        result = value.evaluate(binding)
    else:
        raise TypeError(f"unsupported bound type {type(value).__name__}")
    return fraction_ceil(result) if is_lower else fraction_floor(result)


def bound_to_str(value: BoundValue) -> str:
    return str(value)


class Node:
    """Base class for AST nodes."""

    def children(self) -> Tuple["Node", ...]:
        return ()

    def walk(self) -> Iterator["Node"]:
        """Pre-order traversal of the subtree rooted at this node."""
        yield self
        for child in self.children():
            yield from child.walk()

    def statements(self) -> List[Statement]:
        """All statements contained in the subtree, in textual order."""
        return [node.statement for node in self.walk() if isinstance(node, StatementNode)]


@dataclass
class BlockNode(Node):
    """A sequence of nodes executed in order."""

    body: List[Node] = field(default_factory=list)

    def children(self) -> Tuple[Node, ...]:
        return tuple(self.body)

    def append(self, node: Node) -> None:
        self.body.append(node)

    def extend(self, nodes: Iterable[Node]) -> None:
        self.body.extend(nodes)


@dataclass
class LoopNode(Node):
    """A counted loop ``for iterator = lower .. upper step step``.

    ``parallel`` records the level of parallelism the loop is mapped to
    (``None`` = sequential, ``"blocks"`` = outer level, ``"threads"`` = inner
    level).  Parallel loops are still *executed* sequentially by the
    functional interpreter; the machine model uses the annotation to divide
    work across parallel units.
    """

    iterator: str
    lower: BoundValue
    upper: BoundValue
    body: BlockNode = field(default_factory=BlockNode)
    step: int = 1
    parallel: Optional[str] = SEQUENTIAL

    def __post_init__(self) -> None:
        if self.step <= 0:
            raise ValueError(f"loop {self.iterator}: step must be positive")
        if self.parallel not in (SEQUENTIAL, BLOCK_PARALLEL, THREAD_PARALLEL):
            raise ValueError(f"loop {self.iterator}: bad parallel level {self.parallel!r}")
        if isinstance(self.body, list):
            self.body = BlockNode(list(self.body))

    def children(self) -> Tuple[Node, ...]:
        return (self.body,)

    def bounds_at(self, binding: Mapping[str, int]) -> Tuple[int, int]:
        """Concrete (lower, upper) bounds at a binding of outer iterators/params."""
        low = evaluate_bound(self.lower, binding, is_lower=True)
        high = evaluate_bound(self.upper, binding, is_lower=False)
        return low, high

    def trip_count(self, binding: Mapping[str, int]) -> int:
        low, high = self.bounds_at(binding)
        if high < low:
            return 0
        return (high - low) // self.step + 1

    def iterate(self, binding: Mapping[str, int]) -> Iterator[int]:
        low, high = self.bounds_at(binding)
        return iter(range(low, high + 1, self.step))


@dataclass
class GuardNode(Node):
    """Execute the body only when all constraints hold at the current binding."""

    constraints: Tuple[Constraint, ...]
    body: BlockNode = field(default_factory=BlockNode)

    def __post_init__(self) -> None:
        self.constraints = tuple(self.constraints)
        if isinstance(self.body, list):
            self.body = BlockNode(list(self.body))

    def children(self) -> Tuple[Node, ...]:
        return (self.body,)

    def holds_at(self, binding: Mapping[str, int]) -> bool:
        return all(c.satisfied_by(binding) for c in self.constraints)


@dataclass
class StatementNode(Node):
    """Occurrence of a statement in the loop structure.

    ``kind`` distinguishes compute statements from data-movement statements
    generated by the scratchpad framework; the machine model charges DMA cost
    for the latter.
    """

    statement: Statement
    kind: str = COMPUTE

    def __post_init__(self) -> None:
        if self.kind not in (COMPUTE, COPY_IN, COPY_OUT):
            raise ValueError(f"unknown statement kind {self.kind!r}")

    @property
    def is_copy(self) -> bool:
        return self.kind in (COPY_IN, COPY_OUT)


@dataclass
class SyncNode(Node):
    """A synchronisation point.

    ``scope="threads"`` is a barrier among the inner-level processes of one
    outer-level unit (CUDA ``__syncthreads``); ``scope="blocks"`` is a global
    synchronisation across outer-level units (kernel relaunch on the GPU of
    the paper).
    """

    scope: str = "threads"

    def __post_init__(self) -> None:
        if self.scope not in ("threads", "blocks"):
            raise ValueError(f"unknown sync scope {self.scope!r}")


def find_loops(root: Node) -> List[LoopNode]:
    """All loop nodes of the subtree in pre-order."""
    return [node for node in root.walk() if isinstance(node, LoopNode)]


def find_loop(root: Node, iterator: str) -> Optional[LoopNode]:
    """The first loop with the given iterator name, or ``None``."""
    for node in root.walk():
        if isinstance(node, LoopNode) and node.iterator == iterator:
            return node
    return None


def enclosing_loops(root: Node, target: Node) -> List[LoopNode]:
    """Loops surrounding *target* within *root*, outermost first."""
    path: List[LoopNode] = []

    def visit(node: Node, stack: List[LoopNode]) -> bool:
        if node is target:
            path.extend(stack)
            return True
        if isinstance(node, LoopNode):
            stack = stack + [node]
        for child in node.children():
            if visit(child, stack):
                return True
        return False

    visit(root, [])
    return path
