"""Program container: arrays, parameters, statements and loop structure."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.ir.arrays import Array
from repro.ir.ast import BlockNode, LoopNode, Node, StatementNode, enclosing_loops
from repro.ir.statements import Statement
from repro.polyhedral.dependence import AccessDescriptor, DependenceAnalyzer


@dataclass
class Program:
    """A regular affine program (or a program block / tile body).

    Attributes
    ----------
    name:
        Program name, used in reports and generated code headers.
    params:
        Symbolic parameters (problem sizes, tile origins) the program is
        written against.
    arrays:
        All declared arrays (global and local), by name.
    statements:
        All statements, by name.
    body:
        The loop-structure AST; every statement of ``statements`` appears in
        exactly one :class:`~repro.ir.ast.StatementNode` of the body.
    default_params:
        Optional default parameter values used by examples and tests.
    """

    name: str
    params: Tuple[str, ...] = ()
    arrays: Dict[str, Array] = field(default_factory=dict)
    statements: Dict[str, Statement] = field(default_factory=dict)
    body: BlockNode = field(default_factory=BlockNode)
    default_params: Dict[str, int] = field(default_factory=dict)
    #: Derived symbols (e.g. scratchpad remap offsets) defined as affine or
    #: quasi-affine expressions over parameters and outer loop iterators; the
    #: interpreter recomputes them whenever the binding changes.
    symbol_definitions: Dict[str, object] = field(default_factory=dict)

    # -- registration ----------------------------------------------------------
    def add_array(self, array: Array) -> Array:
        if array.name in self.arrays and self.arrays[array.name] is not array:
            raise ValueError(f"array {array.name!r} is already declared")
        self.arrays[array.name] = array
        return array

    def add_statement(self, statement: Statement) -> Statement:
        if statement.name in self.statements:
            raise ValueError(f"statement {statement.name!r} is already defined")
        self.statements[statement.name] = statement
        for array in statement.arrays():
            self.arrays.setdefault(array.name, array)
        return statement

    # -- queries ----------------------------------------------------------------
    @property
    def statement_list(self) -> List[Statement]:
        """Statements in textual order."""
        return sorted(self.statements.values(), key=lambda s: s.textual_position)

    def statement(self, name: str) -> Statement:
        try:
            return self.statements[name]
        except KeyError:
            raise KeyError(f"no statement named {name!r} in program {self.name!r}") from None

    def array(self, name: str) -> Array:
        try:
            return self.arrays[name]
        except KeyError:
            raise KeyError(f"no array named {name!r} in program {self.name!r}") from None

    def global_arrays(self) -> List[Array]:
        return [a for a in self.arrays.values() if not a.is_local]

    def local_arrays(self) -> List[Array]:
        return [a for a in self.arrays.values() if a.is_local]

    def loops_around(self, statement: Statement) -> List[LoopNode]:
        """Loop nodes surrounding the statement's occurrence in the body."""
        for node in self.body.walk():
            if isinstance(node, StatementNode) and node.statement.name == statement.name:
                return enclosing_loops(self.body, node)
        raise ValueError(f"statement {statement.name!r} does not occur in the body")

    # -- analysis adapters --------------------------------------------------------
    def access_descriptors(self) -> List[AccessDescriptor]:
        descriptors: List[AccessDescriptor] = []
        for statement in self.statement_list:
            descriptors.extend(statement.access_descriptors())
        return descriptors

    def dependence_analyzer(self) -> DependenceAnalyzer:
        """Dependence analyzer over all accesses of the program."""
        return DependenceAnalyzer(self.access_descriptors())

    # -- validation ----------------------------------------------------------------
    def validate(self) -> None:
        """Consistency checks; raises ``ValueError`` with a descriptive message."""
        in_body = {
            node.statement.name
            for node in self.body.walk()
            if isinstance(node, StatementNode)
        }
        declared = set(self.statements)
        missing = declared - in_body
        if missing:
            raise ValueError(f"statements never scheduled in the body: {sorted(missing)}")
        unknown = in_body - declared
        if unknown:
            raise ValueError(f"body schedules unknown statements: {sorted(unknown)}")
        for statement in self.statement_list:
            loops = self.loops_around(statement)
            loop_names = [loop.iterator for loop in loops]
            for dim in statement.domain.dims:
                if dim not in loop_names:
                    raise ValueError(
                        f"statement {statement.name!r}: domain dimension {dim!r} has "
                        f"no surrounding loop (loops: {loop_names})"
                    )
            for param in statement.domain.params:
                if (
                    param not in self.params
                    and param not in loop_names
                    and param not in self.symbol_definitions
                ):
                    raise ValueError(
                        f"statement {statement.name!r}: parameter {param!r} is neither "
                        f"a program parameter {self.params}, an enclosing loop iterator "
                        f"{loop_names}, nor a derived symbol"
                    )

    def bound_params(self, values: Optional[Mapping[str, int]] = None) -> Dict[str, int]:
        """Merge default parameter values with caller-provided overrides."""
        binding = dict(self.default_params)
        if values:
            binding.update(values)
        missing = [p for p in self.params if p not in binding]
        if missing:
            raise ValueError(f"program {self.name!r}: unbound parameters {missing}")
        return binding

    def __str__(self) -> str:
        from repro.ir.printer import program_to_c

        return program_to_c(self)
