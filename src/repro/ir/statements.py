"""Statements and array references.

A :class:`Statement` is an assignment ``lhs = rhs`` (or a reduction
``lhs op= rhs``) executed over an iteration domain.  Its array accesses are
the :class:`~repro.ir.expressions.Load` nodes of the left- and right-hand
sides; :class:`Reference` packages one access together with its affine access
function for the analysis layers (data spaces, dependences).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, List, Mapping, Optional, Sequence, Tuple

from repro.ir.arrays import Array
from repro.ir.expressions import Expr, Load
from repro.polyhedral.affine import AffineFunction
from repro.polyhedral.dependence import AccessDescriptor
from repro.polyhedral.polyhedron import Polyhedron

_REDUCTION_OPS = ("+", "*", "min", "max")


@dataclass(frozen=True)
class Reference:
    """An array access together with its affine access function."""

    array: Array
    function: AffineFunction
    is_write: bool = False

    @property
    def rank(self) -> int:
        """Rank of the iterator part of the access function (paper's rank(F))."""
        return self.function.rank()

    def data_space(self, domain: Polyhedron, output_dims: Optional[Sequence[str]] = None) -> Polyhedron:
        """The data space touched by this reference over *domain* (``F · I``)."""
        from repro.polyhedral.image import image_of_polyhedron

        return image_of_polyhedron(domain, self.function, output_dims)

    def __str__(self) -> str:
        kind = "write" if self.is_write else "read"
        return f"{kind} {self.array.name}{self.function}"


@dataclass(frozen=True)
class Statement:
    """An assignment statement over an affine iteration domain.

    Attributes
    ----------
    name:
        Unique statement name within the program.
    domain:
        Iteration domain; its dimension order is the surrounding loop order,
        outermost first.
    lhs:
        The written access.
    rhs:
        Right-hand-side expression tree.
    reduction:
        ``None`` for a plain assignment, or an operator (``"+"``, ``"*"``,
        ``"min"``, ``"max"``) meaning ``lhs = lhs  op  rhs``.
    textual_position:
        Position in the original program text, used to order loop-independent
        dependences.
    """

    name: str
    domain: Polyhedron
    lhs: Load
    rhs: Expr
    reduction: Optional[str] = None
    textual_position: int = 0

    def __post_init__(self) -> None:
        if self.reduction is not None and self.reduction not in _REDUCTION_OPS:
            raise ValueError(
                f"unsupported reduction {self.reduction!r}; supported: {_REDUCTION_OPS}"
            )

    # -- accesses -------------------------------------------------------------
    @property
    def iterators(self) -> Tuple[str, ...]:
        """Surrounding loop iterators, outermost first."""
        return self.domain.dims

    def read_loads(self) -> List[Load]:
        """All loads performed when executing one instance (reduction reads lhs)."""
        loads = list(self.rhs.loads())
        if self.reduction is not None:
            loads.append(self.lhs)
        return loads

    def write_load(self) -> Load:
        return self.lhs

    def _function_for(self, load: Load) -> AffineFunction:
        return AffineFunction(self.iterators, load.indices)

    def read_references(self) -> List[Reference]:
        return [
            Reference(load.array, self._function_for(load), is_write=False)
            for load in self.read_loads()
        ]

    def write_reference(self) -> Reference:
        return Reference(self.lhs.array, self._function_for(self.lhs), is_write=True)

    def references(self) -> List[Reference]:
        return self.read_references() + [self.write_reference()]

    def arrays(self) -> List[Array]:
        """Distinct arrays accessed by this statement."""
        seen = {}
        for load in [self.lhs] + self.rhs.loads():
            seen[load.array.name] = load.array
        return list(seen.values())

    # -- transformation helpers -----------------------------------------------
    def map_loads(self, transform: Callable[[Load], Expr]) -> "Statement":
        """Rewrite every access (the scratchpad remap uses this).

        The transform applied to the left-hand side must return a
        :class:`Load`.
        """
        new_lhs = transform(self.lhs)
        if not isinstance(new_lhs, Load):
            raise TypeError("the left-hand side of a statement must remain a Load")
        new_rhs = self.rhs.map_loads(transform)
        return replace(self, lhs=new_lhs, rhs=new_rhs)

    def rename_iterators(self, mapping: Mapping[str, str]) -> "Statement":
        """Rename surrounding loop iterators consistently in domain and accesses."""
        new_domain = self.domain.rename_dims(dict(mapping))
        new_lhs = self.lhs.rename_iters(mapping)
        new_rhs = self.rhs.rename_iters(mapping)
        return replace(self, domain=new_domain, lhs=new_lhs, rhs=new_rhs)

    def with_domain(self, domain: Polyhedron) -> "Statement":
        """Replace the iteration domain (e.g. after tiling introduces new bounds)."""
        return replace(self, domain=domain)

    # -- analysis adapters ----------------------------------------------------------
    def access_descriptors(self) -> List[AccessDescriptor]:
        """Accesses in the representation consumed by the dependence analyzer."""
        descriptors = [
            AccessDescriptor(
                statement=self.name,
                array=self.lhs.array.name,
                function=self._function_for(self.lhs),
                domain=self.domain,
                is_write=True,
                textual_position=self.textual_position,
            )
        ]
        for load in self.read_loads():
            descriptors.append(
                AccessDescriptor(
                    statement=self.name,
                    array=load.array.name,
                    function=self._function_for(load),
                    domain=self.domain,
                    is_write=False,
                    textual_position=self.textual_position,
                )
            )
        return descriptors

    def __str__(self) -> str:
        op = f"{self.reduction}=" if self.reduction else "="
        return f"{self.name}: {self.lhs} {op} {self.rhs}"
