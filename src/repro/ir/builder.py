"""Builder DSL for constructing affine programs.

Example — the 1-D Jacobi sweep::

    b = ProgramBuilder("jacobi", params=["N"])
    N = b.param("N")
    A = b.array("A", (N + 2,))
    B = b.array("B", (N + 2,))
    i = b.var("i")
    with b.loop("i", 1, N):
        b.assign(B[i], (A[i - 1] + A[i] + A[i + 1]) / 3)
    program = b.build()

Loops nest via ``with`` blocks; each ``assign`` captures the current loop
stack as the statement's iteration domain and records the statement at the
current position of the loop-structure AST.
"""

from __future__ import annotations

import contextlib
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.ir.arrays import Array
from repro.ir.ast import BlockNode, LoopNode, StatementNode
from repro.ir.expressions import Expr, Load, as_expr
from repro.ir.program import Program
from repro.ir.statements import Statement
from repro.polyhedral.affine import AffineExpr, ExprLike
from repro.polyhedral.constraints import Constraint
from repro.polyhedral.polyhedron import Polyhedron


class ProgramBuilder:
    """Incrementally builds a :class:`~repro.ir.program.Program`."""

    def __init__(self, name: str, params: Sequence[str] = ()) -> None:
        self._program = Program(name=name, params=tuple(params))
        self._loop_stack: List[LoopNode] = []
        self._block_stack: List[BlockNode] = [self._program.body]
        self._statement_counter = 0

    # -- declarations -------------------------------------------------------------
    def param(self, name: str) -> AffineExpr:
        """Reference a program parameter as an affine expression."""
        if name not in self._program.params:
            self._program.params = tuple(self._program.params) + (name,)
        return AffineExpr.var(name)

    def var(self, name: str) -> AffineExpr:
        """Reference a loop iterator as an affine expression."""
        return AffineExpr.var(name)

    def array(
        self,
        name: str,
        shape: Sequence[Union[int, AffineExpr]],
        dtype: str = "float32",
        memory: str = "global",
        element_size: int = 4,
    ) -> Array:
        """Declare an array and register it with the program."""
        array = Array(
            name=name,
            shape=tuple(shape),
            dtype=dtype,
            memory=memory,
            element_size=element_size,
        )
        return self._program.add_array(array)

    def set_default_params(self, **values: int) -> None:
        """Record default parameter values used by examples and tests."""
        self._program.default_params.update(values)

    # -- structure -----------------------------------------------------------------
    @contextlib.contextmanager
    def loop(
        self, iterator: str, lower: ExprLike, upper: ExprLike, step: int = 1
    ) -> Iterator[AffineExpr]:
        """Open a loop ``for iterator = lower .. upper``; yields the iterator expr."""
        for open_loop in self._loop_stack:
            if open_loop.iterator == iterator:
                raise ValueError(f"loop iterator {iterator!r} is already in scope")
        node = LoopNode(
            iterator=iterator,
            lower=_as_bound(lower),
            upper=_as_bound(upper),
            step=step,
        )
        self._block_stack[-1].append(node)
        self._loop_stack.append(node)
        self._block_stack.append(node.body)
        try:
            yield AffineExpr.var(iterator)
        finally:
            self._block_stack.pop()
            self._loop_stack.pop()

    def assign(
        self,
        lhs: Load,
        rhs: Union[Expr, int, float, AffineExpr],
        reduction: Optional[str] = None,
        name: Optional[str] = None,
    ) -> Statement:
        """Record the statement ``lhs = rhs`` (or ``lhs reduction= rhs``)."""
        if not isinstance(lhs, Load):
            raise TypeError("the left-hand side of an assignment must be an array access")
        statement = Statement(
            name=name or f"S{self._statement_counter}",
            domain=self._current_domain(),
            lhs=lhs,
            rhs=as_expr(rhs),
            reduction=reduction,
            textual_position=self._statement_counter,
        )
        self._statement_counter += 1
        self._program.add_statement(statement)
        self._block_stack[-1].append(StatementNode(statement))
        return statement

    def accumulate(
        self,
        lhs: Load,
        rhs: Union[Expr, int, float, AffineExpr],
        name: Optional[str] = None,
    ) -> Statement:
        """Shorthand for ``lhs += rhs``."""
        return self.assign(lhs, rhs, reduction="+", name=name)

    # -- finalisation ---------------------------------------------------------------
    def build(self, validate: bool = True) -> Program:
        """Return the built program (validated by default)."""
        if validate:
            self._program.validate()
        return self._program

    # -- internals --------------------------------------------------------------------
    def _current_domain(self) -> Polyhedron:
        dims = [loop.iterator for loop in self._loop_stack]
        constraints = []
        for loop in self._loop_stack:
            iterator = AffineExpr.var(loop.iterator)
            constraints.append(Constraint.greater_equal(iterator, _bound_expr(loop.lower)))
            constraints.append(Constraint.less_equal(iterator, _bound_expr(loop.upper)))
        return Polyhedron(dims, constraints, self._program.params)


def _as_bound(value: ExprLike) -> Union[int, AffineExpr]:
    if isinstance(value, AffineExpr):
        return value
    return int(value)


def _bound_expr(value: Union[int, AffineExpr]) -> AffineExpr:
    return value if isinstance(value, AffineExpr) else AffineExpr.const(value)
