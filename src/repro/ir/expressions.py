"""Executable expression trees for statement right-hand sides.

Statements in the IR carry a small expression language — constants, loop
iterators, affine array loads, arithmetic and a few intrinsic calls — which is
rich enough for the paper's kernels (motion estimation uses absolute
differences and accumulation, Jacobi uses weighted sums) while staying fully
analysable: every array access in a tree is an affine :class:`Load` that the
scratchpad framework can redirect to a local buffer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Dict, List, Mapping, Sequence, Tuple, Union

from repro.polyhedral.affine import AffineExpr, ExprLike

Number = Union[int, float, Fraction]


class Expr:
    """Base class of all expression nodes.  Instances are immutable."""

    # -- operator sugar -----------------------------------------------------
    def __add__(self, other) -> "BinOp":
        return BinOp("+", self, as_expr(other))

    def __radd__(self, other) -> "BinOp":
        return BinOp("+", as_expr(other), self)

    def __sub__(self, other) -> "BinOp":
        return BinOp("-", self, as_expr(other))

    def __rsub__(self, other) -> "BinOp":
        return BinOp("-", as_expr(other), self)

    def __mul__(self, other) -> "BinOp":
        return BinOp("*", self, as_expr(other))

    def __rmul__(self, other) -> "BinOp":
        return BinOp("*", as_expr(other), self)

    def __truediv__(self, other) -> "BinOp":
        return BinOp("/", self, as_expr(other))

    def __rtruediv__(self, other) -> "BinOp":
        return BinOp("/", as_expr(other), self)

    def __neg__(self) -> "BinOp":
        return BinOp("-", Const(0), self)

    # -- analysis ------------------------------------------------------------
    def loads(self) -> List["Load"]:
        """All array loads in the tree, in evaluation order."""
        raise NotImplementedError

    def map_loads(self, transform: Callable[["Load"], "Expr"]) -> "Expr":
        """Rebuild the tree applying *transform* to every :class:`Load`."""
        raise NotImplementedError

    def rename_iters(self, mapping: Mapping[str, str]) -> "Expr":
        """Rename loop iterators / parameters appearing in the tree."""
        raise NotImplementedError

    def evaluate(self, env: "EvaluationEnv", binding: Mapping[str, int]) -> float:
        """Evaluate at a fully bound iteration point."""
        raise NotImplementedError


class EvaluationEnv:
    """Minimal protocol the interpreter provides to expression evaluation."""

    def read(self, array, indices: Tuple[int, ...]) -> float:  # pragma: no cover
        raise NotImplementedError


def as_expr(value: Union[Expr, Number, AffineExpr]) -> Expr:
    """Coerce numbers and affine expressions into expression nodes."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, AffineExpr):
        return AffineValue(value)
    if isinstance(value, (int, float, Fraction)):
        return Const(value)
    raise TypeError(f"cannot interpret {type(value).__name__} as an expression")


@dataclass(frozen=True)
class Const(Expr):
    """A numeric literal."""

    value: Number

    def loads(self) -> List["Load"]:
        return []

    def map_loads(self, transform) -> "Expr":
        return self

    def rename_iters(self, mapping) -> "Expr":
        return self

    def evaluate(self, env, binding) -> float:
        return float(self.value)

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class Iter(Expr):
    """The value of a loop iterator or parameter."""

    name: str

    def loads(self) -> List["Load"]:
        return []

    def map_loads(self, transform) -> "Expr":
        return self

    def rename_iters(self, mapping) -> "Expr":
        return Iter(mapping.get(self.name, self.name))

    def evaluate(self, env, binding) -> float:
        return float(binding[self.name])

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class AffineValue(Expr):
    """An affine expression used as a value (e.g. ``A[i] = i + 2*N``)."""

    expr: AffineExpr

    def loads(self) -> List["Load"]:
        return []

    def map_loads(self, transform) -> "Expr":
        return self

    def rename_iters(self, mapping) -> "Expr":
        return AffineValue(self.expr.rename(mapping))

    def evaluate(self, env, binding) -> float:
        return float(self.expr.evaluate(binding))

    def __str__(self) -> str:
        return f"({self.expr})"


@dataclass(frozen=True)
class Load(Expr):
    """An affine array access ``array[e1]...[en]`` used as a value.

    The same node type describes the left-hand side of assignments; whether a
    given occurrence is a read or a write is determined by its position in the
    owning :class:`~repro.ir.statements.Statement`.
    """

    array: "repro.ir.arrays.Array"  # noqa: F821
    indices: Tuple[AffineExpr, ...]

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "indices", tuple(AffineExpr.coerce(i) for i in self.indices)
        )
        if len(self.indices) != self.array.ndim:
            raise ValueError(
                f"array {self.array.name} expects {self.array.ndim} indices, "
                f"got {len(self.indices)}"
            )

    def loads(self) -> List["Load"]:
        return [self]

    def map_loads(self, transform) -> "Expr":
        return transform(self)

    def rename_iters(self, mapping) -> "Expr":
        return Load(self.array, tuple(i.rename(mapping) for i in self.indices))

    def evaluate(self, env, binding) -> float:
        point = tuple(int(index.evaluate(binding)) for index in self.indices)
        return env.read(self.array, point)

    def index_point(self, binding: Mapping[str, int]) -> Tuple[int, ...]:
        """Concrete integer index tuple at a bound iteration point."""
        return tuple(int(index.evaluate(binding)) for index in self.indices)

    def __str__(self) -> str:
        idx = "][".join(str(i) for i in self.indices)
        return f"{self.array.name}[{idx}]"


_BINARY_OPS: Dict[str, Callable[[float, float], float]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
}


@dataclass(frozen=True)
class BinOp(Expr):
    """A binary arithmetic operation."""

    op: str
    lhs: Expr
    rhs: Expr

    def __post_init__(self) -> None:
        if self.op not in _BINARY_OPS:
            raise ValueError(f"unsupported binary operator {self.op!r}")

    def loads(self) -> List["Load"]:
        return self.lhs.loads() + self.rhs.loads()

    def map_loads(self, transform) -> "Expr":
        return BinOp(self.op, self.lhs.map_loads(transform), self.rhs.map_loads(transform))

    def rename_iters(self, mapping) -> "Expr":
        return BinOp(self.op, self.lhs.rename_iters(mapping), self.rhs.rename_iters(mapping))

    def evaluate(self, env, binding) -> float:
        return _BINARY_OPS[self.op](
            self.lhs.evaluate(env, binding), self.rhs.evaluate(env, binding)
        )

    def __str__(self) -> str:
        return f"({self.lhs} {self.op} {self.rhs})"


_INTRINSICS: Dict[str, Callable[..., float]] = {
    "abs": lambda x: abs(x),
    "min": lambda *xs: min(xs),
    "max": lambda *xs: max(xs),
    "sqrt": lambda x: math.sqrt(x),
}


@dataclass(frozen=True)
class Call(Expr):
    """An intrinsic call (``abs``, ``min``, ``max``, ``sqrt``)."""

    func: str
    args: Tuple[Expr, ...]

    def __post_init__(self) -> None:
        if self.func not in _INTRINSICS:
            raise ValueError(
                f"unsupported intrinsic {self.func!r}; "
                f"supported: {sorted(_INTRINSICS)}"
            )
        object.__setattr__(self, "args", tuple(as_expr(a) for a in self.args))

    def loads(self) -> List["Load"]:
        result: List[Load] = []
        for arg in self.args:
            result.extend(arg.loads())
        return result

    def map_loads(self, transform) -> "Expr":
        return Call(self.func, tuple(arg.map_loads(transform) for arg in self.args))

    def rename_iters(self, mapping) -> "Expr":
        return Call(self.func, tuple(arg.rename_iters(mapping) for arg in self.args))

    def evaluate(self, env, binding) -> float:
        return _INTRINSICS[self.func](*(arg.evaluate(env, binding) for arg in self.args))

    def __str__(self) -> str:
        args = ", ".join(str(arg) for arg in self.args)
        return f"{self.func}({args})"


def absolute(value) -> Call:
    """``abs(value)`` as an expression node."""
    return Call("abs", (as_expr(value),))


def minimum(*values) -> Call:
    """``min(values...)`` as an expression node."""
    return Call("min", tuple(as_expr(v) for v in values))


def maximum(*values) -> Call:
    """``max(values...)`` as an expression node."""
    return Call("max", tuple(as_expr(v) for v in values))
