"""Memory-system helpers shared by the GPU and CPU models."""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.spec import CPUSpec, GPUSpec


@dataclass(frozen=True)
class MemoryModel:
    """Derived memory-cost quantities for a GPU specification."""

    spec: GPUSpec

    def scratchpad_fits(self, bytes_per_block: int, blocks_per_multiprocessor: int = 1) -> bool:
        """Can the given number of blocks share one multiprocessor's scratchpad?"""
        if blocks_per_multiprocessor <= 0:
            raise ValueError("blocks_per_multiprocessor must be positive")
        return bytes_per_block * blocks_per_multiprocessor <= self.spec.shared_memory_per_multiprocessor

    def memory_limit_per_block(self, blocks_per_multiprocessor: int = 1) -> int:
        """Scratchpad bytes available to one block when sharing a multiprocessor.

        This is the paper's ``M_up``: the total capacity divided by the number
        of processes assigned to the same outer-level processor (for kernels
        that need synchronisation across blocks and therefore keep all blocks
        resident), or the full capacity otherwise.
        """
        if blocks_per_multiprocessor <= 0:
            raise ValueError("blocks_per_multiprocessor must be positive")
        return self.spec.shared_memory_per_multiprocessor // blocks_per_multiprocessor

    def dma_cycles(self, elements: int, threads: int) -> float:
        """Cycles to move *elements* between DRAM and scratchpad with *threads* helpers."""
        if elements <= 0:
            return 0.0
        threads = max(min(threads, self.spec.warp_size * 16), 1)
        return elements * self.spec.dma_cycles_per_element / threads


def cpu_access_cycles(spec: CPUSpec, working_set_bytes: float) -> float:
    """Average cycles per access for a working set of the given size.

    A simple capacity model: working sets within the L2 capacity hit in cache;
    larger working sets pay DRAM latency on the fraction of accesses that
    exceed the cache (one miss per cache line of streamed data).
    """
    if working_set_bytes <= spec.l2_cache_bytes:
        return spec.cache_hit_cycles
    # Streaming behaviour: one DRAM access per cache line, the rest hit.
    elements_per_line = spec.cache_line_bytes / 4.0
    miss_fraction = 1.0 / elements_per_line
    return (
        miss_fraction * spec.dram_access_cycles
        + (1.0 - miss_fraction) * spec.cache_hit_cycles
    )
