"""Analytical performance model of the two-level GPU-like machine.

The model prices one kernel launch from a per-block workload descriptor:

* compute cycles: statement instances are spread over the multiprocessor's
  SIMD units (8 lanes), so a block with ``W`` instances needs roughly
  ``W · c / simd`` cycles of arithmetic;
* global traffic issued from compute code costs
  ``global_access_cycles`` per access per lane (uncoalesced pattern, the
  situation the scratchpad transformation removes);
* scratchpad traffic costs ``shared_access_cycles``;
* copy-in / copy-out (DMA) traffic is performed cooperatively by the block's
  threads at ``dma_cycles_per_element`` per element and pays one intra-block
  synchronisation per occurrence;
* blocks execute in waves: the number of concurrently resident blocks is
  limited by the scratchpad footprint per block (``X / M``) and by the number
  of multiprocessors;
* kernels that need synchronisation across thread blocks pay a device-wide
  synchronisation per round (modelled as a kernel relaunch).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.machine.memory import MemoryModel
from repro.machine.spec import GEFORCE_8800_GTX, GPUSpec
from repro.tiling.mapping import LaunchGeometry, occupancy_limited_blocks


@dataclass
class BlockWorkload:
    """What one thread block (outer-level tile) executes."""

    #: number of compute statement instances executed by the block
    compute_instances: float
    #: global-memory accesses per compute instance (after remapping)
    global_accesses_per_instance: float
    #: scratchpad accesses per compute instance (after remapping)
    shared_accesses_per_instance: float
    #: total elements copied into the scratchpad by the block (all occurrences)
    copy_in_elements: float = 0.0
    #: total elements copied out of the scratchpad by the block
    copy_out_elements: float = 0.0
    #: number of copy "waves" (each pays one intra-block synchronisation)
    copy_occurrences: float = 0.0
    #: additional intra-block synchronisations (e.g. between sub-tiles)
    extra_block_syncs: float = 0.0
    element_size: int = 4

    def scale(self, factor: float) -> "BlockWorkload":
        """A workload with all totals multiplied by *factor* (per-instance rates kept)."""
        return BlockWorkload(
            compute_instances=self.compute_instances * factor,
            global_accesses_per_instance=self.global_accesses_per_instance,
            shared_accesses_per_instance=self.shared_accesses_per_instance,
            copy_in_elements=self.copy_in_elements * factor,
            copy_out_elements=self.copy_out_elements * factor,
            copy_occurrences=self.copy_occurrences * factor,
            extra_block_syncs=self.extra_block_syncs * factor,
            element_size=self.element_size,
        )


@dataclass
class KernelLaunch:
    """A kernel launch: per-block workload plus launch geometry."""

    workload: BlockWorkload
    geometry: LaunchGeometry
    #: number of device-wide synchronisation rounds (kernel relaunches); 1 for
    #: kernels with no cross-block synchronisation
    global_sync_rounds: int = 1


class GPUPerformanceModel:
    """Prices kernel launches on a :class:`GPUSpec`."""

    def __init__(self, spec: GPUSpec = GEFORCE_8800_GTX) -> None:
        self.spec = spec
        self.memory = MemoryModel(spec)

    # -- per-block -----------------------------------------------------------------
    def block_cycles(self, workload: BlockWorkload, threads_per_block: int) -> float:
        """Cycles one multiprocessor spends executing one block."""
        spec = self.spec
        lanes = spec.simd_units_per_multiprocessor
        threads = max(min(threads_per_block, spec.max_threads_per_block), 1)

        compute = workload.compute_instances * spec.compute_cycles_per_instance / lanes
        global_traffic = (
            workload.compute_instances
            * workload.global_accesses_per_instance
            * spec.global_access_cycles
            / lanes
        )
        shared_traffic = (
            workload.compute_instances
            * workload.shared_accesses_per_instance
            * spec.shared_access_cycles
            / lanes
        )
        dma = self.memory.dma_cycles(
            int(workload.copy_in_elements + workload.copy_out_elements), threads
        )
        syncs = (
            (workload.copy_occurrences + workload.extra_block_syncs)
            * spec.block_sync_cycles
            * math.ceil(threads / spec.warp_size)
        )
        return compute + global_traffic + shared_traffic + dma + syncs

    # -- whole launch -----------------------------------------------------------------
    def concurrent_blocks(self, geometry: LaunchGeometry) -> int:
        per_mp = occupancy_limited_blocks(
            geometry.shared_memory_per_block_bytes,
            self.spec.shared_memory_per_multiprocessor,
            self.spec.max_blocks_per_multiprocessor,
        )
        if per_mp == 0:
            raise ValueError(
                f"a block needs {geometry.shared_memory_per_block_bytes} bytes of "
                f"scratchpad but a multiprocessor only has "
                f"{self.spec.shared_memory_per_multiprocessor}"
            )
        return min(geometry.num_blocks, per_mp * self.spec.multiprocessors)

    def execution_time_us(self, launch: KernelLaunch) -> float:
        """Modelled wall-clock time of the launch in microseconds.

        Throughput is bounded by the number of multiprocessors: blocks resident
        on the same multiprocessor share its issue bandwidth, so the number of
        execution "waves" is ``num_blocks / min(multiprocessors, resident)``.
        The scratchpad-capacity check (``concurrent_blocks``) still rejects
        blocks whose buffers do not fit at all.
        """
        geometry = launch.geometry
        concurrent = self.concurrent_blocks(geometry)
        parallel_units = max(
            1, min(geometry.num_blocks, self.spec.multiprocessors, concurrent)
        )
        waves = math.ceil(geometry.num_blocks / parallel_units)
        per_block = self.block_cycles(launch.workload, geometry.threads_per_block)
        cycles = waves * per_block
        cycles += max(launch.global_sync_rounds - 1, 0) * self.spec.global_sync_cycles
        time_us = cycles / self.spec.cycles_per_us
        time_us += launch.global_sync_rounds * self.spec.kernel_launch_overhead_us
        return time_us

    def execution_time_ms(self, launch: KernelLaunch) -> float:
        return self.execution_time_us(launch) / 1000.0

    def breakdown(self, launch: KernelLaunch) -> Dict[str, float]:
        """Cycle breakdown of one block, for reports and tests."""
        spec = self.spec
        workload = launch.workload
        lanes = spec.simd_units_per_multiprocessor
        threads = launch.geometry.threads_per_block
        return {
            "compute": workload.compute_instances * spec.compute_cycles_per_instance / lanes,
            "global": workload.compute_instances
            * workload.global_accesses_per_instance
            * spec.global_access_cycles
            / lanes,
            "shared": workload.compute_instances
            * workload.shared_accesses_per_instance
            * spec.shared_access_cycles
            / lanes,
            "dma": self.memory.dma_cycles(
                int(workload.copy_in_elements + workload.copy_out_elements), threads
            ),
            "sync": (workload.copy_occurrences + workload.extra_block_syncs)
            * spec.block_sync_cycles
            * math.ceil(threads / spec.warp_size),
        }
