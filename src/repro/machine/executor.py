"""Simulation entry points and reports.

``simulate_gpu`` / ``simulate_cpu`` wrap the performance models with a common
report structure used by the benchmark harnesses and EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.machine.cpu import CPUPerformanceModel, CPUWorkload
from repro.machine.gpu import BlockWorkload, GPUPerformanceModel, KernelLaunch
from repro.machine.spec import CPUSpec, GPUSpec, GEFORCE_8800_GTX, REFERENCE_CPU
from repro.tiling.mapping import LaunchGeometry


@dataclass
class SimulationReport:
    """Result of pricing one kernel configuration on one machine."""

    label: str
    time_ms: float
    machine: str
    breakdown: Dict[str, float] = field(default_factory=dict)
    details: Dict[str, float] = field(default_factory=dict)

    def __str__(self) -> str:
        return f"{self.label}: {self.time_ms:.3f} ms on {self.machine}"


def simulate_gpu(
    label: str,
    workload: BlockWorkload,
    geometry: LaunchGeometry,
    global_sync_rounds: int = 1,
    spec: GPUSpec = GEFORCE_8800_GTX,
) -> SimulationReport:
    """Price a GPU kernel launch and return a report."""
    model = GPUPerformanceModel(spec)
    launch = KernelLaunch(
        workload=workload, geometry=geometry, global_sync_rounds=global_sync_rounds
    )
    time_ms = model.execution_time_ms(launch)
    return SimulationReport(
        label=label,
        time_ms=time_ms,
        machine=spec.name,
        breakdown=model.breakdown(launch),
        details={
            "num_blocks": geometry.num_blocks,
            "threads_per_block": geometry.threads_per_block,
            "shared_bytes_per_block": geometry.shared_memory_per_block_bytes,
            "concurrent_blocks": model.concurrent_blocks(geometry),
            "global_sync_rounds": global_sync_rounds,
        },
    )


def simulate_cpu(
    label: str,
    workload: CPUWorkload,
    spec: CPUSpec = REFERENCE_CPU,
) -> SimulationReport:
    """Price the sequential CPU baseline and return a report."""
    model = CPUPerformanceModel(spec)
    return SimulationReport(
        label=label,
        time_ms=model.execution_time_ms(workload),
        machine=spec.name,
        breakdown=model.breakdown(workload),
    )
