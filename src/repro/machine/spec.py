"""Machine specifications.

``GEFORCE_8800_GTX`` mirrors the device of the paper's evaluation (Section 6):
16 multiprocessors at 675 MHz with 8 SIMD units each (running at twice the
multiprocessor clock), 16 KB of scratchpad ("shared") memory per
multiprocessor, 768 MB of DRAM, warp size 32.  ``REFERENCE_CPU`` mirrors the
host: an Intel Core2 Duo at 2.13 GHz with a 2 MB L2 cache (a single core is
modelled, as the paper's CPU baseline is sequential).

Per-access cost parameters are calibrated so that the *ratios* the paper
reports (scratchpad vs. DRAM-only, GPU vs. CPU) fall in the observed ranges;
see EXPERIMENTS.md for the calibration notes.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GPUSpec:
    """A two-level parallel machine with explicitly managed scratchpads."""

    name: str = "GeForce 8800 GTX (modelled)"
    multiprocessors: int = 16
    simd_units_per_multiprocessor: int = 8
    warp_size: int = 32
    #: SIMD-unit clock in GHz (the 8800 GTX shader clock, 2 × 675 MHz).
    clock_ghz: float = 1.35
    #: scratchpad capacity per multiprocessor in bytes (16 KB on the 8800 GTX)
    shared_memory_per_multiprocessor: int = 16 * 1024
    dram_bytes: int = 768 * 1024 * 1024
    max_blocks_per_multiprocessor: int = 8
    max_threads_per_block: int = 512

    # -- calibrated per-access costs (cycles, per SIMD lane) -------------------
    #: effective cost of one uncoalesced global-memory access issued from
    #: compute code (the 8800 GTX serialises such accesses; 400–600 cycles of
    #: latency amortised over a warp's limited outstanding requests)
    global_access_cycles: float = 16.0
    #: effective cost of one scratchpad access
    shared_access_cycles: float = 1.0
    #: effective cost per element of a coalesced bulk (copy-in/copy-out)
    #: transfer between DRAM and the scratchpad, per participating thread
    dma_cycles_per_element: float = 4.0
    #: cycles of arithmetic per statement instance (SAD/stencil-style bodies)
    compute_cycles_per_instance: float = 4.0
    #: barrier cost among the threads of one block, per thread
    block_sync_cycles: float = 8.0
    #: cost of a device-wide synchronisation (kernel relaunch), in cycles
    global_sync_cycles: float = 6000.0
    #: fixed launch overhead per kernel invocation, in microseconds
    kernel_launch_overhead_us: float = 8.0

    @property
    def total_shared_memory(self) -> int:
        return self.shared_memory_per_multiprocessor * self.multiprocessors

    @property
    def cycles_per_us(self) -> float:
        return self.clock_ghz * 1000.0


@dataclass(frozen=True)
class CPUSpec:
    """A cached single-core CPU (the paper's host baseline)."""

    name: str = "Intel Core2 Duo 2.13 GHz (modelled, single core)"
    clock_ghz: float = 2.13
    l2_cache_bytes: int = 2 * 1024 * 1024
    cache_line_bytes: int = 64
    #: cycles per arithmetic-dominated statement instance (scalar code)
    compute_cycles_per_instance: float = 6.0
    #: cycles per memory access that hits in cache
    cache_hit_cycles: float = 2.0
    #: cycles per memory access that misses to DRAM
    dram_access_cycles: float = 220.0

    @property
    def cycles_per_us(self) -> float:
        return self.clock_ghz * 1000.0


@dataclass(frozen=True)
class GridSpec:
    """A P×P grid of processing elements behind one host link.

    Models the wafer-scale-style fabric of the pipelined SUMMA GEMM
    experiments (SNIPPETS.md Snippet 3): a square mesh of PEs with small
    private memories, nearest-neighbour fabric links, and a single host
    link that every H2D broadcast and D2H gather must cross.  The link
    parameters are calibrated so the modelled collective bandwidths land
    on the measured ones — broadcast H2D ≈ 0.868 words/cycle and gather
    D2H ≈ 0.298 words/cycle for the 4×4 / 14³ configuration — with the
    asymmetry coming entirely from :attr:`host_contention_penalty`
    (gathers collect from every PE through one serialising host port,
    broadcasts inject once and fan out on the fabric).

    ``grid_p`` is the *fabric* dimension; a tuning configuration may map
    onto any sub-grid ``p × p`` with ``p <= grid_p``.
    """

    name: str = "WSE-2 subgrid (modelled)"
    #: fabric dimension — the machine exposes ``grid_p × grid_p`` PEs
    grid_p: int = 16
    #: PE clock in GHz (WSE-2 style fabric clock)
    clock_ghz: float = 0.85
    #: bytes per word moved on the fabric (f32)
    word_bytes: int = 4
    #: private memory per PE in bytes (48 KB on WSE-2)
    pe_memory_bytes: int = 48 * 1024
    #: cycles per multiply-accumulate on one PE
    compute_cycles_per_mac: float = 1.0
    #: fixed loop/setup overhead per local compute sub-tile, in cycles
    loop_overhead_cycles: float = 32.0

    # -- calibrated link parameters (see repro.distmodel.links) ---------------
    #: raw host→device injection bandwidth, words per cycle
    h2d_words_per_cycle: float = 0.9
    #: raw device→host drain bandwidth, words per cycle (before contention)
    d2h_words_per_cycle: float = 0.9
    #: nearest-neighbour fabric link bandwidth, words per cycle
    fabric_words_per_cycle: float = 1.0
    #: latency of one fabric hop, in cycles
    hop_latency_cycles: float = 64.0
    #: fractional per-word slowdown added per *extra* concurrent sender on
    #: the device→host path (serialised host collection)
    host_contention_penalty: float = 0.13

    @property
    def num_pes(self) -> int:
        return self.grid_p * self.grid_p

    @property
    def cycles_per_us(self) -> float:
        return self.clock_ghz * 1000.0


GEFORCE_8800_GTX = GPUSpec()
REFERENCE_CPU = CPUSpec()
WSE2_GRID = GridSpec()
