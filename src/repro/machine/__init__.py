"""Machine models — the substitute for the paper's GPU testbed.

The paper evaluates on an NVIDIA GeForce 8800 GTX with CUDA; this environment
has no GPU, so the evaluation target is replaced by analytical performance
models of a two-level parallel machine with explicitly managed scratchpads
(:mod:`repro.machine.gpu`) and of a cached single-core CPU
(:mod:`repro.machine.cpu`).  The models consume *workload descriptors*
derived from the code our compiler actually generates (access counts per
statement instance after remapping, copy volumes and occurrence counts from
the scratchpad plan, launch geometry from the mapping), so relative effects —
scratchpad vs. DRAM-only, tile-size trends, thread-block count trends — emerge
from the same quantities that drive them on real hardware.  Absolute times are
calibrated only loosely; DESIGN.md and EXPERIMENTS.md document the
substitution.
"""

from repro.machine.spec import (
    GPUSpec,
    CPUSpec,
    GridSpec,
    GEFORCE_8800_GTX,
    REFERENCE_CPU,
    WSE2_GRID,
)
from repro.machine.memory import MemoryModel
from repro.machine.gpu import BlockWorkload, KernelLaunch, GPUPerformanceModel
from repro.machine.cpu import CPUWorkload, CPUPerformanceModel
from repro.machine.executor import SimulationReport, simulate_gpu, simulate_cpu

__all__ = [
    "GPUSpec",
    "CPUSpec",
    "GridSpec",
    "GEFORCE_8800_GTX",
    "REFERENCE_CPU",
    "WSE2_GRID",
    "MemoryModel",
    "BlockWorkload",
    "KernelLaunch",
    "GPUPerformanceModel",
    "CPUWorkload",
    "CPUPerformanceModel",
    "SimulationReport",
    "simulate_gpu",
    "simulate_cpu",
]
