"""Analytical performance model of the sequential CPU baseline."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.machine.memory import cpu_access_cycles
from repro.machine.spec import CPUSpec, REFERENCE_CPU


@dataclass
class CPUWorkload:
    """What the sequential CPU version of a kernel executes."""

    #: total statement instances
    compute_instances: float
    #: memory accesses per instance
    accesses_per_instance: float
    #: bytes of data the inner working set streams over (determines hit rate)
    working_set_bytes: float
    element_size: int = 4


class CPUPerformanceModel:
    """Prices a sequential kernel execution on a :class:`CPUSpec`."""

    def __init__(self, spec: CPUSpec = REFERENCE_CPU) -> None:
        self.spec = spec

    def execution_time_us(self, workload: CPUWorkload) -> float:
        spec = self.spec
        access_cost = cpu_access_cycles(spec, workload.working_set_bytes)
        cycles = workload.compute_instances * (
            spec.compute_cycles_per_instance
            + workload.accesses_per_instance * access_cost
        )
        return cycles / spec.cycles_per_us

    def execution_time_ms(self, workload: CPUWorkload) -> float:
        return self.execution_time_us(workload) / 1000.0

    def breakdown(self, workload: CPUWorkload) -> Dict[str, float]:
        spec = self.spec
        access_cost = cpu_access_cycles(spec, workload.working_set_bytes)
        return {
            "compute": workload.compute_instances * spec.compute_cycles_per_instance,
            "memory": workload.compute_instances
            * workload.accesses_per_instance
            * access_cost,
        }
