"""Search strategies over the configuration space, with parallel evaluation.

Three strategies, in increasing reliance on the analytical model:

* :class:`ExhaustiveSearch` — every feasible configuration of the space;
* :class:`PrunedGridSearch` — the model-ranked grid around the SLSQP relaxed
  optimum (the paper's "model as pruning device" reading, default);
* :class:`RandomHillClimbSearch` — seeded random restarts refined by one-knob
  hill climbing (for spaces too big to grid).

All strategies funnel candidate batches through an *evaluate-many* callable;
:func:`make_batch_evaluator` builds one that fans a batch out over a
``concurrent.futures`` pool — threads by default, or worker *processes*
(``executor="process"``) to escape the GIL for pure-Python pipeline compiles.
Results always come back in candidate order and winners are tie-broken on the
configuration key, so a parallel run is bit-for-bit identical to a serial one
under either executor.

The evaluator ships whole to process workers — its compilation session
(frozen analysis artifacts included) *and* its evaluation backend.  Backends
keep their picklable spec (scheme + knobs + derived session) and drop any
transient prepared state (performance models, toolchain paths), lazily
re-preparing in the worker; an evaluator whose program or backend cannot
pickle falls back to threads with :class:`ExecutorFallbackWarning`.
"""

from __future__ import annotations

import math
import multiprocessing
import pickle
import random
import threading
import warnings
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.autotune.evaluate import ConfigurationEvaluator, EvaluationResult, best_result
from repro.autotune.space import Configuration, ConfigurationSpace

#: evaluates a batch of configurations, preserving order
BatchEvaluator = Callable[[Sequence[Configuration]], List[EvaluationResult]]

#: executors accepted by :func:`make_batch_evaluator` / :func:`autotune`
EXECUTORS = ("thread", "process")


class ExecutorFallbackWarning(RuntimeWarning):
    """Process-based evaluation was requested but fell back to threads."""


class PooledBatchEvaluator:
    """Order-preserving batch map over a reusable worker pool.

    Serial when ``max_workers <= 1``; otherwise a lazily-created
    ``ThreadPoolExecutor`` or ``ProcessPoolExecutor`` that is kept open across
    batches (hill climbing evaluates one batch per generation, and forking a
    fresh process pool per generation would dominate the runtime).  Evaluation
    is pure and ``Executor.map`` yields in submission order, so the produced
    report is identical under any worker count and executor kind.  Call
    :meth:`close` (or use as a context manager) when done.
    """

    def __init__(
        self,
        evaluator: ConfigurationEvaluator,
        max_workers: int = 1,
        executor: str = "thread",
    ) -> None:
        if executor not in EXECUTORS:
            raise ValueError(f"executor must be one of {EXECUTORS}, got {executor!r}")
        if executor == "process" and max_workers > 1:
            try:
                pickle.dumps(evaluator)
            except Exception as error:  # pickling raises a menagerie of types
                warnings.warn(
                    "process-based evaluation needs a picklable program/evaluator "
                    f"({type(error).__name__}: {error}); falling back to threads",
                    ExecutorFallbackWarning,
                    stacklevel=3,
                )
                executor = "thread"
        self.evaluator = evaluator
        self.max_workers = max_workers
        self.executor = executor
        self._pool: Optional[Executor] = None

    def _ensure_pool(self) -> Executor:
        if self._pool is None:
            if self.executor == "process":
                # fork is the fast path from the typical single-threaded
                # caller (CLI, scripts); a caller that already runs other
                # threads gets spawn instead — fork() from a multi-threaded
                # process can clone a mid-acquire lock into the worker and
                # deadlock it (spawn carries the standard caveat that the
                # embedding program's main module must be importable).
                method = "fork" if threading.active_count() == 1 else "spawn"
                if method not in multiprocessing.get_all_start_methods():
                    method = "spawn"
                self._pool = ProcessPoolExecutor(
                    max_workers=self.max_workers,
                    mp_context=multiprocessing.get_context(method),
                )
            else:
                self._pool = ThreadPoolExecutor(max_workers=self.max_workers)
        return self._pool

    def __call__(self, configs: Sequence[Configuration]) -> List[EvaluationResult]:
        configs = list(configs)
        if not configs:
            return []
        if self.max_workers <= 1:
            return [self.evaluator.evaluate(c) for c in configs]
        pool = self._ensure_pool()
        if self.executor == "process":
            # One pickled (evaluator, chunk) round-trip per chunk, not per config.
            chunksize = max(1, math.ceil(len(configs) / (self.max_workers * 4)))
            return list(pool.map(self.evaluator.evaluate, configs, chunksize=chunksize))
        return list(pool.map(self.evaluator.evaluate, configs))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "PooledBatchEvaluator":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def make_batch_evaluator(
    evaluator: ConfigurationEvaluator,
    max_workers: int = 1,
    executor: str = "thread",
) -> PooledBatchEvaluator:
    """Wrap an evaluator into an order-preserving (optionally parallel) batch map.

    ``max_workers > 1`` fans batches out over a pool: ``executor="thread"``
    (default) or ``"process"`` — the latter escapes the GIL for cold tuning
    runs, falling back to threads with a ``RuntimeWarning`` when the evaluator
    (typically its program) is not picklable.
    """
    return PooledBatchEvaluator(evaluator, max_workers=max_workers, executor=executor)


class SearchStrategy:
    """Base interface: propose-and-evaluate over a configuration space."""

    name = "base"

    def run(
        self, space: ConfigurationSpace, evaluate_many: BatchEvaluator
    ) -> List[EvaluationResult]:
        raise NotImplementedError

    def signature(self) -> Dict[str, Any]:
        """Stable description for cache fingerprinting."""
        return {"name": self.name}


class ExhaustiveSearch(SearchStrategy):
    """Evaluate every feasible configuration (no per-geometry cap)."""

    name = "exhaustive"

    def run(
        self, space: ConfigurationSpace, evaluate_many: BatchEvaluator
    ) -> List[EvaluationResult]:
        return evaluate_many(space.enumerate(limit_per_geometry=None))


class PrunedGridSearch(SearchStrategy):
    """Evaluate the model-ranked top candidates around the relaxed optimum."""

    name = "pruned"

    def __init__(self, limit_per_geometry: Optional[int] = None) -> None:
        #: ``None`` defers to the space's own per-geometry cap
        self.limit_per_geometry = limit_per_geometry

    def run(
        self, space: ConfigurationSpace, evaluate_many: BatchEvaluator
    ) -> List[EvaluationResult]:
        if self.limit_per_geometry is None:
            return evaluate_many(space.enumerate())
        return evaluate_many(space.enumerate(limit_per_geometry=self.limit_per_geometry))

    def signature(self) -> Dict[str, Any]:
        return {"name": self.name, "limit_per_geometry": self.limit_per_geometry}


class RandomHillClimbSearch(SearchStrategy):
    """Seeded random restarts + greedy one-knob hill climbing.

    Starts from the seed configuration plus ``restarts`` points sampled (with
    an explicit ``seed``, so runs are reproducible) from the pruned grid, then
    repeatedly moves to the best strictly-improving neighbour.  Each
    generation's neighbours are evaluated as one batch, so the trajectory is
    identical under serial and parallel evaluation.
    """

    name = "hillclimb"

    def __init__(self, seed: int = 0, restarts: int = 2, max_steps: int = 8) -> None:
        if restarts < 0:
            raise ValueError("restarts cannot be negative")
        if max_steps <= 0:
            raise ValueError("max_steps must be positive")
        self.seed = seed
        self.restarts = restarts
        self.max_steps = max_steps

    def run(
        self, space: ConfigurationSpace, evaluate_many: BatchEvaluator
    ) -> List[EvaluationResult]:
        rng = random.Random(self.seed)
        pool = space.enumerate()
        starts = [pool[0]]  # the seed configuration is always first
        extra = [c for c in pool[1:]]
        if extra and self.restarts:
            starts.extend(rng.sample(extra, min(self.restarts, len(extra))))

        results: Dict[Configuration, EvaluationResult] = {}
        order: List[Configuration] = []

        def evaluate_new(batch: Sequence[Configuration]) -> None:
            fresh = [c for c in dict.fromkeys(batch) if c not in results]
            for config, result in zip(fresh, evaluate_many(fresh)):
                results[config] = result
                order.append(config)

        evaluate_new(starts)
        for start in starts:
            current = start
            if not results[current].feasible:
                continue
            for _step in range(self.max_steps):
                neighbours = space.neighbours(current)
                if not neighbours:
                    break
                evaluate_new(neighbours)
                candidates = [results[current]] + [results[n] for n in neighbours]
                winner = best_result(candidates)
                if winner.configuration == current:
                    break
                current = winner.configuration
        return [results[c] for c in order]

    def signature(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "seed": self.seed,
            "restarts": self.restarts,
            "max_steps": self.max_steps,
        }


STRATEGIES: Dict[str, Callable[..., SearchStrategy]] = {
    ExhaustiveSearch.name: ExhaustiveSearch,
    PrunedGridSearch.name: PrunedGridSearch,
    RandomHillClimbSearch.name: RandomHillClimbSearch,
}


def resolve_strategy(strategy, seed: int = 0) -> SearchStrategy:
    """Accept a strategy instance or name; thread the session seed through."""
    if isinstance(strategy, SearchStrategy):
        return strategy
    if isinstance(strategy, str):
        try:
            factory = STRATEGIES[strategy]
        except KeyError:
            raise ValueError(
                f"unknown strategy {strategy!r}; available: {sorted(STRATEGIES)}"
            ) from None
        if factory is RandomHillClimbSearch:
            return RandomHillClimbSearch(seed=seed)
        return factory()
    raise TypeError(f"strategy must be a name or SearchStrategy, got {type(strategy)}")
