"""Search strategies over the configuration space, with parallel evaluation.

Three strategies, in increasing reliance on the analytical model:

* :class:`ExhaustiveSearch` — every feasible configuration of the space;
* :class:`PrunedGridSearch` — the model-ranked grid around the SLSQP relaxed
  optimum (the paper's "model as pruning device" reading, default);
* :class:`RandomHillClimbSearch` — seeded random restarts refined by one-knob
  hill climbing (for spaces too big to grid).

All strategies funnel candidate batches through an *evaluate-many* callable;
:func:`make_batch_evaluator` builds one that fans a batch out over a
``concurrent.futures`` thread pool.  Results always come back in candidate
order and winners are tie-broken on the configuration key, so a parallel run
is bit-for-bit identical to a serial one.
"""

from __future__ import annotations

import random
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.autotune.evaluate import ConfigurationEvaluator, EvaluationResult, best_result
from repro.autotune.space import Configuration, ConfigurationSpace

#: evaluates a batch of configurations, preserving order
BatchEvaluator = Callable[[Sequence[Configuration]], List[EvaluationResult]]


def make_batch_evaluator(
    evaluator: ConfigurationEvaluator, max_workers: int = 1
) -> BatchEvaluator:
    """Wrap an evaluator into an order-preserving (optionally parallel) batch map.

    ``max_workers > 1`` uses a thread pool; evaluation is pure, and
    ``Executor.map`` yields results in submission order, so parallelism never
    changes the produced report.
    """
    if max_workers <= 1:
        return lambda configs: [evaluator.evaluate(c) for c in configs]

    def parallel(configs: Sequence[Configuration]) -> List[EvaluationResult]:
        configs = list(configs)
        if not configs:
            return []
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            return list(pool.map(evaluator.evaluate, configs))

    return parallel


class SearchStrategy:
    """Base interface: propose-and-evaluate over a configuration space."""

    name = "base"

    def run(
        self, space: ConfigurationSpace, evaluate_many: BatchEvaluator
    ) -> List[EvaluationResult]:
        raise NotImplementedError

    def signature(self) -> Dict[str, Any]:
        """Stable description for cache fingerprinting."""
        return {"name": self.name}


class ExhaustiveSearch(SearchStrategy):
    """Evaluate every feasible configuration (no per-geometry cap)."""

    name = "exhaustive"

    def run(
        self, space: ConfigurationSpace, evaluate_many: BatchEvaluator
    ) -> List[EvaluationResult]:
        return evaluate_many(space.enumerate(limit_per_geometry=None))


class PrunedGridSearch(SearchStrategy):
    """Evaluate the model-ranked top candidates around the relaxed optimum."""

    name = "pruned"

    def __init__(self, limit_per_geometry: Optional[int] = None) -> None:
        #: ``None`` defers to the space's own per-geometry cap
        self.limit_per_geometry = limit_per_geometry

    def run(
        self, space: ConfigurationSpace, evaluate_many: BatchEvaluator
    ) -> List[EvaluationResult]:
        if self.limit_per_geometry is None:
            return evaluate_many(space.enumerate())
        return evaluate_many(space.enumerate(limit_per_geometry=self.limit_per_geometry))

    def signature(self) -> Dict[str, Any]:
        return {"name": self.name, "limit_per_geometry": self.limit_per_geometry}


class RandomHillClimbSearch(SearchStrategy):
    """Seeded random restarts + greedy one-knob hill climbing.

    Starts from the seed configuration plus ``restarts`` points sampled (with
    an explicit ``seed``, so runs are reproducible) from the pruned grid, then
    repeatedly moves to the best strictly-improving neighbour.  Each
    generation's neighbours are evaluated as one batch, so the trajectory is
    identical under serial and parallel evaluation.
    """

    name = "hillclimb"

    def __init__(self, seed: int = 0, restarts: int = 2, max_steps: int = 8) -> None:
        if restarts < 0:
            raise ValueError("restarts cannot be negative")
        if max_steps <= 0:
            raise ValueError("max_steps must be positive")
        self.seed = seed
        self.restarts = restarts
        self.max_steps = max_steps

    def run(
        self, space: ConfigurationSpace, evaluate_many: BatchEvaluator
    ) -> List[EvaluationResult]:
        rng = random.Random(self.seed)
        pool = space.enumerate()
        starts = [pool[0]]  # the seed configuration is always first
        extra = [c for c in pool[1:]]
        if extra and self.restarts:
            starts.extend(rng.sample(extra, min(self.restarts, len(extra))))

        results: Dict[Configuration, EvaluationResult] = {}
        order: List[Configuration] = []

        def evaluate_new(batch: Sequence[Configuration]) -> None:
            fresh = [c for c in dict.fromkeys(batch) if c not in results]
            for config, result in zip(fresh, evaluate_many(fresh)):
                results[config] = result
                order.append(config)

        evaluate_new(starts)
        for start in starts:
            current = start
            if not results[current].feasible:
                continue
            for _step in range(self.max_steps):
                neighbours = space.neighbours(current)
                if not neighbours:
                    break
                evaluate_new(neighbours)
                candidates = [results[current]] + [results[n] for n in neighbours]
                winner = best_result(candidates)
                if winner.configuration == current:
                    break
                current = winner.configuration
        return [results[c] for c in order]

    def signature(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "seed": self.seed,
            "restarts": self.restarts,
            "max_steps": self.max_steps,
        }


STRATEGIES: Dict[str, Callable[..., SearchStrategy]] = {
    ExhaustiveSearch.name: ExhaustiveSearch,
    PrunedGridSearch.name: PrunedGridSearch,
    RandomHillClimbSearch.name: RandomHillClimbSearch,
}


def resolve_strategy(strategy, seed: int = 0) -> SearchStrategy:
    """Accept a strategy instance or name; thread the session seed through."""
    if isinstance(strategy, SearchStrategy):
        return strategy
    if isinstance(strategy, str):
        try:
            factory = STRATEGIES[strategy]
        except KeyError:
            raise ValueError(
                f"unknown strategy {strategy!r}; available: {sorted(STRATEGIES)}"
            ) from None
        if factory is RandomHillClimbSearch:
            return RandomHillClimbSearch(seed=seed)
        return factory()
    raise TypeError(f"strategy must be a name or SearchStrategy, got {type(strategy)}")
