"""Pluggable persistence backends for the tuning cache.

:class:`repro.autotune.cache.TuningCache` used to *be* its persistence: one
JSON file, re-parsed and rewritten whole under a coarse ``flock`` on every
cold put (O(entries) on the hot path), whose read-merge-write save could
resurrect entries a concurrent ``prune()`` had just deleted.  This module
extracts persistence behind the :class:`CacheStore` interface so the hot
path, the locking granularity, and the prune semantics are properties of a
*backend*, selected by URI:

``PATH.json`` (or ``json:PATH``)
    :class:`JsonFileStore` — the legacy version-2 single-file format, kept
    for compatibility.  Saves now overlay only the keys *this* instance
    wrote (never its whole in-memory mirror) and honour on-disk tombstones,
    so a concurrent prune can no longer be undone by a racing writer.
``dir:PATH`` (or an existing directory)
    :class:`ShardedStore` — one file per fingerprint under a two-hex-char
    fanout directory.  ``put`` writes exactly one entry file (O(1), never
    reading or rewriting other entries) under a per-shard lock; ``prune``
    unlinks individual files, so it is prune-safe by construction.
``log:PATH`` (or ``PATH.jsonl`` / ``PATH.log``)
    :class:`AppendLogStore` — append-only JSONL with an in-memory offset
    index, size-triggered compaction and crash-truncated-tail recovery, for
    high-churn server workloads.

``open_store`` maps a URI/path to a backend, ``migrate_store`` converts any
backend into any other preserving insertion order (``prune``'s notion of
"oldest" survives migration), and every backend reports its identity and
backend-specific gauges through ``stats()["backend"]`` et al.

Stores are safe against concurrent *processes* via ``fcntl`` advisory locks
(with a warn-once degradation where ``fcntl`` is missing); *thread* safety
is provided one level up by the :class:`TuningCache` facade's mutex.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import re
import tempfile
import time
import warnings
from pathlib import Path
from typing import Any, Dict, Iterator, Mapping, Optional, Tuple, Union

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

#: version 2: entry file order is insertion order (prune's "oldest"); files
#: written by version 1 (key-sorted) are discarded as a cold cache rather
#: than mis-pruned
CACHE_VERSION = 2

#: format version of the sharded directory layout (``store.json`` marker)
SHARDED_STORE_VERSION = 1

#: whether the missing-fcntl warning has been emitted (once per process)
_warned_unlocked = False

StorePath = Union[str, os.PathLike]

#: stats fields every backend (plus the facade's counters) reports; anything
#: else in a stats payload is a backend-specific gauge
CACHE_STATS_COMMON_FIELDS = ("backend", "entries", "bytes", "hits", "misses")


def ordered_cache_stats(stats: Mapping[str, Any]) -> Iterator[Tuple[str, Any]]:
    """A cache-stats payload as (field, value) pairs in render order.

    Common fields first (in their documented order), then the backend's own
    gauges sorted by name — so a ``dir:`` store shows its ``shards`` and a
    ``log:`` store its ``segments``/``compactions`` without the consumer
    hard-coding either.  Shared by both CLIs and the service wire docs.
    """
    for name in CACHE_STATS_COMMON_FIELDS:
        if name in stats:
            yield name, stats[name]
    for name in sorted(stats):
        if name not in CACHE_STATS_COMMON_FIELDS:
            yield name, stats[name]


def _warn_unlocked_writes() -> None:
    global _warned_unlocked
    if _warned_unlocked:
        return
    _warned_unlocked = True
    warnings.warn(
        "fcntl is unavailable on this platform: TuningCache writes proceed "
        "without inter-process file locking, so concurrent writers may race",
        RuntimeWarning,
        stacklevel=5,
    )


@contextlib.contextmanager
def _locked(lock_path: Path):
    """Exclusive advisory lock on a sidecar file (warns, once, without fcntl).

    A *sidecar* rather than the data file itself: backends replace their data
    files atomically (``os.replace``), which would orphan a lock held on the
    replaced inode.
    """
    if fcntl is None:
        _warn_unlocked_writes()
        yield
        return
    lock_path.parent.mkdir(parents=True, exist_ok=True)
    with open(lock_path, "w") as handle:
        fcntl.flock(handle, fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(handle, fcntl.LOCK_UN)


def _atomic_write_text(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` via a same-directory temp file + rename."""
    path.parent.mkdir(parents=True, exist_ok=True)
    descriptor, temp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(temp_name, path)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise


class CacheStore:
    """Interface every tuning-result store backend implements.

    Keys are opaque strings (in practice SHA-256 fingerprints), values are
    JSON-serialisable dicts.  ``scan`` yields entries in *insertion order* —
    the order ``prune`` treats as oldest-first and ``migrate_store``
    preserves across backends.  Implementations must keep ``put`` durable
    against a crash mid-write (atomic replace or append) and safe against
    concurrent processes sharing the same location.
    """

    #: short backend identifier reported by ``stats()["backend"]``
    backend: str = "abstract"

    #: filesystem anchor (file or directory), ``None`` for in-memory stores
    path: Optional[Path] = None

    @property
    def uri(self) -> Optional[str]:
        """Canonical spec string that re-opens this store (``None`` = memory)."""
        raise NotImplementedError

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        raise NotImplementedError

    def put(self, key: str, value: Mapping[str, Any]) -> None:
        raise NotImplementedError

    def scan(self) -> Iterator[Tuple[str, Dict[str, Any]]]:
        """Every (key, value) pair, oldest insertion first."""
        raise NotImplementedError

    def prune(self, max_entries: int) -> int:
        """Drop the oldest entries beyond ``max_entries``; the count dropped."""
        raise NotImplementedError

    def stats(self) -> Dict[str, Any]:
        """At least ``backend``, ``entries`` and ``bytes``, plus backend gauges."""
        raise NotImplementedError

    def compact(self) -> Dict[str, Any]:
        """Reclaim dead space; a dict describing what was reclaimed."""
        raise NotImplementedError

    def clear(self) -> None:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None


class MemoryStore(CacheStore):
    """Process-local dict — the ``path=None`` cache of one-shot sessions."""

    backend = "memory"

    def __init__(self) -> None:
        self._entries: Dict[str, Dict[str, Any]] = {}

    @property
    def uri(self) -> Optional[str]:
        return None

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        return self._entries.get(key)

    def put(self, key: str, value: Mapping[str, Any]) -> None:
        self._entries[key] = dict(value)

    def scan(self) -> Iterator[Tuple[str, Dict[str, Any]]]:
        yield from list(self._entries.items())

    def prune(self, max_entries: int) -> int:
        drop = len(self._entries) - max_entries
        if drop <= 0:
            return 0
        for key in list(self._entries)[:drop]:
            del self._entries[key]
        return drop

    def stats(self) -> Dict[str, Any]:
        return {"backend": self.backend, "entries": len(self._entries), "bytes": 0}

    def compact(self) -> Dict[str, Any]:
        return {}

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries


class JsonFileStore(CacheStore):
    """The legacy single-JSON-file format (version 2), made prune-safe.

    The whole store is one ``{"version", "entries", "tombstones"}`` document;
    a warm open is one parse, and ``get`` serves from the in-memory mirror.
    The historical race: an instance's save used to read-merge-write its
    *entire* mirror over the file, so a writer that loaded before a
    concurrent ``prune()`` resurrected every pruned entry on its next put.
    Two changes make that structurally impossible:

    * a save only overlays the keys this instance actually wrote since its
      last sync (the *dirty* set) — never the whole mirror;
    * ``prune`` records the dropped keys as tombstones inside the same
      locked write, and every later save drops tombstoned keys from its own
      mirror (unless it deliberately re-put them, which also clears the
      tombstone).

    Tombstones are capped at :data:`MAX_TOMBSTONES` (newest kept) so the
    file cannot grow without bound; the field is ignored by version-2
    readers that predate it.
    """

    backend = "json"

    #: upper bound on persisted tombstones (newest survive the cap)
    MAX_TOMBSTONES = 4096

    def __init__(self, path: StorePath) -> None:
        self.path = Path(path)
        self._entries: Dict[str, Dict[str, Any]] = {}
        self._dirty: set = set()
        self._tombstone_count = 0
        if self.path.exists():
            self._entries, tombstones = self._read()
            self._tombstone_count = len(tombstones)

    @property
    def uri(self) -> Optional[str]:
        return str(self.path)

    def _read(self) -> Tuple[Dict[str, Dict[str, Any]], Dict[str, int]]:
        """The on-disk (entries, tombstones); a bad file reads as cold."""
        try:
            payload = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            # A missing or corrupt file means a cold cache, not a crash.
            return {}, {}
        if not isinstance(payload, dict) or payload.get("version") != CACHE_VERSION:
            return {}, {}
        entries = payload.get("entries", {})
        tombstones = payload.get("tombstones", {})
        if not isinstance(entries, dict):
            entries = {}
        if not isinstance(tombstones, dict):
            tombstones = {}
        return (
            {str(k): dict(v) for k, v in entries.items()},
            {str(k): int(v) for k, v in tombstones.items()},
        )

    def _write(
        self, entries: Dict[str, Dict[str, Any]], tombstones: Dict[str, int]
    ) -> None:
        if len(tombstones) > self.MAX_TOMBSTONES:
            newest = sorted(tombstones, key=tombstones.__getitem__)[-self.MAX_TOMBSTONES:]
            tombstones = {k: tombstones[k] for k in newest}
        payload: Dict[str, Any] = {"version": CACHE_VERSION, "entries": entries}
        if tombstones:
            payload["tombstones"] = tombstones
        # No sort_keys: entry insertion order must survive the round-trip —
        # prune() defines "oldest" by it.
        _atomic_write_text(self.path, json.dumps(payload, indent=1))
        self._tombstone_count = len(tombstones)

    def _lock_path(self) -> Path:
        return self.path.with_name(self.path.name + ".lock")

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        return self._entries.get(key)

    def put(self, key: str, value: Mapping[str, Any]) -> None:
        self._entries[key] = dict(value)
        self._dirty.add(key)
        self._sync()

    def _sync(self) -> None:
        """Persist this instance's dirty keys, under the exclusive file lock.

        The merge base is the *current* on-disk state, so entries other
        processes persisted since our load are kept; only our dirty keys are
        overlaid on top (our writes win for those keys, nothing else of our
        mirror touches the file).  On-disk tombstones for keys we did not
        re-put are applied to our mirror, converging it with concurrent
        prunes instead of resurrecting their victims.
        """
        with _locked(self._lock_path()):
            disk_entries, tombstones = self._read()
            for key in tombstones:
                if key not in self._dirty:
                    self._entries.pop(key, None)
            merged = dict(disk_entries)
            for key in self._entries:
                if key in self._dirty:
                    merged[key] = self._entries[key]
            tombstones = {k: v for k, v in tombstones.items() if k not in self._dirty}
            self._write(merged, tombstones)
            # Adopt other processes' entries (and drop anything that vanished
            # from disk) so this mirror serves warm hits for the whole file.
            self._entries = merged
            self._dirty.clear()

    def scan(self) -> Iterator[Tuple[str, Dict[str, Any]]]:
        entries, _tombstones = self._read()
        for key in self._entries:
            if key in self._dirty:
                entries[key] = self._entries[key]
        yield from entries.items()

    def prune(self, max_entries: int) -> int:
        now = time.time_ns()
        with _locked(self._lock_path()):
            disk_entries, tombstones = self._read()
            merged = dict(disk_entries)
            for key in self._entries:
                if key in self._dirty:
                    merged[key] = self._entries[key]
            drop = len(merged) - max_entries
            if drop <= 0:
                self._entries = merged
                self._dirty.clear()
                return 0
            dropped = list(merged)[:drop]
            for key in dropped:
                del merged[key]
                tombstones[key] = now
            self._write(merged, tombstones)
            self._entries = merged
            self._dirty.clear()
            return drop

    def stats(self) -> Dict[str, Any]:
        size = 0
        try:
            size = self.path.stat().st_size
        except OSError:
            size = 0
        return {
            "backend": self.backend,
            "entries": len(self._entries),
            "bytes": size,
            "tombstones": self._tombstone_count,
        }

    def compact(self) -> Dict[str, Any]:
        """Drop every persisted tombstone (entries are already compact)."""
        with _locked(self._lock_path()):
            entries, tombstones = self._read()
            removed = len(tombstones)
            if removed:
                self._write(entries, {})
            return {"tombstones_removed": removed}

    def clear(self) -> None:
        with _locked(self._lock_path()):
            self._write({}, {})
            self._entries.clear()
            self._dirty.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries


class ShardedStore(CacheStore):
    """One file per fingerprint under a two-hex-char fanout directory.

    ``put`` creates exactly one entry file (atomic temp + rename under that
    shard's lock) and never reads or rewrites any other entry — O(1)
    whatever the store holds.  ``prune`` unlinks individual entry files, so
    a concurrent writer cannot resurrect a pruned entry: its save touches
    only its own file.  Insertion order is a monotonic per-entry ``seq``
    stamped into each file (wall-clock nanoseconds, forced strictly
    increasing within a process), which ``scan``/``prune`` sort by.
    """

    backend = "sharded"

    #: root marker file naming the layout version
    META_NAME = "store.json"

    def __init__(self, root: StorePath) -> None:
        self.path = Path(root)
        self._last_seq = 0
        meta_path = self.path / self.META_NAME
        if meta_path.exists():
            try:
                meta = json.loads(meta_path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                meta = {}
            if meta.get("version") != SHARDED_STORE_VERSION:
                raise ValueError(
                    f"{self.path} holds an unsupported sharded-store layout "
                    f"(version {meta.get('version')!r}); migrate it with "
                    "'python -m repro.autotune cache-migrate'"
                )

    @property
    def uri(self) -> Optional[str]:
        return f"dir:{self.path}"

    def _ensure_meta(self) -> None:
        meta_path = self.path / self.META_NAME
        if not meta_path.exists():
            _atomic_write_text(
                meta_path,
                json.dumps(
                    {"format": "repro-sharded-store", "version": SHARDED_STORE_VERSION}
                ),
            )

    def _entry_path(self, key: str) -> Path:
        digest = hashlib.sha256(key.encode("utf-8")).hexdigest()
        return self.path / digest[:2] / f"{digest}.json"

    def _next_seq(self) -> int:
        self._last_seq = max(time.time_ns(), self._last_seq + 1)
        return self._last_seq

    def _shard_dirs(self) -> Iterator[Path]:
        if not self.path.is_dir():
            return
        for child in sorted(self.path.iterdir()):
            if child.is_dir() and len(child.name) == 2:
                yield child

    def _entry_files(self) -> Iterator[Path]:
        for shard in self._shard_dirs():
            for entry in sorted(shard.glob("*.json")):
                yield entry

    @staticmethod
    def _read_entry(entry_path: Path) -> Optional[Dict[str, Any]]:
        try:
            record = json.loads(entry_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(record, dict) or "key" not in record or "value" not in record:
            return None
        return record

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        record = self._read_entry(self._entry_path(key))
        if record is None:
            return None
        return dict(record["value"])

    def put(self, key: str, value: Mapping[str, Any]) -> None:
        entry_path = self._entry_path(key)
        entry_path.parent.mkdir(parents=True, exist_ok=True)
        self._ensure_meta()
        # The rename is already atomic; the shard lock additionally orders a
        # put against a concurrent prune unlinking the same entry.
        with _locked(entry_path.parent / ".lock"):
            # A re-put keeps its original seq: like the dict-backed formats,
            # updating an entry must not refresh its insertion position (the
            # only file read is this entry's own — puts stay O(1)).
            existing = self._read_entry(entry_path)
            if existing is not None and isinstance(existing.get("seq"), int):
                seq = existing["seq"]
            else:
                seq = self._next_seq()
            record = {"key": key, "seq": seq, "value": dict(value)}
            _atomic_write_text(entry_path, json.dumps(record))

    def _sorted_records(self) -> list:
        records = []
        for entry_path in self._entry_files():
            record = self._read_entry(entry_path)
            if record is not None:
                records.append((record.get("seq", 0), record["key"], record, entry_path))
        records.sort(key=lambda item: (item[0], item[1]))
        return records

    def scan(self) -> Iterator[Tuple[str, Dict[str, Any]]]:
        for _seq, key, record, _path in self._sorted_records():
            yield key, dict(record["value"])

    def prune(self, max_entries: int) -> int:
        with _locked(self.path / ".lock"):
            records = self._sorted_records()
            drop = len(records) - max_entries
            if drop <= 0:
                return 0
            for _seq, _key, record, entry_path in records[:drop]:
                with _locked(entry_path.parent / ".lock"):
                    try:
                        entry_path.unlink()
                    except OSError:
                        pass
            return drop

    def stats(self) -> Dict[str, Any]:
        entries = 0
        size = 0
        shards = 0
        for shard in self._shard_dirs():
            in_shard = 0
            for entry_path in shard.glob("*.json"):
                in_shard += 1
                try:
                    size += entry_path.stat().st_size
                except OSError:
                    pass
            if in_shard:
                shards += 1
            entries += in_shard
        return {
            "backend": self.backend,
            "entries": entries,
            "bytes": size,
            "shards": shards,
        }

    def compact(self) -> Dict[str, Any]:
        """Sweep stray temp files and now-empty shard directories."""
        removed_tmp = 0
        removed_dirs = 0
        with _locked(self.path / ".lock"):
            for shard in list(self._shard_dirs()):
                for stray in shard.glob("*.tmp"):
                    try:
                        stray.unlink()
                        removed_tmp += 1
                    except OSError:
                        pass
                remaining = [p for p in shard.iterdir() if p.suffix == ".json"]
                if not remaining:
                    for lock_file in shard.glob(".lock"):
                        try:
                            lock_file.unlink()
                        except OSError:
                            pass
                    try:
                        shard.rmdir()
                        removed_dirs += 1
                    except OSError:
                        pass
        return {"tmp_files_removed": removed_tmp, "empty_shards_removed": removed_dirs}

    def clear(self) -> None:
        with _locked(self.path / ".lock"):
            for entry_path in list(self._entry_files()):
                try:
                    entry_path.unlink()
                except OSError:
                    pass

    def __len__(self) -> int:
        return sum(1 for _ in self._entry_files())

    def __contains__(self, key: str) -> bool:
        return self._entry_path(key).exists()


class AppendLogStore(CacheStore):
    """Append-only JSONL log with an in-memory index and auto-compaction.

    Every mutation is one appended line — ``{"op": "put", ...}`` or
    ``{"op": "del", ...}`` — written under the exclusive log lock, so a put
    costs O(1) regardless of how many entries the log holds.  Readers replay
    only the *tail* they have not seen (tracked by byte offset and inode, so
    a compaction by another process triggers a clean full re-replay).

    Recovery rules make a crash-truncated tail harmless: a final chunk
    without a newline is left pending (re-examined on the next replay, and
    terminated by the next writer before it appends), and any complete line
    that fails to parse is skipped and counted, never fatal.

    Compaction rewrites the log as one put line per live entry — in
    insertion order, preserving ``prune`` semantics — and is triggered
    automatically when the log exceeds ``auto_compact_bytes`` *and* dead
    records outnumber live entries ``auto_compact_ratio`` times over.
    """

    backend = "log"

    def __init__(
        self,
        path: StorePath,
        auto_compact_bytes: int = 1 << 20,
        auto_compact_ratio: int = 4,
    ) -> None:
        self.path = Path(path)
        self.auto_compact_bytes = auto_compact_bytes
        self.auto_compact_ratio = auto_compact_ratio
        self._entries: Dict[str, Dict[str, Any]] = {}
        self._offset = 0
        self._ino: Optional[int] = None
        self._dead_records = 0
        self._corrupt_lines = 0
        self._compactions = 0
        self._replay()

    @property
    def uri(self) -> Optional[str]:
        return f"log:{self.path}"

    def _lock_path(self) -> Path:
        return self.path.with_name(self.path.name + ".lock")

    def _reset(self) -> None:
        self._entries = {}
        self._offset = 0
        self._dead_records = 0
        self._corrupt_lines = 0

    def _apply(self, record: Mapping[str, Any]) -> None:
        op = record.get("op")
        if op == "put" and "key" in record and isinstance(record.get("value"), dict):
            key = str(record["key"])
            if key in self._entries:
                self._dead_records += 1
            self._entries[key] = dict(record["value"])
        elif op == "del" and "key" in record:
            if self._entries.pop(str(record["key"]), None) is not None:
                self._dead_records += 2  # the del line and the put it killed
        elif op == "clear":
            self._dead_records += len(self._entries) + 1
            self._entries = {}
        else:
            self._corrupt_lines += 1

    def _replay(self) -> None:
        """Catch the in-memory index up with the log's unseen tail."""
        try:
            stat = self.path.stat()
        except OSError:
            self._reset()
            self._ino = None
            return
        if stat.st_ino != self._ino or stat.st_size < self._offset:
            # Compacted (new inode) or truncated underneath us: start over.
            self._reset()
            self._ino = stat.st_ino
        if stat.st_size == self._offset:
            return
        with open(self.path, "rb") as handle:
            handle.seek(self._offset)
            chunk = handle.read()
        consumed = 0
        while True:
            newline = chunk.find(b"\n", consumed)
            if newline < 0:
                break  # incomplete tail line: leave pending for the next replay
            line = chunk[consumed:newline].strip()
            consumed = newline + 1
            if not line:
                continue
            try:
                record = json.loads(line.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                self._corrupt_lines += 1
                continue
            if isinstance(record, dict):
                self._apply(record)
            else:
                self._corrupt_lines += 1
        self._offset += consumed

    def _append(self, record: Dict[str, Any]) -> None:
        """One record line, under the log lock, tail-terminating if needed."""
        line = json.dumps(record, separators=(",", ":")).encode("utf-8") + b"\n"
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with _locked(self._lock_path()):
            self._replay()
            needs_newline = False
            try:
                with open(self.path, "rb") as peek:
                    peek.seek(-1, os.SEEK_END)
                    needs_newline = peek.read(1) != b"\n"
            except (OSError, ValueError):
                needs_newline = False  # missing or empty file
            with open(self.path, "ab") as handle:
                if needs_newline:
                    # A crash left a partial final line: terminate it so it
                    # becomes one skippable corrupt line instead of fusing
                    # with our record.
                    handle.write(b"\n")
                handle.write(line)
                handle.flush()
                size = handle.tell()
            self._apply(record)
            # Our record is the last consumed line; any terminated partial
            # tail before it was just counted as corrupt by _apply's replay
            # predecessor, so the whole file is now processed.
            self._offset = size
            if self._ino is None:
                self._ino = self.path.stat().st_ino
            if (
                size >= self.auto_compact_bytes
                and self._dead_records
                >= self.auto_compact_ratio * max(1, len(self._entries))
            ):
                self._compact_locked()

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        value = self._entries.get(key)
        if value is not None:
            return dict(value)
        self._replay()  # pick up appends by other processes
        value = self._entries.get(key)
        return dict(value) if value is not None else None

    def put(self, key: str, value: Mapping[str, Any]) -> None:
        self._append({"op": "put", "key": key, "value": dict(value)})

    def scan(self) -> Iterator[Tuple[str, Dict[str, Any]]]:
        self._replay()
        for key, value in list(self._entries.items()):
            yield key, dict(value)

    def prune(self, max_entries: int) -> int:
        with _locked(self._lock_path()):
            self._replay()
            drop = len(self._entries) - max_entries
            if drop <= 0:
                return 0
            for key in list(self._entries)[:drop]:
                del self._entries[key]
            self._compact_locked()
            return drop

    def _compact_locked(self) -> None:
        """Rewrite the log as the live entries only; caller holds the lock."""
        lines = [
            json.dumps({"op": "put", "key": key, "value": value}, separators=(",", ":"))
            for key, value in self._entries.items()
        ]
        text = "".join(line + "\n" for line in lines)
        _atomic_write_text(self.path, text)
        self._offset = len(text.encode("utf-8"))
        self._ino = self.path.stat().st_ino
        self._dead_records = 0
        self._corrupt_lines = 0
        self._compactions += 1

    def compact(self) -> Dict[str, Any]:
        with _locked(self._lock_path()):
            self._replay()
            before = 0
            try:
                before = self.path.stat().st_size
            except OSError:
                pass
            self._compact_locked()
            after = self.path.stat().st_size
        return {"bytes_before": before, "bytes_after": after}

    def stats(self) -> Dict[str, Any]:
        self._replay()  # count appends by other processes, not a stale index
        size = 0
        try:
            size = self.path.stat().st_size
        except OSError:
            size = 0
        return {
            "backend": self.backend,
            "entries": len(self._entries),
            "bytes": size,
            "segments": 1,  # one active segment; compaction rewrites in place
            "dead_records": self._dead_records,
            "corrupt_lines": self._corrupt_lines,
            "compactions": self._compactions,
        }

    def clear(self) -> None:
        with _locked(self._lock_path()):
            self._replay()
            self._entries = {}
            self._compact_locked()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries


#: URI schemes understood by :func:`parse_store_uri`
_SCHEMES = {
    "json": "json",
    "dir": "sharded",
    "log": "log",
    "mem": "memory",
    "memory": "memory",
}


def parse_store_uri(spec: Optional[StorePath]) -> Tuple[str, Optional[str]]:
    """Resolve a cache spec to ``(backend, location)``.

    Explicit schemes win: ``json:PATH``, ``dir:PATH``, ``log:PATH``,
    ``mem:``.  Without one, an existing directory (or a trailing separator)
    selects the sharded store, a ``.jsonl``/``.log`` suffix the append log,
    and anything else the legacy single JSON file.  An unrecognised scheme
    is an error rather than a silently-misparsed filename (single letters
    are exempt — Windows drive prefixes).
    """
    if spec is None:
        return "memory", None
    text = os.fspath(spec) if not isinstance(spec, str) else spec
    text = str(text)
    scheme, sep, rest = text.partition(":")
    if sep:
        lowered = scheme.lower()
        if lowered in _SCHEMES:
            backend = _SCHEMES[lowered]
            if backend == "memory":
                return "memory", None
            if not rest:
                raise ValueError(f"cache store URI {text!r} is missing a path")
            return backend, rest
        # Anything shaped like a URI scheme (RFC 3986: letter, then
        # letters/digits/+/-/.) but unknown is an error, not a filename;
        # single letters stay exempt — Windows drive prefixes.
        if len(scheme) > 1 and re.fullmatch(r"[A-Za-z][A-Za-z0-9+.-]*", scheme):
            raise ValueError(
                f"unknown cache store scheme {scheme!r} in {text!r}; "
                f"expected one of {sorted(set(_SCHEMES))} or a plain path"
            )
    if text.endswith(("/", os.sep)):
        return "sharded", text.rstrip("/" + os.sep) or "/"
    if Path(text).is_dir():
        return "sharded", text
    if text.endswith((".jsonl", ".log")):
        return "log", text
    return "json", text


def open_store(spec: Optional[StorePath]) -> CacheStore:
    """Open the backend a cache spec names (see :func:`parse_store_uri`)."""
    if isinstance(spec, CacheStore):
        return spec
    backend, location = parse_store_uri(spec)
    if backend == "memory":
        return MemoryStore()
    if backend == "sharded":
        return ShardedStore(location)
    if backend == "log":
        return AppendLogStore(location)
    return JsonFileStore(location)


def migrate_store(
    src: Union[CacheStore, StorePath],
    dst: Union[CacheStore, StorePath],
    force: bool = False,
) -> Dict[str, Any]:
    """Copy every entry of ``src`` into ``dst``, preserving insertion order.

    Works between any two backends (v2 JSON ↔ sharded ↔ append-log).  The
    destination must be empty unless ``force`` clears it first; entry counts
    are verified after the copy so a partial migration cannot masquerade as
    a complete one.  Returns ``{"entries", "src", "dst", ...}``.
    """
    src_store = open_store(src)
    dst_store = open_store(dst)
    if src_store.path is not None and dst_store.path is not None:
        # resolve() so aliases (relative vs absolute, ./x, symlinks) cannot
        # slip past the guard and let --force clear the source
        if src_store.path.resolve() == dst_store.path.resolve():
            raise ValueError(
                f"source and destination are the same store: {src_store.uri}"
            )
    existing = len(dst_store)
    if existing:
        if not force:
            raise ValueError(
                f"destination {dst_store.uri or 'memory'} already holds "
                f"{existing} entries; pass force to overwrite"
            )
        dst_store.clear()
    copied = 0
    for key, value in src_store.scan():
        dst_store.put(key, value)
        copied += 1
    src_count = sum(1 for _ in src_store.scan())
    dst_count = len(dst_store)
    if dst_count != copied or src_count != copied:
        raise RuntimeError(
            f"migration verification failed: copied {copied} entries but the "
            f"source now scans {src_count} and the destination holds {dst_count}"
        )
    return {
        "entries": copied,
        "src": src_store.uri,
        "dst": dst_store.uri,
        "src_backend": src_store.backend,
        "dst_backend": dst_store.backend,
    }
