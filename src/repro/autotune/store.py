"""Pluggable persistence backends for the tuning cache.

:class:`repro.autotune.cache.TuningCache` used to *be* its persistence: one
JSON file, re-parsed and rewritten whole under a coarse ``flock`` on every
cold put (O(entries) on the hot path), whose read-merge-write save could
resurrect entries a concurrent ``prune()`` had just deleted.  This module
extracts persistence behind the :class:`CacheStore` interface so the hot
path, the locking granularity, and the prune semantics are properties of a
*backend*, selected by URI:

``PATH.json`` (or ``json:PATH``)
    :class:`JsonFileStore` — the legacy version-2 single-file format, kept
    for compatibility.  Saves now overlay only the keys *this* instance
    wrote (never its whole in-memory mirror) and honour on-disk tombstones,
    so a concurrent prune can no longer be undone by a racing writer.
``dir:PATH`` (or an existing directory)
    :class:`ShardedStore` — one file per fingerprint under a two-hex-char
    fanout directory.  ``put`` writes exactly one entry file (O(1), never
    reading or rewriting other entries) under a per-shard lock; ``prune``
    unlinks individual files, so it is prune-safe by construction.
``log:PATH`` (or ``PATH.jsonl`` / ``PATH.log``)
    :class:`AppendLogStore` — append-only JSONL with an in-memory offset
    index, crash-truncated-tail recovery, and size-triggered *rotation* into
    immutable sealed segments that a background merge folds without ever
    blocking appends, for high-churn server workloads.  Sealed segments can
    be shipped between servers and ingested on the other side (the fleet
    replication primitive).

``open_store`` maps a URI/path to a backend, ``migrate_store`` converts any
backend into any other preserving insertion order (``prune``'s notion of
"oldest" survives migration), and every backend reports its identity and
backend-specific gauges through ``stats()["backend"]`` et al.

Stores are safe against concurrent *processes* via ``fcntl`` advisory locks
(with a warn-once degradation where ``fcntl`` is missing); *thread* safety
is provided one level up by the :class:`TuningCache` facade's mutex.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import re
import tempfile
import time
import warnings
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

#: version 2: entry file order is insertion order (prune's "oldest"); files
#: written by version 1 (key-sorted) are discarded as a cold cache rather
#: than mis-pruned
CACHE_VERSION = 2

#: format version of the sharded directory layout (``store.json`` marker)
SHARDED_STORE_VERSION = 1

#: whether the missing-fcntl warning has been emitted (once per process)
_warned_unlocked = False

StorePath = Union[str, os.PathLike]

#: stats fields every backend (plus the facade's counters) reports; anything
#: else in a stats payload is a backend-specific gauge
CACHE_STATS_COMMON_FIELDS = ("backend", "entries", "bytes", "hits", "misses")


def ordered_cache_stats(stats: Mapping[str, Any]) -> Iterator[Tuple[str, Any]]:
    """A cache-stats payload as (field, value) pairs in render order.

    Common fields first (in their documented order), then the backend's own
    gauges sorted by name — so a ``dir:`` store shows its ``shards`` and a
    ``log:`` store its ``segments``/``compactions`` without the consumer
    hard-coding either.  Shared by both CLIs and the service wire docs.
    """
    for name in CACHE_STATS_COMMON_FIELDS:
        if name in stats:
            yield name, stats[name]
    for name in sorted(stats):
        if name not in CACHE_STATS_COMMON_FIELDS:
            yield name, stats[name]


def _warn_unlocked_writes() -> None:
    global _warned_unlocked
    if _warned_unlocked:
        return
    _warned_unlocked = True
    warnings.warn(
        "fcntl is unavailable on this platform: TuningCache writes proceed "
        "without inter-process file locking, so concurrent writers may race",
        RuntimeWarning,
        stacklevel=5,
    )


@contextlib.contextmanager
def _locked(lock_path: Path):
    """Exclusive advisory lock on a sidecar file (warns, once, without fcntl).

    A *sidecar* rather than the data file itself: backends replace their data
    files atomically (``os.replace``), which would orphan a lock held on the
    replaced inode.
    """
    if fcntl is None:
        _warn_unlocked_writes()
        yield
        return
    lock_path.parent.mkdir(parents=True, exist_ok=True)
    with open(lock_path, "w") as handle:
        fcntl.flock(handle, fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(handle, fcntl.LOCK_UN)


@contextlib.contextmanager
def _locked_stale(
    lock_path: Path,
    stale_after: Optional[float] = None,
    poll_interval: float = 0.05,
    on_takeover=None,
):
    """Like :func:`_locked`, but with age-based stale-lock takeover.

    ``flock`` held by a *dead process on the same host* releases itself, but
    on a multi-server NFS mount a peer that died (or lost its mount) can
    leave the advisory lock wedged — every other server then waits forever.
    With ``stale_after`` set, a contender that cannot acquire the lock and
    finds the sidecar file untouched for longer than ``stale_after`` seconds
    *takes it over*: the sidecar is unlinked and a fresh one created, so the
    dead peer's lock keeps only its orphaned inode.  Holders freshen the
    sidecar's mtime at acquisition, and critical sections are sub-second
    writes, so a live-but-slow peer is only at risk if it holds the lock
    longer than ``stale_after`` — pick it orders of magnitude above the
    section length (the :class:`ShardedStore` default is 30s for
    millisecond-scale sections).

    ``stale_after=None`` degrades to exactly :func:`_locked`.
    """
    if stale_after is None:
        with _locked(lock_path):
            yield
        return
    if fcntl is None:
        _warn_unlocked_writes()
        yield
        return
    lock_path.parent.mkdir(parents=True, exist_ok=True)
    while True:
        handle = open(lock_path, "a")
        try:
            try:
                fcntl.flock(handle, fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                handle.close()
                # Contended: a live holder refreshed the sidecar's mtime when
                # it acquired; one older than stale_after marks a dead peer.
                try:
                    age = time.time() - lock_path.stat().st_mtime
                except OSError:
                    continue  # holder released and removed it — retry now
                if age > stale_after:
                    try:
                        lock_path.unlink()
                    except OSError:
                        pass
                    if on_takeover is not None:
                        on_takeover()
                else:
                    time.sleep(poll_interval)
                continue
            # Acquired — but only the *current* sidecar counts: another
            # contender may have taken the file over between our open and
            # flock, leaving us locked on an orphaned inode.
            try:
                current_ino = lock_path.stat().st_ino
            except OSError:
                current_ino = None
            if current_ino != os.fstat(handle.fileno()).st_ino:
                fcntl.flock(handle, fcntl.LOCK_UN)
                handle.close()
                continue
            os.utime(handle.fileno())  # freshen: we are a live holder
            try:
                yield
            finally:
                fcntl.flock(handle, fcntl.LOCK_UN)
                handle.close()
            return
        except BaseException:
            try:
                handle.close()
            except OSError:
                pass
            raise


def _atomic_write_text(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` via a same-directory temp file + rename."""
    path.parent.mkdir(parents=True, exist_ok=True)
    descriptor, temp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(temp_name, path)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise


class CacheStore:
    """Interface every tuning-result store backend implements.

    Keys are opaque strings (in practice SHA-256 fingerprints), values are
    JSON-serialisable dicts.  ``scan`` yields entries in *insertion order* —
    the order ``prune`` treats as oldest-first and ``migrate_store``
    preserves across backends.  Implementations must keep ``put`` durable
    against a crash mid-write (atomic replace or append) and safe against
    concurrent processes sharing the same location.
    """

    #: short backend identifier reported by ``stats()["backend"]``
    backend: str = "abstract"

    #: filesystem anchor (file or directory), ``None`` for in-memory stores
    path: Optional[Path] = None

    @property
    def uri(self) -> Optional[str]:
        """Canonical spec string that re-opens this store (``None`` = memory)."""
        raise NotImplementedError

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        raise NotImplementedError

    def put(self, key: str, value: Mapping[str, Any]) -> None:
        raise NotImplementedError

    def scan(self) -> Iterator[Tuple[str, Dict[str, Any]]]:
        """Every (key, value) pair, oldest insertion first."""
        raise NotImplementedError

    def prune(self, max_entries: int) -> int:
        """Drop the oldest entries beyond ``max_entries``; the count dropped."""
        raise NotImplementedError

    def stats(self) -> Dict[str, Any]:
        """At least ``backend``, ``entries`` and ``bytes``, plus backend gauges."""
        raise NotImplementedError

    def compact(self) -> Dict[str, Any]:
        """Reclaim dead space; a dict describing what was reclaimed."""
        raise NotImplementedError

    def clear(self) -> None:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None


class MemoryStore(CacheStore):
    """Process-local dict — the ``path=None`` cache of one-shot sessions."""

    backend = "memory"

    def __init__(self) -> None:
        self._entries: Dict[str, Dict[str, Any]] = {}

    @property
    def uri(self) -> Optional[str]:
        return None

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        return self._entries.get(key)

    def put(self, key: str, value: Mapping[str, Any]) -> None:
        self._entries[key] = dict(value)

    def scan(self) -> Iterator[Tuple[str, Dict[str, Any]]]:
        yield from list(self._entries.items())

    def prune(self, max_entries: int) -> int:
        drop = len(self._entries) - max_entries
        if drop <= 0:
            return 0
        for key in list(self._entries)[:drop]:
            del self._entries[key]
        return drop

    def stats(self) -> Dict[str, Any]:
        return {"backend": self.backend, "entries": len(self._entries), "bytes": 0}

    def compact(self) -> Dict[str, Any]:
        return {}

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries


class JsonFileStore(CacheStore):
    """The legacy single-JSON-file format (version 2), made prune-safe.

    The whole store is one ``{"version", "entries", "tombstones"}`` document;
    a warm open is one parse, and ``get`` serves from the in-memory mirror.
    The historical race: an instance's save used to read-merge-write its
    *entire* mirror over the file, so a writer that loaded before a
    concurrent ``prune()`` resurrected every pruned entry on its next put.
    Two changes make that structurally impossible:

    * a save only overlays the keys this instance actually wrote since its
      last sync (the *dirty* set) — never the whole mirror;
    * ``prune`` records the dropped keys as tombstones inside the same
      locked write, and every later save drops tombstoned keys from its own
      mirror (unless it deliberately re-put them, which also clears the
      tombstone).

    Tombstones are capped at :data:`MAX_TOMBSTONES` (newest kept) so the
    file cannot grow without bound; the field is ignored by version-2
    readers that predate it.
    """

    backend = "json"

    #: upper bound on persisted tombstones (newest survive the cap)
    MAX_TOMBSTONES = 4096

    def __init__(self, path: StorePath) -> None:
        self.path = Path(path)
        self._entries: Dict[str, Dict[str, Any]] = {}
        self._dirty: set = set()
        self._tombstone_count = 0
        if self.path.exists():
            self._entries, tombstones = self._read()
            self._tombstone_count = len(tombstones)

    @property
    def uri(self) -> Optional[str]:
        return str(self.path)

    def _read(self) -> Tuple[Dict[str, Dict[str, Any]], Dict[str, int]]:
        """The on-disk (entries, tombstones); a bad file reads as cold."""
        try:
            payload = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            # A missing or corrupt file means a cold cache, not a crash.
            return {}, {}
        if not isinstance(payload, dict) or payload.get("version") != CACHE_VERSION:
            return {}, {}
        entries = payload.get("entries", {})
        tombstones = payload.get("tombstones", {})
        if not isinstance(entries, dict):
            entries = {}
        if not isinstance(tombstones, dict):
            tombstones = {}
        return (
            {str(k): dict(v) for k, v in entries.items()},
            {str(k): int(v) for k, v in tombstones.items()},
        )

    def _write(
        self, entries: Dict[str, Dict[str, Any]], tombstones: Dict[str, int]
    ) -> None:
        if len(tombstones) > self.MAX_TOMBSTONES:
            newest = sorted(tombstones, key=tombstones.__getitem__)[-self.MAX_TOMBSTONES:]
            tombstones = {k: tombstones[k] for k in newest}
        payload: Dict[str, Any] = {"version": CACHE_VERSION, "entries": entries}
        if tombstones:
            payload["tombstones"] = tombstones
        # No sort_keys: entry insertion order must survive the round-trip —
        # prune() defines "oldest" by it.
        _atomic_write_text(self.path, json.dumps(payload, indent=1))
        self._tombstone_count = len(tombstones)

    def _lock_path(self) -> Path:
        return self.path.with_name(self.path.name + ".lock")

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        return self._entries.get(key)

    def put(self, key: str, value: Mapping[str, Any]) -> None:
        self._entries[key] = dict(value)
        self._dirty.add(key)
        self._sync()

    def _sync(self) -> None:
        """Persist this instance's dirty keys, under the exclusive file lock.

        The merge base is the *current* on-disk state, so entries other
        processes persisted since our load are kept; only our dirty keys are
        overlaid on top (our writes win for those keys, nothing else of our
        mirror touches the file).  On-disk tombstones for keys we did not
        re-put are applied to our mirror, converging it with concurrent
        prunes instead of resurrecting their victims.
        """
        with _locked(self._lock_path()):
            disk_entries, tombstones = self._read()
            for key in tombstones:
                if key not in self._dirty:
                    self._entries.pop(key, None)
            merged = dict(disk_entries)
            for key in self._entries:
                if key in self._dirty:
                    merged[key] = self._entries[key]
            tombstones = {k: v for k, v in tombstones.items() if k not in self._dirty}
            self._write(merged, tombstones)
            # Adopt other processes' entries (and drop anything that vanished
            # from disk) so this mirror serves warm hits for the whole file.
            self._entries = merged
            self._dirty.clear()

    def scan(self) -> Iterator[Tuple[str, Dict[str, Any]]]:
        entries, _tombstones = self._read()
        for key in self._entries:
            if key in self._dirty:
                entries[key] = self._entries[key]
        yield from entries.items()

    def prune(self, max_entries: int) -> int:
        now = time.time_ns()
        with _locked(self._lock_path()):
            disk_entries, tombstones = self._read()
            merged = dict(disk_entries)
            for key in self._entries:
                if key in self._dirty:
                    merged[key] = self._entries[key]
            drop = len(merged) - max_entries
            if drop <= 0:
                self._entries = merged
                self._dirty.clear()
                return 0
            dropped = list(merged)[:drop]
            for key in dropped:
                del merged[key]
                tombstones[key] = now
            self._write(merged, tombstones)
            self._entries = merged
            self._dirty.clear()
            return drop

    def stats(self) -> Dict[str, Any]:
        size = 0
        try:
            size = self.path.stat().st_size
        except OSError:
            size = 0
        return {
            "backend": self.backend,
            "entries": len(self._entries),
            "bytes": size,
            "tombstones": self._tombstone_count,
        }

    def compact(self) -> Dict[str, Any]:
        """Drop every persisted tombstone (entries are already compact)."""
        with _locked(self._lock_path()):
            entries, tombstones = self._read()
            removed = len(tombstones)
            if removed:
                self._write(entries, {})
            return {"tombstones_removed": removed}

    def clear(self) -> None:
        with _locked(self._lock_path()):
            self._write({}, {})
            self._entries.clear()
            self._dirty.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries


class ShardedStore(CacheStore):
    """One file per fingerprint under a two-hex-char fanout directory.

    ``put`` creates exactly one entry file (atomic temp + rename under that
    shard's lock) and never reads or rewrites any other entry — O(1)
    whatever the store holds.  ``prune`` unlinks individual entry files, so
    a concurrent writer cannot resurrect a pruned entry: its save touches
    only its own file.  Insertion order is a monotonic per-entry ``seq``
    stamped into each file (wall-clock nanoseconds, forced strictly
    increasing within a process), which ``scan``/``prune`` sort by.

    Liveness on multi-server NFS mounts: every sidecar lock is taken with
    age-based stale takeover (see :func:`_locked_stale`) — a peer server
    that died mid-write cannot wedge a shard forever.  ``stale_after``
    tunes the takeover age (seconds; ``None`` restores wait-forever);
    takeovers are counted in ``stats()["lock_takeovers"]``.
    """

    backend = "sharded"

    #: root marker file naming the layout version
    META_NAME = "store.json"

    #: seconds of sidecar-lock silence before a contender takes it over —
    #: several orders of magnitude above the millisecond-scale critical
    #: sections, so only a dead peer's lock is ever stolen
    DEFAULT_STALE_AFTER = 30.0

    def __init__(
        self, root: StorePath, stale_after: Optional[float] = DEFAULT_STALE_AFTER
    ) -> None:
        self.path = Path(root)
        self.stale_after = stale_after
        self._lock_takeovers = 0
        self._last_seq = 0
        meta_path = self.path / self.META_NAME
        if meta_path.exists():
            try:
                meta = json.loads(meta_path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                meta = {}
            if meta.get("version") != SHARDED_STORE_VERSION:
                raise ValueError(
                    f"{self.path} holds an unsupported sharded-store layout "
                    f"(version {meta.get('version')!r}); migrate it with "
                    "'python -m repro.autotune cache-migrate'"
                )

    @property
    def uri(self) -> Optional[str]:
        return f"dir:{self.path}"

    def _ensure_meta(self) -> None:
        meta_path = self.path / self.META_NAME
        if not meta_path.exists():
            _atomic_write_text(
                meta_path,
                json.dumps(
                    {"format": "repro-sharded-store", "version": SHARDED_STORE_VERSION}
                ),
            )

    def _entry_path(self, key: str) -> Path:
        digest = hashlib.sha256(key.encode("utf-8")).hexdigest()
        return self.path / digest[:2] / f"{digest}.json"

    def _next_seq(self) -> int:
        self._last_seq = max(time.time_ns(), self._last_seq + 1)
        return self._last_seq

    def _note_takeover(self) -> None:
        self._lock_takeovers += 1

    def _shard_lock(self, lock_path: Path):
        return _locked_stale(
            lock_path,
            stale_after=self.stale_after,
            on_takeover=self._note_takeover,
        )

    def _shard_dirs(self) -> Iterator[Path]:
        if not self.path.is_dir():
            return
        for child in sorted(self.path.iterdir()):
            if child.is_dir() and len(child.name) == 2:
                yield child

    def _entry_files(self) -> Iterator[Path]:
        for shard in self._shard_dirs():
            for entry in sorted(shard.glob("*.json")):
                yield entry

    @staticmethod
    def _read_entry(entry_path: Path) -> Optional[Dict[str, Any]]:
        try:
            record = json.loads(entry_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(record, dict) or "key" not in record or "value" not in record:
            return None
        return record

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        record = self._read_entry(self._entry_path(key))
        if record is None:
            return None
        return dict(record["value"])

    def put(self, key: str, value: Mapping[str, Any]) -> None:
        entry_path = self._entry_path(key)
        entry_path.parent.mkdir(parents=True, exist_ok=True)
        self._ensure_meta()
        # The rename is already atomic; the shard lock additionally orders a
        # put against a concurrent prune unlinking the same entry.
        with self._shard_lock(entry_path.parent / ".lock"):
            # A re-put keeps its original seq: like the dict-backed formats,
            # updating an entry must not refresh its insertion position (the
            # only file read is this entry's own — puts stay O(1)).
            existing = self._read_entry(entry_path)
            if existing is not None and isinstance(existing.get("seq"), int):
                seq = existing["seq"]
            else:
                seq = self._next_seq()
            record = {"key": key, "seq": seq, "value": dict(value)}
            _atomic_write_text(entry_path, json.dumps(record))

    def _sorted_records(self) -> list:
        records = []
        for entry_path in self._entry_files():
            record = self._read_entry(entry_path)
            if record is not None:
                records.append((record.get("seq", 0), record["key"], record, entry_path))
        records.sort(key=lambda item: (item[0], item[1]))
        return records

    def scan(self) -> Iterator[Tuple[str, Dict[str, Any]]]:
        for _seq, key, record, _path in self._sorted_records():
            yield key, dict(record["value"])

    def prune(self, max_entries: int) -> int:
        with self._shard_lock(self.path / ".lock"):
            records = self._sorted_records()
            drop = len(records) - max_entries
            if drop <= 0:
                return 0
            for _seq, _key, record, entry_path in records[:drop]:
                with self._shard_lock(entry_path.parent / ".lock"):
                    try:
                        entry_path.unlink()
                    except OSError:
                        pass
            return drop

    def stats(self) -> Dict[str, Any]:
        entries = 0
        size = 0
        shards = 0
        for shard in self._shard_dirs():
            in_shard = 0
            for entry_path in shard.glob("*.json"):
                in_shard += 1
                try:
                    size += entry_path.stat().st_size
                except OSError:
                    pass
            if in_shard:
                shards += 1
            entries += in_shard
        return {
            "backend": self.backend,
            "entries": entries,
            "bytes": size,
            "shards": shards,
            "lock_takeovers": self._lock_takeovers,
        }

    def compact(self) -> Dict[str, Any]:
        """Sweep stray temp files and now-empty shard directories."""
        removed_tmp = 0
        removed_dirs = 0
        with self._shard_lock(self.path / ".lock"):
            for shard in list(self._shard_dirs()):
                for stray in shard.glob("*.tmp"):
                    try:
                        stray.unlink()
                        removed_tmp += 1
                    except OSError:
                        pass
                remaining = [p for p in shard.iterdir() if p.suffix == ".json"]
                if not remaining:
                    for lock_file in shard.glob(".lock"):
                        try:
                            lock_file.unlink()
                        except OSError:
                            pass
                    try:
                        shard.rmdir()
                        removed_dirs += 1
                    except OSError:
                        pass
        return {"tmp_files_removed": removed_tmp, "empty_shards_removed": removed_dirs}

    def clear(self) -> None:
        with self._shard_lock(self.path / ".lock"):
            for entry_path in list(self._entry_files()):
                try:
                    entry_path.unlink()
                except OSError:
                    pass

    def __len__(self) -> int:
        return sum(1 for _ in self._entry_files())

    def __contains__(self, key: str) -> bool:
        return self._entry_path(key).exists()


class AppendLogStore(CacheStore):
    """Append-only JSONL log with sealed segments and an in-memory index.

    Every mutation is one appended line — ``{"op": "put", ...}`` or
    ``{"op": "del", ...}`` — written to the *active* file under the
    exclusive append lock, so a put costs O(1) regardless of how many
    entries the log holds.  Readers replay only the *tail* they have not
    seen (tracked by byte offset and inode); a change to the sealed
    segment set or a new active inode triggers a clean full re-replay.

    Growth control is split into a cheap half and an expensive half so the
    expensive half never blocks writers:

    * **rotation** (cheap, under the append lock): once the active file
      outgrows ``auto_compact_bytes`` with enough dead records, it is
      *renamed* to an immutable sealed segment ``NAME.NNNNNN.seg`` and a
      fresh active file starts.  The rename is the entire cost.
    * **sealed merge** (expensive, under the *segment* lock only): sealed
      segments are folded into one.  Replaying the merged segment yields
      exactly the same state as replaying the originals in order, so a
      reader holding a stale segment list simply re-replays and converges.
      Appends keep flowing while the merge runs — :meth:`compact_sealed`
      never touches the active file.  Lock order is append → segment.

    Sealed segments double as the fleet replication primitive: being
    immutable, a ``.seg`` file can be shipped to a peer server verbatim and
    applied there with :meth:`ingest_segment` (local entries always win).

    Recovery rules make a crash-truncated tail harmless: a final chunk
    without a newline is left pending (re-examined on the next replay, and
    terminated by the next writer before it appends), and any complete line
    that fails to parse is skipped and counted, never fatal.
    """

    backend = "log"

    #: sealed segments accumulated before an automatic merge folds them;
    #: 2 keeps total sealed bytes within ~1 rotation of the fold size
    AUTO_MERGE_SEGMENTS = 2

    def __init__(
        self,
        path: StorePath,
        auto_compact_bytes: int = 1 << 20,
        auto_compact_ratio: int = 4,
    ) -> None:
        self.path = Path(path)
        self.auto_compact_bytes = auto_compact_bytes
        self.auto_compact_ratio = auto_compact_ratio
        self._entries: Dict[str, Dict[str, Any]] = {}
        self._offset = 0
        self._ino: Optional[int] = None
        self._sealed_seen: Tuple[str, ...] = ()
        self._dead_records = 0
        self._corrupt_lines = 0
        self._compactions = 0
        self._rotations = 0
        self._replay()

    @property
    def uri(self) -> Optional[str]:
        return f"log:{self.path}"

    def _lock_path(self) -> Path:
        return self.path.with_name(self.path.name + ".lock")

    def _seg_lock_path(self) -> Path:
        return self.path.with_name(self.path.name + ".seglock")

    def _sealed_paths(self) -> List[Path]:
        """The sealed segment files, in replay (name) order."""
        return sorted(self.path.parent.glob(f"{self.path.name}.*.seg"))

    def _reset(self) -> None:
        self._entries = {}
        self._offset = 0
        self._dead_records = 0
        self._corrupt_lines = 0

    def _apply(self, record: Mapping[str, Any]) -> None:
        op = record.get("op")
        if op == "put" and "key" in record and isinstance(record.get("value"), dict):
            key = str(record["key"])
            if key in self._entries:
                self._dead_records += 1
            self._entries[key] = dict(record["value"])
        elif op == "del" and "key" in record:
            if self._entries.pop(str(record["key"]), None) is not None:
                self._dead_records += 2  # the del line and the put it killed
        elif op == "clear":
            self._dead_records += len(self._entries) + 1
            self._entries = {}
        else:
            self._corrupt_lines += 1

    def _consume_lines(self, chunk: bytes) -> int:
        """Apply every complete line in ``chunk``; returns bytes consumed."""
        consumed = 0
        while True:
            newline = chunk.find(b"\n", consumed)
            if newline < 0:
                break  # incomplete tail line: leave pending for the next replay
            line = chunk[consumed:newline].strip()
            consumed = newline + 1
            if not line:
                continue
            try:
                record = json.loads(line.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                self._corrupt_lines += 1
                continue
            if isinstance(record, dict):
                self._apply(record)
            else:
                self._corrupt_lines += 1
        return consumed

    def _replay(self) -> None:
        """Catch the in-memory index up with the segments + active tail."""
        sealed = tuple(path.name for path in self._sealed_paths())
        try:
            stat = self.path.stat()
        except OSError:
            stat = None
        active_replaced = stat is not None and (
            stat.st_ino != self._ino or stat.st_size < self._offset
        )
        active_vanished = stat is None and (
            self._ino is not None or self._offset > 0
        )
        if sealed != self._sealed_seen or active_replaced or active_vanished:
            # Rotated/merged/compacted by someone else (or first sight of
            # the log): start over — sealed segments fully, then the active
            # file from byte 0.  If a concurrent merge deletes a segment
            # mid-replay we may apply a stale mix, but the merged segment is
            # exactly the fold of the originals, so the *next* replay (which
            # will see a changed sealed set again) converges.
            self._reset()
            self._sealed_seen = sealed
            for segment in self._sealed_paths():
                try:
                    data = segment.read_bytes()
                except OSError:
                    continue
                if data and not data.endswith(b"\n"):
                    data += b"\n"  # sealed mid-crash: last line still counts
                self._consume_lines(data)
            self._ino = stat.st_ino if stat is not None else None
        if stat is None or stat.st_size == self._offset:
            return
        with open(self.path, "rb") as handle:
            handle.seek(self._offset)
            chunk = handle.read()
        self._offset += self._consume_lines(chunk)

    def _write_locked(self, records: Sequence[Dict[str, Any]]) -> int:
        """Append records to the active file; caller holds the append lock.

        Tail-terminating: a crash-torn partial final line is closed with a
        newline first, so it stays one skippable corrupt line instead of
        fusing with our record.  Returns the active file size afterwards.
        """
        payload = b"".join(
            json.dumps(record, separators=(",", ":")).encode("utf-8") + b"\n"
            for record in records
        )
        needs_newline = False
        try:
            with open(self.path, "rb") as peek:
                peek.seek(-1, os.SEEK_END)
                needs_newline = peek.read(1) != b"\n"
        except (OSError, ValueError):
            needs_newline = False  # missing or empty file
        with open(self.path, "ab") as handle:
            if needs_newline:
                handle.write(b"\n")
            handle.write(payload)
            handle.flush()
            size = handle.tell()
        for record in records:
            self._apply(record)
        # Our records are the last consumed lines; the whole file is now
        # processed, so the replay offset can jump straight to the end.
        self._offset = size
        if self._ino is None:
            self._ino = self.path.stat().st_ino
        return size

    def _append(self, record: Dict[str, Any]) -> None:
        """One record line under the append lock; rotation when oversized."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        merge_due = False
        with _locked(self._lock_path()):
            self._replay()
            size = self._write_locked([record])
            if (
                size >= self.auto_compact_bytes
                and self._dead_records
                >= self.auto_compact_ratio * max(1, len(self._entries))
            ):
                self._rotate_locked()
                merge_due = len(self._sealed_seen) >= self.AUTO_MERGE_SEGMENTS
        if merge_due:
            # Outside the append lock on purpose: the merge is the expensive
            # half and must not serialise against other writers.
            self.compact_sealed()

    def _rotate_locked(self) -> Optional[Path]:
        """Seal the active file as a new segment; caller holds append lock."""
        try:
            if self.path.stat().st_size == 0:
                return None
        except OSError:
            return None
        numbers = [0]
        for segment in self._sealed_paths():
            part = segment.name[len(self.path.name) + 1 : -len(".seg")]
            if part.isdigit():
                numbers.append(int(part))
        target = self.path.with_name(
            f"{self.path.name}.{max(numbers) + 1:06d}.seg"
        )
        os.replace(self.path, target)
        self._sealed_seen = tuple(path.name for path in self._sealed_paths())
        self._offset = 0
        self._ino = None
        self._rotations += 1
        return target

    def rotate(self) -> Optional[Path]:
        """Seal the current active file; returns the new segment's path.

        ``None`` when there is nothing to seal.  The rename is the entire
        cost — no data is rewritten, so writers are blocked only for the
        duration of one directory operation.
        """
        with _locked(self._lock_path()):
            self._replay()
            return self._rotate_locked()

    @staticmethod
    def _fold_segment_lines(data: bytes, folded: Dict[str, Dict[str, Any]]) -> None:
        """Apply one segment's records onto ``folded`` (put/del/clear only)."""
        for raw in data.splitlines():
            raw = raw.strip()
            if not raw:
                continue
            try:
                record = json.loads(raw.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                continue
            if not isinstance(record, dict):
                continue
            op = record.get("op")
            if op == "put" and "key" in record and isinstance(record.get("value"), dict):
                folded[str(record["key"])] = dict(record["value"])
            elif op == "del" and "key" in record:
                folded.pop(str(record["key"]), None)
            elif op == "clear":
                folded.clear()

    def compact_sealed(self) -> Dict[str, Any]:
        """Fold every sealed segment into one; never touches the active file.

        Holds only the segment lock, so appends (append lock) proceed
        concurrently — this is the "compaction never blocks appends" half of
        the growth story.  The merged segment atomically replaces the
        lowest-numbered one; higher segments are then unlinked.  Replaying
        the merged segment yields exactly the fold of the originals, so any
        reader observes either the old set, the new set, or a stale mix that
        its next replay converges away.
        """
        with _locked(self._seg_lock_path()):
            segments = self._sealed_paths()
            before = 0
            for segment in segments:
                try:
                    before += segment.stat().st_size
                except OSError:
                    pass
            if len(segments) < 2:
                return {
                    "segments_merged": 0,
                    "bytes_before": before,
                    "bytes_after": before,
                }
            folded: Dict[str, Dict[str, Any]] = {}
            for segment in segments:
                try:
                    self._fold_segment_lines(segment.read_bytes(), folded)
                except OSError:
                    continue
            text = "".join(
                json.dumps(
                    {"op": "put", "key": key, "value": value},
                    separators=(",", ":"),
                )
                + "\n"
                for key, value in folded.items()
            )
            _atomic_write_text(segments[0], text)
            for segment in segments[1:]:
                try:
                    segment.unlink()
                except OSError:
                    pass
            self._compactions += 1
            try:
                after = segments[0].stat().st_size
            except OSError:
                after = 0
        # _sealed_seen is now stale on purpose: the next _replay notices the
        # changed sealed set and re-replays, refreshing dead-record counts.
        return {
            "segments_merged": len(segments),
            "bytes_before": before,
            "bytes_after": after,
        }

    def ingest_segment(self, segment: StorePath) -> int:
        """Apply a peer's sealed segment; returns the entries adopted.

        The replication receive side: every entry the segment's fold holds
        for a key absent locally is appended as a local put.  Local entries
        always win — the home server's result for a fingerprint is
        authoritative, a shipped segment only fills gaps.
        """
        segment = Path(segment)
        try:
            data = segment.read_bytes()
        except OSError as error:
            raise ValueError(f"cannot read segment {segment}: {error}") from None
        incoming: Dict[str, Dict[str, Any]] = {}
        self._fold_segment_lines(data, incoming)
        if not incoming:
            return 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with _locked(self._lock_path()):
            self._replay()
            records = [
                {"op": "put", "key": key, "value": value}
                for key, value in incoming.items()
                if key not in self._entries
            ]
            if records:
                self._write_locked(records)
        return len(records)

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        value = self._entries.get(key)
        if value is not None:
            return dict(value)
        self._replay()  # pick up appends by other processes
        value = self._entries.get(key)
        return dict(value) if value is not None else None

    def put(self, key: str, value: Mapping[str, Any]) -> None:
        self._append({"op": "put", "key": key, "value": dict(value)})

    def scan(self) -> Iterator[Tuple[str, Dict[str, Any]]]:
        self._replay()
        for key, value in list(self._entries.items()):
            yield key, dict(value)

    def prune(self, max_entries: int) -> int:
        with _locked(self._lock_path()):
            self._replay()
            drop = len(self._entries) - max_entries
            if drop <= 0:
                return 0
            for key in list(self._entries)[:drop]:
                del self._entries[key]
            self._compact_locked()
            return drop

    def _compact_locked(self) -> None:
        """Fold everything — sealed + active — into a fresh active file.

        Caller holds the append lock; the segment lock is taken inside
        (append → segment is the global lock order).  This is the one
        stop-the-world operation, reserved for explicit ``compact``,
        ``prune`` and ``clear``; routine growth control goes through
        rotation plus :meth:`compact_sealed` instead.
        """
        with _locked(self._seg_lock_path()):
            lines = [
                json.dumps(
                    {"op": "put", "key": key, "value": value},
                    separators=(",", ":"),
                )
                for key, value in self._entries.items()
            ]
            text = "".join(line + "\n" for line in lines)
            _atomic_write_text(self.path, text)
            for segment in self._sealed_paths():
                try:
                    segment.unlink()
                except OSError:
                    pass
            self._sealed_seen = ()
            self._offset = len(text.encode("utf-8"))
            self._ino = self.path.stat().st_ino
            self._dead_records = 0
            self._corrupt_lines = 0
            self._compactions += 1

    def compact(self) -> Dict[str, Any]:
        with _locked(self._lock_path()):
            self._replay()
            before = 0
            for target in [self.path, *self._sealed_paths()]:
                try:
                    before += target.stat().st_size
                except OSError:
                    pass
            self._compact_locked()
            after = self.path.stat().st_size
        return {"bytes_before": before, "bytes_after": after}

    def stats(self) -> Dict[str, Any]:
        self._replay()  # count appends by other processes, not a stale index
        size = 0
        try:
            size = self.path.stat().st_size
        except OSError:
            size = 0
        sealed_bytes = 0
        for segment in self._sealed_paths():
            try:
                sealed_bytes += segment.stat().st_size
            except OSError:
                pass
        return {
            "backend": self.backend,
            "entries": len(self._entries),
            "bytes": size + sealed_bytes,
            "segments": 1 + len(self._sealed_seen),
            "sealed_bytes": sealed_bytes,
            "rotations": self._rotations,
            "dead_records": self._dead_records,
            "corrupt_lines": self._corrupt_lines,
            "compactions": self._compactions,
        }

    def clear(self) -> None:
        with _locked(self._lock_path()):
            self._replay()
            self._entries = {}
            self._compact_locked()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries


#: URI schemes understood by :func:`parse_store_uri`
_SCHEMES = {
    "json": "json",
    "dir": "sharded",
    "log": "log",
    "mem": "memory",
    "memory": "memory",
}


def parse_store_uri(spec: Optional[StorePath]) -> Tuple[str, Optional[str]]:
    """Resolve a cache spec to ``(backend, location)``.

    Explicit schemes win: ``json:PATH``, ``dir:PATH``, ``log:PATH``,
    ``mem:``.  Without one, an existing directory (or a trailing separator)
    selects the sharded store, a ``.jsonl``/``.log`` suffix the append log,
    and anything else the legacy single JSON file.  An unrecognised scheme
    is an error rather than a silently-misparsed filename (single letters
    are exempt — Windows drive prefixes).
    """
    if spec is None:
        return "memory", None
    text = os.fspath(spec) if not isinstance(spec, str) else spec
    text = str(text)
    scheme, sep, rest = text.partition(":")
    if sep:
        lowered = scheme.lower()
        if lowered in _SCHEMES:
            backend = _SCHEMES[lowered]
            if backend == "memory":
                return "memory", None
            if not rest:
                raise ValueError(f"cache store URI {text!r} is missing a path")
            return backend, rest
        # Anything shaped like a URI scheme (RFC 3986: letter, then
        # letters/digits/+/-/.) but unknown is an error, not a filename;
        # single letters stay exempt — Windows drive prefixes.
        if len(scheme) > 1 and re.fullmatch(r"[A-Za-z][A-Za-z0-9+.-]*", scheme):
            raise ValueError(
                f"unknown cache store scheme {scheme!r} in {text!r}; "
                f"expected one of {sorted(set(_SCHEMES))} or a plain path"
            )
    if text.endswith(("/", os.sep)):
        return "sharded", text.rstrip("/" + os.sep) or "/"
    if Path(text).is_dir():
        return "sharded", text
    if text.endswith((".jsonl", ".log")):
        return "log", text
    return "json", text


def open_store(spec: Optional[StorePath]) -> CacheStore:
    """Open the backend a cache spec names (see :func:`parse_store_uri`)."""
    if isinstance(spec, CacheStore):
        return spec
    backend, location = parse_store_uri(spec)
    if backend == "memory":
        return MemoryStore()
    if backend == "sharded":
        return ShardedStore(location)
    if backend == "log":
        return AppendLogStore(location)
    return JsonFileStore(location)


def migrate_store(
    src: Union[CacheStore, StorePath],
    dst: Union[CacheStore, StorePath],
    force: bool = False,
) -> Dict[str, Any]:
    """Copy every entry of ``src`` into ``dst``, preserving insertion order.

    Works between any two backends (v2 JSON ↔ sharded ↔ append-log).  The
    destination must be empty unless ``force`` clears it first; entry counts
    are verified after the copy so a partial migration cannot masquerade as
    a complete one.  Returns ``{"entries", "src", "dst", ...}``.
    """
    src_store = open_store(src)
    dst_store = open_store(dst)
    if src_store.path is not None and dst_store.path is not None:
        # resolve() so aliases (relative vs absolute, ./x, symlinks) cannot
        # slip past the guard and let --force clear the source
        if src_store.path.resolve() == dst_store.path.resolve():
            raise ValueError(
                f"source and destination are the same store: {src_store.uri}"
            )
    existing = len(dst_store)
    if existing:
        if not force:
            raise ValueError(
                f"destination {dst_store.uri or 'memory'} already holds "
                f"{existing} entries; pass force to overwrite"
            )
        dst_store.clear()
    copied = 0
    for key, value in src_store.scan():
        dst_store.put(key, value)
        copied += 1
    src_count = sum(1 for _ in src_store.scan())
    dst_count = len(dst_store)
    if dst_count != copied or src_count != copied:
        raise RuntimeError(
            f"migration verification failed: copied {copied} entries but the "
            f"source now scans {src_count} and the destination holds {dst_count}"
        )
    return {
        "entries": copied,
        "src": src_store.uri,
        "dst": dst_store.uri,
        "src_backend": src_store.backend,
        "dst_backend": dst_store.backend,
    }
