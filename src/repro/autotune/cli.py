"""Command-line entry point: ``python -m repro.autotune``.

Examples
--------
List the tunable kernels::

    python -m repro.autotune --list-kernels

Tune a 256³ matmul with 4 parallel evaluators and a persistent cache::

    python -m repro.autotune matmul --size m=256 n=256 k=256 \\
        --strategy pruned --workers 4 --cache .autotune-cache.json

A second identical invocation is served entirely from the cache.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Sequence

from repro.core.pipeline import COMPILE_COUNTER
from repro.kernels.registry import available_kernels, get_kernel
from repro.autotune.cache import TuningCache
from repro.autotune.search import STRATEGIES
from repro.autotune.session import autotune
from repro.autotune.space import SpaceOptions


def _parse_sizes(pairs: Sequence[str]) -> Dict[str, int]:
    sizes: Dict[str, int] = {}
    for pair in pairs:
        if "=" not in pair:
            raise argparse.ArgumentTypeError(
                f"size must look like name=value, got {pair!r}"
            )
        name, _, value = pair.partition("=")
        try:
            sizes[name.strip()] = int(value)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"size value for {name!r} must be an integer, got {value!r}"
            ) from None
    return sizes


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.autotune",
        description="Empirically autotune a kernel's mapping on the machine models.",
    )
    parser.add_argument("kernel", nargs="?", help="registered kernel name")
    parser.add_argument(
        "--list-kernels", action="store_true", help="list tunable kernels and exit"
    )
    parser.add_argument(
        "--size",
        nargs="*",
        default=[],
        metavar="NAME=VALUE",
        help="problem-size overrides, e.g. --size m=256 n=256 k=256",
    )
    parser.add_argument(
        "--strategy",
        default="pruned",
        choices=sorted(STRATEGIES),
        help="search strategy (default: pruned)",
    )
    parser.add_argument(
        "--workers", type=int, default=1, help="parallel evaluation workers"
    )
    parser.add_argument(
        "--cache", default=None, metavar="PATH", help="persistent cache file"
    )
    parser.add_argument("--seed", type=int, default=0, help="search / input seed")
    parser.add_argument(
        "--check",
        action="store_true",
        help="spot-check each configuration through the interpreter "
        "(at the kernel's small verification size)",
    )
    parser.add_argument(
        "--top", type=int, default=5, help="show this many best configurations"
    )
    parser.add_argument(
        "--allow-no-scratchpad",
        action="store_true",
        help="let the tuner also consider disabling scratchpad staging",
    )
    parser.add_argument(
        "--threads",
        type=int,
        nargs="*",
        default=None,
        help="thread-per-block counts to explore (default: 64 128 256)",
    )
    parser.add_argument(
        "--blocks",
        type=int,
        nargs="*",
        default=None,
        help="thread-block counts to explore (default: 16 32 64)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_kernels:
        for name in available_kernels():
            kernel = get_kernel(name)
            sizes = ", ".join(f"{k}={v}" for k, v in kernel.default_sizes.items())
            print(f"{name:10s} {kernel.description}  (defaults: {sizes})")
        return 0
    if not args.kernel:
        parser.error("a kernel name is required (or --list-kernels)")

    try:
        kernel = get_kernel(args.kernel)
        sizes = _parse_sizes(args.size)
        program = kernel.build(**sizes)
    except (KeyError, ValueError, argparse.ArgumentTypeError) as error:
        message = error.args[0] if error.args else str(error)
        print(f"error: {message}", file=sys.stderr)
        return 2

    defaults = SpaceOptions()
    space_options = SpaceOptions(
        thread_counts=tuple(args.threads) if args.threads else defaults.thread_counts,
        block_counts=tuple(args.blocks) if args.blocks else defaults.block_counts,
        scratchpad_choices=(True, False) if args.allow_no_scratchpad else (True,),
    )
    cache = TuningCache(args.cache) if args.cache else None
    compiles_before = COMPILE_COUNTER.count
    report = autotune(
        program,
        strategy=args.strategy,
        max_workers=args.workers,
        cache=cache,
        seed=args.seed,
        space_options=space_options,
        check_correctness=args.check,
        check_program=kernel.build_check() if args.check else None,
    )
    compiles = COMPILE_COUNTER.count - compiles_before

    print(report.summary())
    print(f"pipeline compiles this call: {compiles}")
    if cache is not None:
        print(f"cache: {cache.stats()} at {cache.path}")
    ranked = sorted(
        (r for r in report.results if r.feasible),
        key=lambda r: (r.time_ms, r.configuration.key()),
    )
    print(f"top {min(args.top, len(ranked))} of {len(report.results)} evaluated:")
    for result in ranked[: args.top]:
        config = result.configuration
        tiles = ",".join(f"{k}={v}" for k, v in config.tile_sizes)
        checked = "" if result.correct is None else f" correct={result.correct}"
        print(
            f"  {result.time_ms:9.3f} ms  blocks={config.num_blocks:<4d} "
            f"threads={config.threads_per_block:<4d} tiles[{tiles}] "
            f"spm={'on' if config.use_scratchpad else 'off'}{checked}"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
