"""Command-line entry point: ``python -m repro.autotune``.

Examples
--------
List the tunable kernels::

    python -m repro.autotune --list-kernels

Tune a 256³ matmul with 4 parallel evaluators and a persistent cache::

    python -m repro.autotune matmul --size m=256 n=256 k=256 \\
        --strategy pruned --workers 4 --cache .autotune-cache.json

A second identical invocation is served entirely from the cache.  ``--cache``
accepts any store URI — a plain ``.json`` path (legacy single file),
``dir:DIR`` (sharded per-fingerprint store, O(1) puts), or ``log:FILE``
(append-only JSONL log).  Inspect, bound, or convert that cache with the
maintenance subcommands::

    python -m repro.autotune cache-stats --cache .autotune-cache.json
    python -m repro.autotune cache-prune --cache dir:.autotune-cache --max-entries 64
    python -m repro.autotune cache-migrate .autotune-cache.json dir:.autotune-cache

Tune by *measuring* the emitted program instead of pricing the model — the
paper's empirical loop (see ``python -m repro.autotune backends``)::

    python -m repro.autotune matmul --size m=16 n=16 k=16 \\
        --backend 'hybrid:model>measure-py?top=4'

Inspect the staged compiler (per-stage timings, artifact fingerprints, and
the replay-from-stage reuse) for one kernel::

    python -m repro.autotune inspect-stages matmul --size m=256 n=256 k=256
"""

from __future__ import annotations

import argparse
import json
import sys
import warnings
from typing import Dict, List, Optional, Sequence

from repro.compiler import CompilationSession, DEFAULT_PASSES, counting_compiles
from repro.kernels.registry import available_kernels, get_kernel
from repro.telemetry import trace
from repro.autotune.backends import (
    BackendUnavailable,
    available_backends,
    parse_backend_uri,
)
from repro.autotune.cache import TuningCache
from repro.autotune.store import migrate_store, ordered_cache_stats
from repro.autotune.search import EXECUTORS, STRATEGIES, ExecutorFallbackWarning
from repro.autotune.session import autotune
from repro.autotune.space import Configuration, SpaceOptions


def parse_sizes(pairs: Sequence[str]) -> Dict[str, int]:
    """Parse ``name=value`` problem-size pairs (shared with the service CLI)."""
    sizes: Dict[str, int] = {}
    for pair in pairs:
        name, sep, value = pair.partition("=")
        if not sep:
            raise ValueError(f"size must look like name=value, got {pair!r}")
        try:
            sizes[name.strip()] = int(value)
        except ValueError:
            raise ValueError(
                f"size value for {name!r} must be an integer, got {value!r}"
            ) from None
    return sizes


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.autotune",
        description="Empirically autotune a kernel's mapping on the machine models.",
        epilog="maintenance subcommands (dispatched before tuning arguments): "
        "'backends' lists the URI-selectable evaluation backends; "
        "'inspect-stages KERNEL' shows the staged compiler's per-stage "
        "timings and artifact fingerprints; "
        "'cache-stats --cache STORE' prints cache statistics; "
        "'cache-prune --cache STORE --max-entries N' drops the oldest entries; "
        "'cache-migrate SRC DST' converts between backends "
        "(PATH.json | dir:DIR | log:FILE); "
        "'trace FILE' renders a --trace capture; "
        "'history {list,show,compare,check} FILE' inspects a --history "
        "store and gates CI on perf regressions.",
    )
    parser.add_argument("kernel", nargs="?", help="registered kernel name")
    parser.add_argument(
        "--list-kernels", action="store_true", help="list tunable kernels and exit"
    )
    parser.add_argument(
        "--size",
        nargs="*",
        default=[],
        metavar="NAME=VALUE",
        help="problem-size overrides, e.g. --size m=256 n=256 k=256",
    )
    parser.add_argument(
        "--strategy",
        default="pruned",
        choices=sorted(STRATEGIES),
        help="search strategy (default: pruned)",
    )
    parser.add_argument(
        "--workers", type=int, default=1, help="parallel evaluation workers"
    )
    parser.add_argument(
        "--executor",
        default="thread",
        choices=EXECUTORS,
        help="worker kind for parallel evaluation (process escapes the GIL)",
    )
    parser.add_argument(
        "--cache",
        default=None,
        metavar="STORE",
        help="persistent cache store: PATH.json, dir:DIR (sharded), or log:FILE",
    )
    parser.add_argument(
        "--backend",
        default="model:",
        metavar="URI",
        help="evaluation backend: model: (default analytical pricing), "
        "measure-py:[warmup=..,repeat=..,trim=..] (execute the emitted Python, timed), "
        "measure-c:[cc=..] (compile + time the emitted C), or "
        "hybrid:model>measure-py?top=K (model prunes, measurement re-ranks); "
        "see the 'backends' subcommand",
    )
    parser.add_argument("--seed", type=int, default=0, help="search / input seed")
    parser.add_argument(
        "--check",
        action="store_true",
        help="spot-check each configuration through the interpreter "
        "(at the kernel's small verification size)",
    )
    parser.add_argument(
        "--top", type=int, default=5, help="show this many best configurations"
    )
    parser.add_argument(
        "--allow-no-scratchpad",
        action="store_true",
        help="let the tuner also consider disabling scratchpad staging",
    )
    parser.add_argument(
        "--threads",
        type=int,
        nargs="*",
        default=None,
        help="thread-per-block counts to explore (default: 64 128 256)",
    )
    parser.add_argument(
        "--blocks",
        type=int,
        nargs="*",
        default=None,
        help="thread-block counts to explore (default: 16 32 64)",
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="record a span trace of this tuning run and save it to FILE "
        "(inspect with 'python -m repro.autotune trace FILE')",
    )
    parser.add_argument(
        "--history",
        metavar="STORE",
        default=None,
        help="append one HistoryRecord for this request to a JSONL history "
        "file (inspect with 'python -m repro.autotune history list STORE')",
    )
    parser.add_argument(
        "--reuse-artifacts",
        action="store_true",
        help="share config-invariant compiler artifacts (affine analysis) "
        "with other requests in this process for the same program, binding "
        "and spec",
    )
    return parser


def trace_main(argv: Sequence[str]) -> int:
    """``trace FILE``: render a saved trace as a tree plus a hotspot table."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.autotune trace",
        description="Render a --trace capture: the span tree (request -> "
        "search -> candidate -> pass/measure) and a top-N self-time hotspot "
        "table.  Reads the canonical JSON save format or a JSONL export.",
    )
    parser.add_argument("file", metavar="FILE", help="trace file written by --trace")
    parser.add_argument(
        "--top", type=int, default=10, help="hotspot rows to show (default: 10)"
    )
    parser.add_argument(
        "--max-depth", type=int, default=None, help="clip the tree below this depth"
    )
    parser.add_argument(
        "--chrome",
        metavar="OUT",
        default=None,
        help="also export Chrome trace_event JSON (chrome://tracing, ui.perfetto.dev)",
    )
    parser.add_argument(
        "--jsonl",
        metavar="OUT",
        default=None,
        help="also export flattened JSONL (one span per line)",
    )
    args = parser.parse_args(argv)
    try:
        roots = trace.load_trace(args.file)
    except (OSError, ValueError, KeyError) as error:
        print(f"error: cannot read trace {args.file}: {error}", file=sys.stderr)
        return 2
    total_spans = sum(1 for _ in trace.iter_spans(roots))
    total_ms = sum(root.duration_ms for root in roots)
    print(f"trace {args.file}: {total_spans} spans, {total_ms:.3f} ms total")
    print(trace.render_tree(roots, max_depth=args.max_depth))
    print()
    print(f"hotspots (top {args.top} by self time):")
    print(trace.render_hotspots(roots, top=args.top))
    if args.chrome:
        with open(args.chrome, "w", encoding="utf-8") as handle:
            json.dump(trace.to_chrome_trace(roots), handle)
        print(f"chrome trace -> {args.chrome}")
    if args.jsonl:
        with open(args.jsonl, "w", encoding="utf-8") as handle:
            handle.write(trace.to_jsonl(roots))
        print(f"jsonl -> {args.jsonl}")
    return 0


def history_main(argv: Sequence[str]) -> int:
    """``history {list,show,compare,check} FILE``: the regression sentinel.

    ``list`` prints per-(kernel, variant, spec, backend) percentile rollups
    (``variant`` carries family parameters such as a distributed kernel's
    grid target, so kernel families stay distinct groups), ``show``
    the raw records, ``compare`` the current window of each group against
    its prior records, and ``check`` exits 1 when any group's winner time or
    evaluation count regressed beyond ``--threshold`` — the CI gate.
    """
    from repro.telemetry.history import (
        HistoryStore,
        check_history,
        compare_windows,
        parse_threshold,
        rollup,
    )

    parser = argparse.ArgumentParser(
        prog="python -m repro.autotune history",
        description="Inspect a persistent tuning history (JSONL of one "
        "HistoryRecord per completed request) and gate on regressions.",
    )
    sub = parser.add_subparsers(dest="subcommand", required=True)
    for name, description in (
        ("list", "per-(kernel, variant, spec, backend) percentile rollups"),
        ("show", "raw history records, oldest first"),
        ("compare", "current window of each group vs its prior records"),
        ("check", "exit 1 when the current window regressed (the CI gate)"),
    ):
        command = sub.add_parser(name, help=description)
        command.add_argument("file", metavar="FILE", help="history JSONL file")
        if name == "show":
            command.add_argument(
                "--last", type=int, default=20, help="records to show (default: 20)"
            )
        if name in ("compare", "check"):
            command.add_argument(
                "--window",
                type=int,
                default=1,
                help="records per group forming the current window (default: 1)",
            )
        if name == "check":
            command.add_argument(
                "--threshold",
                default="10%",
                help="tolerated regression, e.g. '5%%' or 0.05 (default: 10%%)",
            )
    args = parser.parse_args(argv)

    store = HistoryStore(args.file)
    records = store.records()
    if store._corrupt_lines:
        print(
            f"warning: skipped {store._corrupt_lines} corrupt history line(s)",
            file=sys.stderr,
        )
    if not records:
        print(f"history {args.file}: no records", file=sys.stderr)
        return 0 if args.subcommand in ("list", "show") else 2

    if args.subcommand == "list":
        print(f"history {args.file}: {len(records)} records")
        header = (
            f"{'kernel':<16} {'variant':<22} {'spec':<18} {'backend':<28} "
            f"{'runs':>4} {'hits':>4} "
            f"{'best_ms':>9} {'p50_ms':>9} {'p90_ms':>9} {'evals':>6} {'rho':>5}"
        )
        print(header)
        for row in rollup(records):
            rho = f"{row['mean_rho']:.2f}" if row["mean_rho"] is not None else "-"
            variant = row.get("variant") or "-"
            print(
                f"{row['kernel']:<16} {variant:<22} {row['spec']:<18} "
                f"{row['backend']:<28} "
                f"{row['requests']:>4} {row['cache_hits']:>4} "
                f"{row['best_ms']:>9.3f} {row['p50_ms']:>9.3f} {row['p90_ms']:>9.3f} "
                f"{row['mean_evaluations']:>6.1f} {rho:>5}"
            )
        return 0

    if args.subcommand == "show":
        for record in records[-args.last:]:
            rho = f" rho={record.rho:.2f}" if record.rho is not None else ""
            trace_id = f" trace={record.trace_id}" if record.trace_id else ""
            job = f" job={record.job_id}" if record.job_id else ""
            variant = f" ({record.variant})" if record.variant else ""
            print(
                f"{record.kernel}{variant} [{record.backend}] "
                f"{'hit ' if record.cache_hit else 'tune'} "
                f"winner={record.winner_ms:.3f}ms ({record.winner_kind}) "
                f"evals={record.evaluations} wall={record.wall_s:.3f}s "
                f"source={record.source}{rho}{trace_id}{job}"
            )
        return 0

    if args.subcommand == "compare":
        print(f"history {args.file}: window={args.window} over {len(records)} records")
        for row in compare_windows(records, window=args.window):
            if row["delta_pct"] is None:
                delta = "new (no prior window)"
            else:
                delta = (
                    f"{row['delta_pct']:+.1f}% "
                    f"({row['prior_best_ms']:.3f} -> {row['current_best_ms']:.3f} ms)"
                )
            variant = row.get("variant") or "-"
            print(
                f"{row['kernel']:<16} {variant:<22} {row['spec']:<18} "
                f"{row['backend']:<28} {delta}"
            )
        return 0

    # check: the CI gate
    try:
        parse_threshold(args.threshold)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    failures, rows = check_history(
        records, window=args.window, threshold=args.threshold
    )
    compared = sum(1 for row in rows if row["delta_pct"] is not None)
    if not failures:
        print(
            f"history check passed: {compared} group(s) compared, "
            f"{len(rows) - compared} new, threshold {args.threshold}"
        )
        return 0
    print(
        f"history check FAILED: {len(failures)} group(s) regressed beyond "
        f"{args.threshold}",
        file=sys.stderr,
    )
    for failure in failures:
        variant = f" ({failure['variant']})" if failure.get("variant") else ""
        for reason in failure["reasons"]:
            print(
                f"  {failure['kernel']}{variant} [{failure['backend']}]: {reason}",
                file=sys.stderr,
            )
    return 1


def _cache_tools_parser(command: str) -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=f"python -m repro.autotune {command}",
        description="Inspect or bound a persistent tuning cache.",
    )
    parser.add_argument(
        "--cache",
        required=True,
        metavar="STORE",
        help="cache store: PATH.json, dir:DIR (sharded), or log:FILE",
    )
    if command == "cache-prune":
        parser.add_argument(
            "--max-entries",
            type=int,
            required=True,
            help="keep at most this many (newest) entries",
        )
    return parser


def cache_stats_main(argv: Sequence[str]) -> int:
    args = _cache_tools_parser("cache-stats").parse_args(argv)
    try:
        cache = TuningCache(args.cache)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    stats = cache.stats()
    # hit/miss counters are per-instance and would always read 0 here; the
    # live numbers come from a running session or the server's /cache/stats
    stats.pop("hits", None)
    stats.pop("misses", None)
    print(f"cache {args.cache}")
    for field, value in ordered_cache_stats(stats):
        print(f"  {field}: {value}")
    kinds = cache.measurement_kind_counts()
    rendered = " ".join(f"{kind}={kinds[kind]}" for kind in sorted(kinds)) or "none"
    print(f"  kinds: {rendered}")
    return 0


def backends_main(argv: Sequence[str]) -> int:
    """``backends``: list the registered evaluation backends and availability."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.autotune backends",
        description="List the URI-selectable evaluation backends "
        "(how a candidate configuration gets a cost).",
    )
    parser.parse_args(argv)
    examples = {
        "model": "model:",
        "measure-py": "measure-py:warmup=1,repeat=5,trim=0.2",
        "measure-c": "measure-c:cc=gcc,repeat=5",
        "hybrid": "hybrid:model>measure-py?top=8",
    }
    for scheme in available_backends():
        # construct through the parser — the same path --backend takes — so
        # registered third-party backends with mandatory arguments degrade
        # to a listed-but-unexemplified row instead of a traceback.  Probe
        # availability from the *default* construction, not the example: the
        # example may pin e.g. cc=gcc while the default finds clang fine.
        example = examples.get(scheme, f"{scheme}:")
        backend = None
        for uri in (f"{scheme}:", example):
            try:
                backend = parse_backend_uri(uri)
                break
            except (ValueError, TypeError):
                continue
        if backend is None:
            print(f"{scheme:12s} (registered; no default construction)")
            continue
        reason = backend.availability()
        status = "available" if reason is None else f"unavailable: {reason}"
        print(f"{scheme:12s} {status}")
        print(f"{'':12s}   {backend.describe()}")
        print(f"{'':12s}   e.g. --backend '{example}'")
    return 0


def cache_prune_main(argv: Sequence[str]) -> int:
    args = _cache_tools_parser("cache-prune").parse_args(argv)
    if args.max_entries < 0:
        print("error: --max-entries cannot be negative", file=sys.stderr)
        return 2
    try:
        cache = TuningCache(args.cache)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    dropped = cache.prune(args.max_entries)
    print(f"pruned {dropped} entries; {len(cache)} remain in {args.cache}")
    return 0


def cache_migrate_main(argv: Sequence[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.autotune cache-migrate",
        description="Convert a tuning cache between persistence backends, "
        "preserving entry content and insertion order (prune's notion of "
        "'oldest' survives the move).",
    )
    parser.add_argument(
        "src", metavar="SRC", help="source store: PATH.json, dir:DIR, or log:FILE"
    )
    parser.add_argument(
        "dst", metavar="DST", help="destination store: PATH.json, dir:DIR, or log:FILE"
    )
    parser.add_argument(
        "--force",
        action="store_true",
        help="overwrite a non-empty destination store",
    )
    args = parser.parse_args(argv)
    try:
        outcome = migrate_store(args.src, args.dst, force=args.force)
    except (ValueError, RuntimeError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(
        f"migrated {outcome['entries']} entries: "
        f"{outcome['src']} ({outcome['src_backend']}) -> "
        f"{outcome['dst']} ({outcome['dst_backend']})"
    )
    return 0


def inspect_stages_main(argv: Sequence[str]) -> int:
    """``inspect-stages KERNEL``: per-stage timings and artifact fingerprints.

    Compiles the kernel once through a staged
    :class:`~repro.compiler.CompilationSession`, then replays the chosen
    mapping from the tiling stage — the table shows the config-invariant
    ``analysis`` stage executing once for both compilations while the
    config-dependent stages ran twice.
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro.autotune inspect-stages",
        description="Show per-stage timings and artifact fingerprints of the "
        "staged compiler for one kernel (one cold compile + one replay).",
    )
    parser.add_argument("kernel", help="registered kernel name")
    parser.add_argument(
        "--size",
        nargs="*",
        default=[],
        metavar="NAME=VALUE",
        help="problem-size overrides, e.g. --size m=256 n=256 k=256",
    )
    args = parser.parse_args(argv)
    try:
        kernel = get_kernel(args.kernel)
        sizes = parse_sizes(args.size)
        program = kernel.build(**sizes)
    except (KeyError, ValueError) as error:
        message = error.args[0] if error.args else str(error)
        print(f"error: {message}", file=sys.stderr)
        return 2

    # The lower-py terminal pass rides along so its timing shows in the
    # table (it runs once, during the base compile — replay stops at
    # mapping, mirroring what a tuning request does per candidate).
    session = CompilationSession(program, passes=(*DEFAULT_PASSES, "lower-py"))
    mapped = session.compile()
    config = Configuration.from_options(session.options, mapped.tile_sizes)
    session.replay(from_stage="tiling", config=config)

    geometry = mapped.geometry
    tiles = ",".join(f"{k}={v}" for k, v in sorted(mapped.tile_sizes.items()))
    print(
        f"kernel {args.kernel}: blocks={geometry.num_blocks} "
        f"threads={geometry.threads_per_block} tiles[{tiles}] "
        f"shared={geometry.shared_memory_per_block_bytes}B"
    )
    print(f"session {session.base_fingerprint[:12]} (program+params+spec identity)")
    print(f"{'stage':<12} {'kind':<10} {'runs':>4} {'total_ms':>9} {'mean_ms':>8}  fingerprint")
    for row in session.stage_report():
        kind = "config" if row["config_dependent"] else "invariant"
        print(
            f"{row['stage']:<12} {kind:<10} {row['runs']:>4} "
            f"{row['total_ms']:>9.2f} {row['mean_ms']:>8.2f}  {row['fingerprint']}"
        )
    report = {row["stage"]: row["runs"] for row in session.stage_report()}
    print(
        f"replay reused the frozen analysis artifact: analysis ran "
        f"{report.get('analysis', 0)}x for 2 end-to-end compilations "
        f"(tiling ran {report.get('tiling', 0)}x)"
    )
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "inspect-stages":
        return inspect_stages_main(argv[1:])
    if argv and argv[0] == "backends":
        return backends_main(argv[1:])
    if argv and argv[0] == "cache-stats":
        return cache_stats_main(argv[1:])
    if argv and argv[0] == "cache-prune":
        return cache_prune_main(argv[1:])
    if argv and argv[0] == "cache-migrate":
        return cache_migrate_main(argv[1:])
    if argv and argv[0] == "trace":
        return trace_main(argv[1:])
    if argv and argv[0] == "history":
        return history_main(argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_kernels:
        for name in available_kernels():
            kernel = get_kernel(name)
            sizes = ", ".join(f"{k}={v}" for k, v in kernel.default_sizes.items())
            family = "" if kernel.grid is None else f" [distributed: {kernel.grid.name}]"
            print(f"{name:16s} {kernel.description}  (defaults: {sizes}){family}")
        return 0
    if not args.kernel:
        parser.error("a kernel name is required (or --list-kernels)")

    try:
        kernel = get_kernel(args.kernel)
        sizes = parse_sizes(args.size)
        program = kernel.build(**sizes)
    except (KeyError, ValueError) as error:
        message = error.args[0] if error.args else str(error)
        print(f"error: {message}", file=sys.stderr)
        return 2

    defaults = SpaceOptions()
    space_options = SpaceOptions(
        thread_counts=tuple(args.threads) if args.threads else defaults.thread_counts,
        block_counts=tuple(args.blocks) if args.blocks else defaults.block_counts,
        scratchpad_choices=(True, False) if args.allow_no_scratchpad else (True,),
    )
    try:
        cache = TuningCache(args.cache) if args.cache else None
        backend = parse_backend_uri(args.backend)  # typo → usage error early
        if kernel.grid is not None and not backend.supports_distributed:
            raise ValueError(
                f"backend {args.backend!r} cannot price distributed (PE-grid) "
                f"mappings; tune {args.kernel!r} under the model: backend"
            )
    except ValueError as error:  # e.g. an unknown store or backend scheme
        print(f"error: {error}", file=sys.stderr)
        return 2
    collector = trace.start_trace() if args.trace else None
    try:
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always", RuntimeWarning)
            with counting_compiles() as compiles:
                try:
                    report = autotune(
                        program,
                        strategy=args.strategy,
                        max_workers=args.workers,
                        executor=args.executor,
                        cache=cache,
                        seed=args.seed,
                        space_options=space_options,
                        check_correctness=args.check,
                        check_program=kernel.build_check() if args.check else None,
                        backend=args.backend,
                        history=args.history,
                        artifact_cache=True if args.reuse_artifacts else None,
                        grid=kernel.grid,
                    )
                except BackendUnavailable as error:
                    print(f"error: {error}", file=sys.stderr)
                    return 3
    finally:
        if collector is not None:
            trace.stop_trace()
    if collector is not None:
        trace.save_trace(
            args.trace, collector.roots, meta={"kernel": args.kernel, "seed": args.seed}
        )
        total = sum(1 for _ in trace.iter_spans(collector.roots))
        print(f"trace: {total} spans -> {args.trace}")
    for warning in caught:  # surface e.g. the process→thread pickle fallback
        print(f"warning: {warning.message}", file=sys.stderr)
    fell_back_to_threads = any(
        issubclass(w.category, ExecutorFallbackWarning) for w in caught
    )

    print(report.summary())
    # With the process executor, evaluation compiles happen in worker
    # processes and never touch this process's counter — flag that so a cold
    # run is not mistaken for a warm cache hit.
    suffix = ""
    if (
        args.executor == "process"
        and args.workers > 1
        and not report.from_cache
        and not fell_back_to_threads
    ):
        suffix = " (+ evaluation compiles in worker processes)"
    print(f"pipeline compiles this call: {compiles.count}{suffix}")
    if cache is not None:
        print(f"cache: {cache.stats()} at {cache.uri}")
    # Rank results of the winning provenance first: under a hybrid backend,
    # measured milliseconds and model milliseconds are not comparable, so a
    # model-priced survivor must not appear to outrank the measured winner.
    best_kind = report.best.measurement_kind
    ranked = sorted(
        (r for r in report.results if r.feasible),
        key=lambda r: (r.measurement_kind != best_kind, r.time_ms, r.configuration.key()),
    )
    print(f"top {min(args.top, len(ranked))} of {len(report.results)} evaluated:")
    for result in ranked[: args.top]:
        config = result.configuration
        tiles = ",".join(f"{k}={v}" for k, v in config.tile_sizes)
        checked = "" if result.correct is None else f" correct={result.correct}"
        kind = result.measurement_kind
        provenance = "" if kind == "model" else f" [{kind}]"
        extras = "".join(f" {k}={v}" for k, v in config.extras)
        print(
            f"  {result.time_ms:9.3f} ms  blocks={config.num_blocks:<4d} "
            f"threads={config.threads_per_block:<4d} tiles[{tiles}] "
            f"spm={'on' if config.use_scratchpad else 'off'}{extras}{checked}{provenance}"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
