"""The measured-Python backend: execute the ``lower-py`` artifact and time it.

The paper's tuning loop *runs* every shortlisted mapping and keeps the
fastest measured one.  This backend reproduces that method: each candidate
replays through a derived session whose pass list ends in a lowering
terminal pass (so the executable-Python source is a real, fingerprinted,
``STAGE_COUNTER``-visible stage artifact), the source is compiled with
``exec``, and the kernel is run on seeded inputs with ``warmup`` unrecorded
executions followed by ``repeat`` timed ones.  The reported time is the
outlier-trimmed median of the timed runs — wall-clock measurement on a
multi-tenant host is noisy, and a trimmed median is robust against the odd
scheduler hiccup without hiding systematic cost.

Two fast-path knobs (URI options):

* ``vectorize=auto|on|off`` (default ``auto``) picks the ``lower-py-vec``
  terminal pass — eligible innermost loops lowered to numpy expressions, the
  same results several times faster — falling back to scalar ``lower-py``
  only on ``off``.  ``vectorize`` fingerprints: scalar and vectorised wall
  times are different distributions and must never share a cache entry.
* ``workers=N`` (default 1) advertises that ``N`` candidates may be measured
  concurrently: warmup runs overlap freely across threads while every
  *timed* section serializes under :data:`~repro.autotune.backends.base.
  TIMED_SECTION_LOCK`, so replay + exec + warmup (the bulk of a candidate's
  cost) parallelise without timed runs contending for the cores.  ``workers``
  does **not** fingerprint — serialized timed sections keep the measured
  numbers the same.

Measured milliseconds are Python-interpreter wall time, **not** modelled GPU
time: comparable against other measured results, meaningless against
``model:`` numbers.  That is why the measurement ``kind`` travels with every
result and why the request fingerprint includes the backend identity.
"""

from __future__ import annotations

import statistics
import time
from typing import Any, Dict, List, Mapping, Optional

import numpy as np

from repro.compiler import CompilationSession
from repro.machine.spec import GPUSpec

from repro.autotune.backends.base import (
    TIMED_SECTION_LOCK,
    EvaluationBackend,
    Measurement,
    parse_timing_options,
    register_backend,
    validate_timing_knobs,
)

#: accepted values of the ``vectorize=`` URI option
VECTORIZE_CHOICES = ("auto", "on", "off")


def trimmed_median(samples: List[float], trim: float) -> float:
    """Median after dropping ``trim`` (fraction) from each end of the sorted samples."""
    if not samples:
        raise ValueError("cannot take the median of zero samples")
    ordered = sorted(samples)
    drop = int(len(ordered) * trim)
    kept = ordered[drop : len(ordered) - drop] or ordered
    return statistics.median(kept)


@register_backend
class MeasuredPythonBackend(EvaluationBackend):
    """Execute the emitted Python of each mapping on seeded inputs, timed."""

    scheme = "measure-py"
    kind = "measured-py"

    #: measured wall time depends on the input seed, so it fingerprints
    deterministic = False
    measures_wall_clock = True

    def __init__(
        self,
        warmup: int = 1,
        repeat: int = 5,
        trim: float = 0.2,
        workers: int = 1,
        vectorize: str = "auto",
    ) -> None:
        super().__init__()
        validate_timing_knobs(warmup, repeat, trim)
        if workers < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        if vectorize not in VECTORIZE_CHOICES:
            raise ValueError(
                f"vectorize must be one of {', '.join(VECTORIZE_CHOICES)}, "
                f"got {vectorize!r}"
            )
        self.warmup = warmup
        self.repeat = repeat
        self.trim = trim
        self.workers = workers
        self.vectorize = vectorize
        self._lowering_session: Optional[CompilationSession] = None

    @classmethod
    def from_options(cls, options: Mapping[str, str]) -> "MeasuredPythonBackend":
        timing = parse_timing_options(
            cls.scheme, options, extra=("workers", "vectorize")
        )
        try:
            workers = int(options.get("workers", 1))
        except ValueError as error:
            raise ValueError(f"backend {cls.scheme!r}: {error}") from None
        return cls(
            workers=workers, vectorize=options.get("vectorize", "auto"), **timing
        )

    @property
    def _stage(self) -> str:
        """The lowering terminal pass this request measures."""
        return "lower-py" if self.vectorize == "off" else "lower-py-vec"

    @property
    def measurement_workers(self) -> int:
        return self.workers

    # -- lifecycle ---------------------------------------------------------------
    def prepare(
        self,
        session: CompilationSession,
        spec: GPUSpec,
        seed: int = 0,
        reuse_analysis: bool = True,
    ) -> None:
        super().prepare(session, spec, seed=seed, reuse_analysis=reuse_analysis)
        # A derived session appends the lowering terminal pass while adopting
        # the shared session's frozen artifacts — affine analysis still runs
        # once per request, however many candidates get measured.
        if self._stage in session.stage_names:
            self._lowering_session = session
        else:
            self._lowering_session = session.with_passes(
                (*session.stage_names, self._stage)
            )

    # -- measurement -------------------------------------------------------------
    def _seeded_arrays(self, program) -> Dict[str, np.ndarray]:
        rng = np.random.default_rng(self._seed)
        arrays: Dict[str, np.ndarray] = {}
        for array in program.arrays.values():
            shape = tuple(int(extent) for extent in array.shape)
            if array.is_local:
                arrays[array.name] = np.zeros(shape)
            else:
                arrays[array.name] = rng.random(shape)
        return arrays

    def _measure(self, configuration: Any) -> Measurement:
        self._require_prepared()
        session = self._lowering_session
        if session is None:
            raise RuntimeError("backend was not prepared")
        stage = self._stage
        # Only the replay sits in measure()'s ValueError→infeasible net: a
        # ValueError *here* is the compiler refusing the mapping.  Failures
        # past this point are codegen/runtime infrastructure bugs and must
        # surface loudly, never masquerade as an "infeasible" candidate.
        artifacts = session.replay_artifacts(config=configuration, upto=stage)
        source = artifacts[stage].value
        mapped = artifacts["mapping"].value

        try:
            namespace: Dict[str, Any] = {}
            exec(compile(source, f"<{stage}:{mapped.program.name}>", "exec"), namespace)
            kernel = namespace["kernel"]
            pristine = self._seeded_arrays(mapped.program)
            params = dict(mapped.param_binding)

            # warmups overlap freely across measurement threads; only the
            # timed loop serializes, so concurrent candidates never distort
            # each other's recorded numbers
            for _ in range(self.warmup):
                arrays = {name: value.copy() for name, value in pristine.items()}
                kernel(arrays, params)
            times_ms: List[float] = []
            with TIMED_SECTION_LOCK:
                for _ in range(self.repeat):
                    arrays = {name: value.copy() for name, value in pristine.items()}
                    started = time.perf_counter()
                    kernel(arrays, params)
                    times_ms.append(1e3 * (time.perf_counter() - started))
        except ValueError as error:
            raise RuntimeError(
                f"emitted Python kernel for {mapped.program.name!r} failed at "
                f"runtime: {error}"
            ) from error
        time_ms = trimmed_median(times_ms, self.trim)

        spec = self._spec
        metadata: Dict[str, Any] = {
            "cycles": time_ms * 1e3 * spec.cycles_per_us if spec else 0.0,
            "shared_bytes_per_block": mapped.geometry.shared_memory_per_block_bytes,
            "warmup": self.warmup,
            "repeat": self.repeat,
            "trim": self.trim,
            "times_ms": times_ms,
            "source_lines": len(source.splitlines()),
            "lowering": stage,
        }
        return Measurement(time_ms=time_ms, kind=self.kind, metadata=metadata)

    # -- identity ----------------------------------------------------------------
    def signature(self) -> Dict[str, Any]:
        # workers is absent by design: timed sections serialize, so the
        # numbers do not depend on it.  vectorize is present: scalar and
        # vectorised artifacts time differently.
        return {
            "scheme": self.scheme,
            "warmup": self.warmup,
            "repeat": self.repeat,
            "trim": self.trim,
            "vectorize": self.vectorize,
        }

    def uri(self) -> str:
        options = [f"warmup={self.warmup}", f"repeat={self.repeat}", f"trim={self.trim}"]
        if self.vectorize != "auto":
            options.append(f"vectorize={self.vectorize}")
        if self.workers != 1:
            options.append(f"workers={self.workers}")
        return f"{self.scheme}:{','.join(options)}"

    def describe(self) -> str:
        return (
            f"execute the {self._stage} stage artifact on seeded inputs "
            f"(warmup={self.warmup}, repeat={self.repeat}, trimmed median)"
        )
