"""The measured-C backend: compile the emitted C harness and time the binary.

The closest this repo gets to the paper's actual loop (nvcc-compiled CUDA
timed on the 8800 GTX): each candidate's mapped program is emitted as a
self-contained C99 timing harness (:func:`repro.codegen.emit_c_harness` —
the same loop structure, guards and scratchpad copy nests the ``emit`` pass
renders, but compilable), built with the host toolchain at ``-O2``, and run;
the binary itself performs the warmup + repeat loop and reports one
nanosecond wall time per timed run, which this backend reduces to an
outlier-trimmed median.

Hosts without a C toolchain get a clean :class:`~repro.autotune.backends.
BackendUnavailable` at :meth:`prepare` time — before any tuning work starts —
never a per-candidate crash.  Discovery is :func:`repro.codegen.toolchain.
find_c_compiler` (``cc=`` URI option → ``$CC`` → ``cc``/``gcc``/``clang``).
"""

from __future__ import annotations

import subprocess
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional

from repro.codegen.emit_c_exec import emit_c_harness
from repro.codegen.toolchain import find_c_compiler
from repro.compiler import CompilationSession
from repro.machine.spec import GPUSpec
from repro.telemetry import trace

from repro.autotune.backends.base import (
    BackendUnavailable,
    EvaluationBackend,
    Measurement,
    parse_timing_options,
    register_backend,
    validate_timing_knobs,
)
from repro.autotune.backends.measured_py import trimmed_median

#: ceiling on one candidate's compile or run, so a pathological mapping
#: cannot wedge a tuning worker forever
SUBPROCESS_TIMEOUT_S = 120.0


@register_backend
class MeasuredCBackend(EvaluationBackend):
    """Compile each mapping's C harness with the host toolchain and time it."""

    scheme = "measure-c"
    kind = "measured-c"

    deterministic = False
    measures_wall_clock = True

    def __init__(
        self,
        cc: Optional[str] = None,
        warmup: int = 1,
        repeat: int = 5,
        trim: float = 0.2,
    ) -> None:
        super().__init__()
        validate_timing_knobs(warmup, repeat, trim)
        self.cc = cc
        self.warmup = warmup
        self.repeat = repeat
        self.trim = trim
        self._compiler: Optional[str] = None

    @classmethod
    def from_options(cls, options: Mapping[str, str]) -> "MeasuredCBackend":
        timing = parse_timing_options(cls.scheme, options, extra=("cc",))
        return cls(cc=options.get("cc"), **timing)

    # -- lifecycle ---------------------------------------------------------------
    def availability(self) -> Optional[str]:
        if find_c_compiler(self.cc) is None:
            wanted = self.cc or "$CC, cc, gcc, clang"
            return f"no C toolchain found (looked for: {wanted})"
        return None

    def prepare(
        self,
        session: CompilationSession,
        spec: GPUSpec,
        seed: int = 0,
        reuse_analysis: bool = True,
    ) -> None:
        reason = self.availability()
        if reason is not None:
            raise BackendUnavailable(f"backend {self.uri()!r} is unavailable: {reason}")
        super().prepare(session, spec, seed=seed, reuse_analysis=reuse_analysis)
        self._compiler = find_c_compiler(self.cc)

    # -- measurement -------------------------------------------------------------
    def _measure(self, configuration: Any) -> Measurement:
        session, spec = self._require_prepared()
        if self._compiler is None:  # re-prepared lazily after pickling
            self._compiler = find_c_compiler(self.cc)
            if self._compiler is None:
                raise BackendUnavailable(
                    f"backend {self.uri()!r} lost its toolchain after pickling"
                )
        mapped = session.replay(from_stage="tiling", config=configuration)
        source = emit_c_harness(
            mapped.program,
            param_values=mapped.param_binding,
            seed=self._seed,
            warmup=self.warmup,
            repeat=self.repeat,
        )
        with tempfile.TemporaryDirectory(prefix="repro-measure-c-") as workdir:
            c_path = Path(workdir) / "kernel.c"
            bin_path = Path(workdir) / "kernel"
            c_path.write_text(source)
            compile_cmd = [self._compiler, "-O2", "-o", str(bin_path), str(c_path), "-lm"]
            try:
                compile_started = time.perf_counter()
                compiled = subprocess.run(
                    compile_cmd, capture_output=True, text=True, timeout=SUBPROCESS_TIMEOUT_S
                )
                compile_s = time.perf_counter() - compile_started
                # provenance on the enclosing measure span: how much of this
                # candidate's wall time was the C toolchain, not the kernel
                trace.annotate(compile_s=round(compile_s, 6), cc=self._compiler)
                if compiled.returncode != 0:
                    raise RuntimeError(
                        f"C compilation failed ({' '.join(compile_cmd)}):\n{compiled.stderr}"
                    )
                ran = subprocess.run(
                    [str(bin_path)], capture_output=True, text=True, timeout=SUBPROCESS_TIMEOUT_S
                )
            except subprocess.TimeoutExpired as error:
                # the bounded-time promise: a pathological mapping errors
                # cleanly like every other infrastructure failure here
                raise RuntimeError(
                    f"measure-c candidate exceeded {SUBPROCESS_TIMEOUT_S:.0f}s: {error}"
                ) from None
            if ran.returncode != 0:
                raise RuntimeError(
                    f"measured binary exited {ran.returncode}: {ran.stderr.strip()}"
                )
        # Parse outside the ValueError→infeasible net of measure(): garbage on
        # the harness's stdout is an infrastructure failure to surface loudly,
        # never a silently "infeasible" mapping.
        try:
            times_ms: List[float] = [
                int(line) / 1e6 for line in ran.stdout.split() if line.strip()
            ]
        except ValueError:
            raise RuntimeError(
                f"measured binary produced non-numeric timing output: {ran.stdout!r}"
            ) from None
        if len(times_ms) != self.repeat:
            raise RuntimeError(
                f"measured binary reported {len(times_ms)} samples, expected {self.repeat}"
            )
        time_ms = trimmed_median(times_ms, self.trim)
        metadata: Dict[str, Any] = {
            "cycles": time_ms * 1e3 * spec.cycles_per_us,
            "shared_bytes_per_block": mapped.geometry.shared_memory_per_block_bytes,
            "compiler": self._compiler,
            "warmup": self.warmup,
            "repeat": self.repeat,
            "trim": self.trim,
            "times_ms": times_ms,
            "checksum": ran.stderr.strip(),
            "source_lines": len(source.splitlines()),
        }
        return Measurement(time_ms=time_ms, kind=self.kind, metadata=metadata)

    # -- identity ----------------------------------------------------------------
    def signature(self) -> Dict[str, Any]:
        # the compiler *request* (cc=...) fingerprints; the resolved absolute
        # path does not — two hosts with gcc at different paths share entries
        return {
            "scheme": self.scheme,
            "cc": self.cc,
            "warmup": self.warmup,
            "repeat": self.repeat,
            "trim": self.trim,
        }

    def uri(self) -> str:
        options = [f"warmup={self.warmup}", f"repeat={self.repeat}", f"trim={self.trim}"]
        if self.cc:
            options.insert(0, f"cc={self.cc}")
        return f"{self.scheme}:{','.join(options)}"

    def describe(self) -> str:
        compiler = find_c_compiler(self.cc)
        status = compiler if compiler else "UNAVAILABLE: no toolchain"
        return f"compile + time the emitted C harness ({status})"
