"""The measured-C backend: compile the emitted C harness and time the binary.

The closest this repo gets to the paper's actual loop (nvcc-compiled CUDA
timed on the 8800 GTX): each candidate's mapped program is emitted as a
self-contained C99 timing harness (:func:`repro.codegen.emit_c_harness` —
the same loop structure, guards and scratchpad copy nests the ``emit`` pass
renders, but compilable), built with the host toolchain at ``-O2``, and run;
the binary itself performs the warmup + repeat loop and reports one
nanosecond wall time per timed run, which this backend reduces to an
outlier-trimmed median.

The source is emitted with *canonical* defaults — warmup/repeat/seed travel
as ``argv``, never baked into the text — so the compiled binary is a pure
function of the mapped program, and a :class:`~repro.codegen.compile_cache.
CompileCache` (on by default; ``cache=off`` restores throwaway tempdir
builds, ``cache=DIR`` relocates, ``cache_limit=N`` bounds the LRU) lets warm
re-requests and knob-only-different candidates share one ``cc`` invocation —
across threads, processes and tuning services.

A candidate whose harness fails to *compile* is an infeasible measurement
(``Measurement.metadata["compiler_stderr"]`` carries the truncated
diagnostics), not a crashed request: one pathological mapping must never
abort a tune.  Hosts without a C toolchain still get a clean
:class:`~repro.autotune.backends.BackendUnavailable` at :meth:`prepare`
time.  Discovery is :func:`repro.codegen.toolchain.find_c_compiler`
(``cc=`` URI option → ``$CC`` → ``cc``/``gcc``/``clang``).
"""

from __future__ import annotations

import subprocess
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional

from repro.codegen.compile_cache import (
    DEFAULT_CAPACITY,
    CompileCache,
    binary_key,
    open_compile_cache,
)
from repro.codegen.emit_c_exec import emit_c_harness
from repro.codegen.toolchain import find_c_compiler
from repro.compiler import CompilationSession
from repro.machine.spec import GPUSpec
from repro.telemetry import trace

from repro.autotune.backends.base import (
    BackendUnavailable,
    EvaluationBackend,
    Measurement,
    parse_timing_options,
    register_backend,
    validate_timing_knobs,
)
from repro.autotune.backends.measured_py import trimmed_median

#: ceiling on one candidate's compile or run, so a pathological mapping
#: cannot wedge a tuning worker forever
SUBPROCESS_TIMEOUT_S = 120.0

#: flags every harness is built with — part of the compile-cache key
CFLAGS = ("-O2", "-lm")

#: how much compiler stderr an infeasible measurement carries (the tail —
#: that is where cc puts the actual error)
STDERR_LIMIT = 2000


class CompilationFailed(RuntimeError):
    """``cc`` rejected a candidate's harness (carries the full stderr)."""

    def __init__(self, command: List[str], stderr: str) -> None:
        super().__init__(f"C compilation failed ({' '.join(command)})")
        self.command = command
        self.stderr = stderr


@register_backend
class MeasuredCBackend(EvaluationBackend):
    """Compile each mapping's C harness with the host toolchain and time it."""

    scheme = "measure-c"
    kind = "measured-c"

    deterministic = False
    measures_wall_clock = True

    def __init__(
        self,
        cc: Optional[str] = None,
        warmup: int = 1,
        repeat: int = 5,
        trim: float = 0.2,
        cache: Optional[str] = None,
        cache_limit: int = DEFAULT_CAPACITY,
    ) -> None:
        super().__init__()
        validate_timing_knobs(warmup, repeat, trim)
        self.cc = cc
        self.warmup = warmup
        self.repeat = repeat
        self.trim = trim
        self.cache_spec = cache
        self.cache_limit = cache_limit
        self._cache: Optional[CompileCache] = open_compile_cache(cache, cache_limit)
        self._compiler: Optional[str] = None

    @classmethod
    def from_options(cls, options: Mapping[str, str]) -> "MeasuredCBackend":
        timing = parse_timing_options(
            cls.scheme, options, extra=("cc", "cache", "cache_limit")
        )
        try:
            cache_limit = int(options.get("cache_limit", DEFAULT_CAPACITY))
        except ValueError as error:
            raise ValueError(f"backend {cls.scheme!r}: {error}") from None
        return cls(
            cc=options.get("cc"),
            cache=options.get("cache"),
            cache_limit=cache_limit,
            **timing,
        )

    # -- lifecycle ---------------------------------------------------------------
    def availability(self) -> Optional[str]:
        if find_c_compiler(self.cc) is None:
            wanted = self.cc or "$CC, cc, gcc, clang"
            return f"no C toolchain found (looked for: {wanted})"
        return None

    def prepare(
        self,
        session: CompilationSession,
        spec: GPUSpec,
        seed: int = 0,
        reuse_analysis: bool = True,
    ) -> None:
        reason = self.availability()
        if reason is not None:
            raise BackendUnavailable(f"backend {self.uri()!r} is unavailable: {reason}")
        super().prepare(session, spec, seed=seed, reuse_analysis=reuse_analysis)
        self._compiler = find_c_compiler(self.cc)

    # -- measurement -------------------------------------------------------------
    def _measure(self, configuration: Any) -> Measurement:
        session, spec = self._require_prepared()
        if self._compiler is None:  # re-prepared lazily after pickling
            self._compiler = find_c_compiler(self.cc)
            if self._compiler is None:
                raise BackendUnavailable(
                    f"backend {self.uri()!r} lost its toolchain after pickling"
                )
        mapped = session.replay(from_stage="tiling", config=configuration)
        # knobs go through argv, so the source — and hence the cache key and
        # the compiled binary — depends only on the program and its binding
        source = emit_c_harness(mapped.program, param_values=mapped.param_binding)
        try:
            if self._cache is not None:
                key = binary_key(source, self._compiler, " ".join(CFLAGS))
                bin_path, outcome = self._cache.get_or_compile(
                    key, lambda target: self._compile(source, target)
                )
                trace.annotate(compile_cache=outcome, cc=self._compiler)
                ran = self._run_binary(bin_path)
            else:
                with tempfile.TemporaryDirectory(prefix="repro-measure-c-") as workdir:
                    bin_path = Path(workdir) / "kernel"
                    self._compile(source, bin_path)
                    trace.annotate(compile_cache="off", cc=self._compiler)
                    ran = self._run_binary(bin_path)
        except CompilationFailed as error:
            # an uncompilable mapping is this backend's "the machine cannot
            # execute it" — infeasible, with the diagnostics kept (truncated)
            stderr_tail = error.stderr[-STDERR_LIMIT:]
            measurement = Measurement.infeasible(
                self.kind, f"C compilation failed: {stderr_tail.strip().splitlines()[-1] if stderr_tail.strip() else 'no diagnostics'}"
            )
            measurement.metadata["compiler_stderr"] = stderr_tail
            measurement.metadata["compile_command"] = error.command
            return measurement
        if ran.returncode != 0:
            raise RuntimeError(
                f"measured binary exited {ran.returncode}: {ran.stderr.strip()}"
            )
        # Parse outside the ValueError→infeasible net of measure(): garbage on
        # the harness's stdout is an infrastructure failure to surface loudly,
        # never a silently "infeasible" mapping.
        try:
            times_ms: List[float] = [
                int(line) / 1e6 for line in ran.stdout.split() if line.strip()
            ]
        except ValueError:
            raise RuntimeError(
                f"measured binary produced non-numeric timing output: {ran.stdout!r}"
            ) from None
        if len(times_ms) != self.repeat:
            raise RuntimeError(
                f"measured binary reported {len(times_ms)} samples, expected {self.repeat}"
            )
        time_ms = trimmed_median(times_ms, self.trim)
        metadata: Dict[str, Any] = {
            "cycles": time_ms * 1e3 * spec.cycles_per_us,
            "shared_bytes_per_block": mapped.geometry.shared_memory_per_block_bytes,
            "compiler": self._compiler,
            "warmup": self.warmup,
            "repeat": self.repeat,
            "trim": self.trim,
            "times_ms": times_ms,
            "checksum": ran.stderr.strip(),
            "source_lines": len(source.splitlines()),
        }
        return Measurement(time_ms=time_ms, kind=self.kind, metadata=metadata)

    def _compile(self, source: str, bin_path: Path) -> None:
        """One ``cc`` invocation producing ``bin_path`` (raises on failure)."""
        with tempfile.TemporaryDirectory(prefix="repro-measure-c-src-") as srcdir:
            c_path = Path(srcdir) / "kernel.c"
            c_path.write_text(source)
            command = [self._compiler, *CFLAGS[:-1], "-o", str(bin_path), str(c_path), CFLAGS[-1]]
            try:
                started = time.perf_counter()
                compiled = subprocess.run(
                    command, capture_output=True, text=True, timeout=SUBPROCESS_TIMEOUT_S
                )
                compile_s = time.perf_counter() - started
            except subprocess.TimeoutExpired as error:
                raise RuntimeError(
                    f"measure-c candidate exceeded {SUBPROCESS_TIMEOUT_S:.0f}s: {error}"
                ) from None
            # provenance on the enclosing measure span: how much of this
            # candidate's wall time was the C toolchain, not the kernel
            trace.annotate(compile_s=round(compile_s, 6))
            if compiled.returncode != 0:
                raise CompilationFailed(command, compiled.stderr)

    def _run_binary(self, bin_path: Path) -> "subprocess.CompletedProcess[str]":
        """Run a compiled harness with this request's knobs on ``argv``."""
        command = [str(bin_path), str(self.warmup), str(self.repeat), str(self._seed)]
        try:
            return subprocess.run(
                command, capture_output=True, text=True, timeout=SUBPROCESS_TIMEOUT_S
            )
        except subprocess.TimeoutExpired as error:
            # the bounded-time promise: a pathological mapping errors
            # cleanly like every other infrastructure failure here
            raise RuntimeError(
                f"measure-c candidate exceeded {SUBPROCESS_TIMEOUT_S:.0f}s: {error}"
            ) from None

    # -- identity ----------------------------------------------------------------
    def signature(self) -> Dict[str, Any]:
        # the compiler *request* (cc=...) fingerprints; the resolved absolute
        # path does not — two hosts with gcc at different paths share entries.
        # Cache location/limit never fingerprint: where a binary came from
        # cannot change what it measures.
        return {
            "scheme": self.scheme,
            "cc": self.cc,
            "warmup": self.warmup,
            "repeat": self.repeat,
            "trim": self.trim,
        }

    def uri(self) -> str:
        options = [f"warmup={self.warmup}", f"repeat={self.repeat}", f"trim={self.trim}"]
        if self.cache_spec is not None:
            options.append(f"cache={self.cache_spec}")
        if self.cache_limit != DEFAULT_CAPACITY:
            options.append(f"cache_limit={self.cache_limit}")
        if self.cc:
            options.insert(0, f"cc={self.cc}")
        return f"{self.scheme}:{','.join(options)}"

    def describe(self) -> str:
        compiler = find_c_compiler(self.cc)
        status = compiler if compiler else "UNAVAILABLE: no toolchain"
        return f"compile + time the emitted C harness ({status})"
