"""The evaluation-backend interface and its URI grammar.

"How does a candidate configuration get a cost?" is a pluggable decision: the
analytical GPU model (fast, the pruning device of the paper's Section 4.3),
actually *executing* the mapped program (the paper's empirical loop), or a
hybrid of the two.  Every answer implements :class:`EvaluationBackend`:

* :meth:`~EvaluationBackend.prepare` — called **once per tuning request**
  with the request's shared :class:`~repro.compiler.CompilationSession` and
  machine spec; the backend freezes whatever per-request state it needs
  (performance model, derived session with extra terminal passes, seeded
  inputs, toolchain paths).
* :meth:`~EvaluationBackend.measure` — called **once per candidate** with a
  :class:`~repro.autotune.space.Configuration`; returns a
  :class:`Measurement` (never raises for an infeasible mapping — feasibility
  is part of the result, so search strategies can treat evaluation as total).

Backends are selected by URI (see :func:`parse_backend_uri`)::

    model:                              the analytical model (default)
    measure-py:warmup=1,repeat=5        execute the lower-py artifact, timed
    measure-c:cc=gcc,repeat=7           compile + time the emitted C harness
    hybrid:model>measure-py?top=8       model prunes, measurement re-ranks

Backends pickle (minus any transient prepared state) so the parallel search
executors can ship them to worker processes; re-:meth:`prepare` is cheap and
lazy there.
"""

from __future__ import annotations

import dataclasses
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Type

from repro.compiler import CompilationSession
from repro.machine.spec import GPUSpec, GridSpec
from repro.telemetry import trace
from repro.telemetry.events import EVENTS
from repro.telemetry.metrics import METRICS

MEASUREMENTS_TOTAL = METRICS.counter(
    "repro_measurements_total",
    "candidate costings per measurement kind",
    labels=("kind",),
)

MEASURE_MEMO_TOTAL = METRICS.counter(
    "repro_measure_memo_total",
    "per-request measurement-memo lookups by outcome",
    labels=("outcome",),
)

#: serializes the *timed* section of concurrent wall-clock measurements:
#: warmups may overlap freely, but two timed runs racing for the cores would
#: skew each other's numbers, so every backend that reports wall time takes
#: this lock around its timing loop (process-wide — parallel measurement
#: therefore requires a thread pool, which the autotuner enforces)
TIMED_SECTION_LOCK = threading.Lock()


class BackendUnavailable(RuntimeError):
    """The backend cannot run on this host (e.g. no C toolchain).

    Raised from :meth:`EvaluationBackend.prepare`, *before* any tuning work
    starts, so a request naming an impossible backend fails fast and clean
    instead of erroring per candidate.
    """


@dataclass
class Measurement:
    """One backend's verdict on one candidate configuration.

    ``kind`` records provenance — ``"model"`` for analytically priced times,
    ``"measured-py"`` / ``"measured-c"`` for wall-clock measurements — and
    travels into the tuning report and the persistent cache, so a cached
    entry always says *how* its times were obtained.
    """

    time_ms: float
    kind: str
    feasible: bool = True
    error: Optional[str] = None
    metadata: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "time_ms": self.time_ms,
            "kind": self.kind,
            "feasible": self.feasible,
            "error": self.error,
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Measurement":
        return cls(
            time_ms=payload["time_ms"],
            kind=payload["kind"],
            feasible=payload.get("feasible", True),
            error=payload.get("error"),
            metadata=dict(payload.get("metadata", {})),
        )

    @classmethod
    def infeasible(cls, kind: str, error: str) -> "Measurement":
        return cls(time_ms=float("inf"), kind=kind, feasible=False, error=error)


class EvaluationBackend:
    """Interface every way-of-costing-a-candidate implements."""

    #: URI scheme this backend registers under
    scheme: str = "base"
    #: the :attr:`Measurement.kind` this backend produces
    kind: str = "model"
    #: whether two identical requests always measure identical times; false
    #: for wall-clock backends, whose fingerprints then include the input seed
    deterministic: bool = True
    #: whether :meth:`measure` times real executions — concurrent timed runs
    #: contend for the cores and skew each other, so parallel candidate
    #: evaluation is serialized (with a warning) for such backends
    measures_wall_clock: bool = False
    #: whether this backend can price *distributed* configurations (those
    #: carrying grid extras); wall-clock backends cannot execute a multi-PE
    #: mapping on the host, so such candidates become infeasible results
    supports_distributed: bool = False

    def __init__(self) -> None:
        self._session: Optional[CompilationSession] = None
        self._spec: Optional[GPUSpec] = None
        self._grid: Optional[GridSpec] = None
        self._seed: int = 0
        self._reuse_analysis: bool = True
        self._memo: Optional[Dict[Any, Measurement]] = None
        self._memo_lock = threading.Lock()

    def set_grid(self, grid: Optional[GridSpec]) -> None:
        """Attach the PE-grid target of a distributed tuning request.

        Called by the evaluator before :meth:`prepare`; the grid survives
        pickling to pool workers (it is a frozen dataclass).  Backends that
        do not support distributed pricing simply never read it.
        """
        self._grid = grid

    # -- lifecycle ---------------------------------------------------------------
    def prepare(
        self,
        session: CompilationSession,
        spec: GPUSpec,
        seed: int = 0,
        reuse_analysis: bool = True,
    ) -> None:
        """Freeze per-request state.  Idempotent; called once per request.

        Raises :class:`BackendUnavailable` when the host cannot run this
        backend at all.
        """
        self._session = session
        self._spec = spec
        self._seed = seed
        self._reuse_analysis = reuse_analysis
        # fresh memo per request: identical configs within one request (e.g.
        # the hybrid's finalize re-measuring a top-K member it already timed)
        # reuse the first measurement instead of paying another run
        self._memo = {}
        self._memo_lock = threading.Lock()

    @property
    def prepared(self) -> bool:
        return self._session is not None

    def _require_prepared(self) -> Tuple[CompilationSession, GPUSpec]:
        if self._session is None or self._spec is None:
            raise RuntimeError(
                f"backend {self.uri()!r} was not prepared; call prepare(session, spec) first"
            )
        return self._session, self._spec

    # -- measurement -------------------------------------------------------------
    #: leaf backends open a ``measure`` span and count into
    #: ``repro_measurements_total{kind=}`` per measurement; delegating
    #: backends (hybrid) set this False so one candidate is never counted
    #: twice — the leaf they forward to instruments itself.
    _instrument_measure: bool = True

    def measure(self, configuration: Any) -> Measurement:
        """Cost one candidate; infeasible mappings become infeasible results.

        The staged compiler signals "the machine cannot execute this mapping"
        (scratchpad overflow, degenerate geometry) with ``ValueError`` —
        converted here so :meth:`_measure` implementations stay simple and
        search strategies see a total function.

        Instrumented: each leaf measurement opens a ``measure`` span carrying
        provenance (kind, timing knobs, and — annotated by ``measure-c:`` —
        compile time) and bumps ``repro_measurements_total{kind=}``.

        Memoized: within one request (one :meth:`prepare`), a configuration
        already measured returns a copy of its first measurement —
        ``repro_measure_memo_total{outcome=hit}`` counts the runs saved.
        """
        if not self._instrument_measure:
            return self._checked_measure(configuration)
        memo_key = self._memo_key(configuration)
        if memo_key is not None:
            with self._memo_lock:
                cached = self._memo.get(memo_key)
            if cached is not None:
                MEASURE_MEMO_TOTAL.inc(outcome="hit")
                return dataclasses.replace(cached, metadata=dict(cached.metadata))
        with trace.span("measure", kind="measure", backend=self.scheme) as item:
            measurement = self._checked_measure(configuration)
            item.annotate(
                kind=measurement.kind,
                time_ms=measurement.time_ms,
                feasible=measurement.feasible,
                **self._timing_provenance(),
            )
        if memo_key is not None:
            MEASURE_MEMO_TOTAL.inc(outcome="miss")
            with self._memo_lock:
                self._memo[memo_key] = dataclasses.replace(
                    measurement, metadata=dict(measurement.metadata)
                )
        MEASUREMENTS_TOTAL.inc(kind=measurement.kind)
        if EVENTS.enabled("debug"):
            detail: Dict[str, Any] = {}
            if measurement.error:
                detail["error"] = measurement.error
            EVENTS.emit(
                "candidate.measure",
                level="debug",
                kind=measurement.kind,
                time_ms=round(measurement.time_ms, 4),
                feasible=measurement.feasible,
                **detail,
            )
        return measurement

    def _memo_key(self, configuration: Any) -> Optional[Any]:
        """A hashable identity for the memo, or ``None`` to bypass it."""
        if self._memo is None:
            return None
        key = getattr(configuration, "key", None)
        if callable(key):
            return key()
        return configuration if isinstance(configuration, (str, tuple)) else None

    def _checked_measure(self, configuration: Any) -> Measurement:
        try:
            if not self.supports_distributed and self._is_distributed(configuration):
                raise ValueError(
                    f"backend {self.uri()!r} cannot execute distributed (PE-grid) "
                    "mappings on this host; use the model: backend"
                )
            return self._measure(configuration)
        except ValueError as error:
            return Measurement.infeasible(self.kind, str(error))

    @staticmethod
    def _is_distributed(configuration: Any) -> bool:
        """Whether a candidate carries PE-grid family parameters."""
        extras = getattr(configuration, "extras", ()) or ()
        return any(key == "grid_p" for key, _value in extras)

    def _timing_provenance(self) -> Dict[str, Any]:
        """The warmup/repeat/trim knobs, when this backend has them."""
        return {
            name: getattr(self, name)
            for name in ("warmup", "repeat", "trim")
            if hasattr(self, name)
        }

    def _measure(self, configuration: Any) -> Measurement:
        raise NotImplementedError

    @property
    def measurement_workers(self) -> int:
        """How many candidates this backend can measure concurrently.

        Wall-clock backends default to 1 (timed runs contend for the cores);
        a backend that serializes its *timed* section under
        :data:`TIMED_SECTION_LOCK` may report more, and the autotuner then
        runs that many measurement threads with only warmups overlapping.
        """
        return 1

    # -- batch hooks (the hybrid backend's seam) ----------------------------------
    def finalize(
        self, results: List[Any], evaluator: Any, ensure: Sequence[Any] = ()
    ) -> List[Any]:
        """Post-search hook over the full result list (default: identity).

        Called once by :func:`repro.autotune.autotune` after the search
        strategy finished; the hybrid backend re-measures the top candidates
        here (``ensure`` lists configurations — the baseline — that must be
        part of any re-measurement).  ``results`` are
        :class:`~repro.autotune.evaluate.EvaluationResult` items in
        evaluation order; the returned list replaces them.
        """
        return results

    def select_best(self, results: List[Any]) -> Any:
        """Pick the winner from finalized results (default: fastest feasible)."""
        from repro.autotune.evaluate import best_result

        return best_result(results)

    # -- identity ----------------------------------------------------------------
    def signature(self) -> Dict[str, Any]:
        """Stable description for cache fingerprinting.

        Anything that can change a measurement must appear here: model-priced
        and measured results must never collide under one cache key.
        """
        return {"scheme": self.scheme}

    def uri(self) -> str:
        """A URI string that :func:`parse_backend_uri` round-trips."""
        return f"{self.scheme}:"

    def describe(self) -> str:
        """One-line human description (the CLI's ``backends`` listing)."""
        return self.__doc__.splitlines()[0] if self.__doc__ else self.scheme

    def availability(self) -> Optional[str]:
        """``None`` when usable on this host, else the reason it is not."""
        return None

    # -- construction ------------------------------------------------------------
    @classmethod
    def from_options(cls, options: Mapping[str, str]) -> "EvaluationBackend":
        """Build from parsed URI options; unknown keys must raise ValueError."""
        if options:
            raise ValueError(
                f"backend {cls.scheme!r} accepts no options, got {sorted(options)}"
            )
        return cls()

    # -- pickling ----------------------------------------------------------------
    # Backends ride inside ConfigurationEvaluator to process-pool workers.
    # Subclasses stash unpicklable prepared state in attributes listed in
    # _TRANSIENT; it is nulled here and lazily rebuilt in the worker.
    _TRANSIENT: Tuple[str, ...] = ()

    def __getstate__(self) -> Dict[str, Any]:
        state = dict(self.__dict__)
        for name in self._TRANSIENT:
            if name in state:
                state[name] = None
        # locks don't pickle, and a worker's memo starts empty (its hits
        # would be copies of measurements the parent already has)
        state["_memo_lock"] = None
        state["_memo"] = {} if state.get("_memo") is not None else None
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._memo_lock = threading.Lock()


# -- URI grammar ---------------------------------------------------------------------
#: registered backend factories, keyed by URI scheme
BACKEND_SCHEMES: Dict[str, Type[EvaluationBackend]] = {}


def register_backend(factory: Type[EvaluationBackend]) -> Type[EvaluationBackend]:
    """Register a backend class under its ``scheme`` (unique)."""
    if factory.scheme in BACKEND_SCHEMES:
        raise ValueError(f"backend scheme {factory.scheme!r} is already registered")
    BACKEND_SCHEMES[factory.scheme] = factory
    return factory


def available_backends() -> List[str]:
    """Sorted registered backend schemes."""
    return sorted(BACKEND_SCHEMES)


#: shared defaults of the wall-clock (measured) backends' timing knobs
TIMING_DEFAULTS = {"warmup": 1, "repeat": 5, "trim": 0.2}


def validate_timing_knobs(warmup: int, repeat: int, trim: float) -> None:
    """Range-check the measured backends' warmup/repeat/trim knobs."""
    if warmup < 0:
        raise ValueError(f"warmup cannot be negative, got {warmup}")
    if repeat < 1:
        raise ValueError(f"repeat must be positive, got {repeat}")
    if not (0.0 <= trim < 0.5):
        raise ValueError(f"trim must be in [0, 0.5), got {trim}")


def parse_timing_options(
    scheme: str, options: Mapping[str, str], extra: Tuple[str, ...] = ()
) -> Dict[str, Any]:
    """Parse the shared warmup/repeat/trim URI options (plus ``extra`` keys).

    Shared by every wall-clock backend so their URI option behaviour cannot
    drift apart; range validation happens in the constructors (via
    :func:`validate_timing_knobs`), type coercion and unknown-key rejection
    here.
    """
    known = {"warmup", "repeat", "trim", *extra}
    unknown = set(options) - known
    if unknown:
        raise ValueError(
            f"backend {scheme!r} got unknown options {sorted(unknown)}; "
            f"available: {sorted(known)}"
        )
    try:
        return {
            "warmup": int(options.get("warmup", TIMING_DEFAULTS["warmup"])),
            "repeat": int(options.get("repeat", TIMING_DEFAULTS["repeat"])),
            "trim": float(options.get("trim", TIMING_DEFAULTS["trim"])),
        }
    except ValueError as error:
        raise ValueError(f"backend {scheme!r}: {error}") from None


def split_options(rest: str) -> Dict[str, str]:
    """Parse ``key=value,key=value`` backend options (empty string → none)."""
    options: Dict[str, str] = {}
    if not rest:
        return options
    for item in rest.split(","):
        name, sep, value = item.partition("=")
        if not sep or not name.strip():
            raise ValueError(
                f"backend option must look like key=value, got {item!r}"
            )
        options[name.strip()] = value.strip()
    return options


def parse_backend_uri(uri: str) -> EvaluationBackend:
    """Materialise a backend from its URI.

    Grammar::

        BACKEND   := SCHEME [":" REST]
        SCHEME    := "model" | "measure-py" | "measure-c" | "hybrid" | ...
        REST      := OPTIONS                    (simple schemes)
                   | PRIMARY ">" SECONDARY ["?" OPTIONS]   (hybrid)
        OPTIONS   := key "=" value ("," key "=" value)*

    Unknown schemes fail early with the registry listed, mirroring the
    compiler's pass-name and the store's URI-scheme errors.
    """
    if not isinstance(uri, str) or not uri.strip():
        raise ValueError(f"backend URI must be a non-empty string, got {uri!r}")
    scheme, _sep, rest = uri.strip().partition(":")
    try:
        factory = BACKEND_SCHEMES[scheme]
    except KeyError:
        raise ValueError(
            f"unknown evaluation backend {scheme!r}; available: "
            f"{', '.join(available_backends())}"
        ) from None
    return factory.from_uri_rest(rest) if hasattr(factory, "from_uri_rest") else (
        factory.from_options(split_options(rest))
    )


def resolve_backend(backend: Any) -> EvaluationBackend:
    """Accept a backend instance, URI string, or ``None`` (→ the model)."""
    if backend is None:
        return BACKEND_SCHEMES["model"]()
    if isinstance(backend, EvaluationBackend):
        return backend
    if isinstance(backend, str):
        return parse_backend_uri(backend)
    raise TypeError(
        f"backend must be a URI string or EvaluationBackend, got {type(backend).__name__}"
    )
