"""The hybrid backend: model-pruned search, measured re-ranking.

This is the paper's actual empirical loop.  Section 4.3's analytical model is
explicitly a *pruning device*: it ranks the mapping space cheaply, and the
final configuration is chosen by running the best few candidates on the
machine.  ``hybrid:model>measure-py?top=K`` reproduces exactly that division
of labour:

* during the search, every candidate is priced by the **primary** backend
  (the model) — cheap, so strategies can explore broadly;
* after the search, the **secondary** (measured) backend re-measures the
  top-``K`` surviving candidates (plus the baseline, so reported speedups
  compare measured-to-measured), and the winner is picked **only among the
  measured results** — model milliseconds and wall-clock milliseconds live on
  different scales and must never be compared directly.

The winning entry's ``measurement.kind`` is therefore the secondary's
(``"measured-py"`` / ``"measured-c"``): a hybrid-tuned cache entry always
records that its best configuration was chosen by measurement.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.compiler import CompilationSession
from repro.machine.spec import GPUSpec

from repro.autotune.backends.base import (
    EvaluationBackend,
    Measurement,
    parse_backend_uri,
    register_backend,
    split_options,
)


@register_backend
class HybridBackend(EvaluationBackend):
    """Model prunes the space; a measured backend re-ranks the top-K."""

    scheme = "hybrid"
    # every hybrid measurement is performed by a leaf backend, which
    # instruments itself; instrumenting here too would double-count
    _instrument_measure = False

    def __init__(
        self,
        primary: EvaluationBackend,
        secondary: EvaluationBackend,
        top: int = 8,
    ) -> None:
        super().__init__()
        if isinstance(primary, HybridBackend) or isinstance(secondary, HybridBackend):
            raise ValueError("hybrid backends do not nest")
        if top < 1:
            raise ValueError(f"top must be positive, got {top}")
        self.primary = primary
        self.secondary = secondary
        self.top = top

    @property
    def kind(self) -> str:  # type: ignore[override]
        """The winner's provenance is the secondary (measuring) backend's."""
        return self.secondary.kind

    @property
    def deterministic(self) -> bool:
        return getattr(self.primary, "deterministic", True) and getattr(
            self.secondary, "deterministic", True
        )

    @property
    def measures_wall_clock(self) -> bool:  # type: ignore[override]
        """Only the *search-phase* (primary) measurement gates parallelism.

        The secondary measures wall clock, but :meth:`finalize` already
        serializes it — so a model-primary hybrid keeps parallel search.
        """
        return getattr(self.primary, "measures_wall_clock", False)

    # -- URI construction --------------------------------------------------------
    @classmethod
    def from_uri_rest(cls, rest: str) -> "HybridBackend":
        """Parse ``primary>secondary[?top=K]`` (e.g. ``model>measure-py?top=8``)."""
        body, _sep, query = rest.partition("?")
        primary_uri, sep, secondary_uri = body.partition(">")
        if not sep or not primary_uri.strip() or not secondary_uri.strip():
            raise ValueError(
                f"hybrid backend must look like 'hybrid:PRIMARY>SECONDARY[?top=K]', "
                f"got 'hybrid:{rest}'"
            )
        options = split_options(query.replace("&", ",")) if query else {}
        unknown = set(options) - {"top"}
        if unknown:
            raise ValueError(
                f"backend 'hybrid' got unknown options {sorted(unknown)}; available: ['top']"
            )
        try:
            top = int(options.get("top", 8))
        except ValueError:
            raise ValueError(
                f"hybrid top must be an integer, got {options['top']!r}"
            ) from None
        return cls(
            primary=parse_backend_uri(primary_uri.strip()),
            secondary=parse_backend_uri(secondary_uri.strip()),
            top=top,
        )

    @classmethod
    def from_options(cls, options: Mapping[str, str]) -> "HybridBackend":
        raise ValueError(
            "hybrid backends are built from 'hybrid:PRIMARY>SECONDARY[?top=K]'"
        )

    # -- lifecycle ---------------------------------------------------------------
    def availability(self) -> Optional[str]:
        return self.primary.availability() or self.secondary.availability()

    def prepare(
        self,
        session: CompilationSession,
        spec: GPUSpec,
        seed: int = 0,
        reuse_analysis: bool = True,
    ) -> None:
        super().prepare(session, spec, seed=seed, reuse_analysis=reuse_analysis)
        self.primary.prepare(session, spec, seed=seed, reuse_analysis=reuse_analysis)
        self.secondary.prepare(session, spec, seed=seed, reuse_analysis=reuse_analysis)

    # -- measurement -------------------------------------------------------------
    def _measure(self, configuration: Any) -> Measurement:
        # per-candidate search costing is the primary's (cheap) job
        return self.primary.measure(configuration)

    # -- the re-ranking pass -------------------------------------------------------
    def finalize(self, results: List[Any], evaluator: Any, ensure: Sequence[Any] = ()) -> List[Any]:
        """Re-measure the top-``K`` primary-ranked survivors with the secondary.

        ``ensure`` configurations (the seed/baseline) are re-measured too when
        they were feasible, so the report's speedup compares measured against
        measured.  Everything else keeps its primary (model) measurement and
        stays in the result list for inspection — :meth:`select_best` never
        lets an un-measured candidate win.

        Re-measurement is deliberately **serial**, whatever parallelism the
        surrounding search used: the secondary backend times wall-clock
        executions, and K concurrent timed runs contend for the same cores,
        skewing exactly the medians the re-ranking exists to trust.  The
        cost is bounded by ``top`` (+1 baseline), not by the space.
        """
        from repro.autotune.evaluate import result_from_measurement

        candidates = [r for r in results if r.feasible and r.correct is not False]
        ranked = sorted(candidates, key=lambda r: (r.time_ms, r.configuration.key()))
        chosen = {r.configuration for r in ranked[: self.top]}
        chosen.update(
            r.configuration for r in candidates if r.configuration in set(ensure)
        )

        finalized: List[Any] = []
        for result in results:
            if result.configuration not in chosen:
                finalized.append(result)
                continue
            measurement = self.secondary.measure(result.configuration)
            measurement.metadata["model_time_ms"] = result.time_ms
            remeasured = result_from_measurement(result.configuration, measurement)
            # preserved from the primary pass: the spot-check verdict, and the
            # mapped geometry when the measurement carries none of its own
            remeasured.correct = result.correct
            if not remeasured.shared_bytes_per_block:
                remeasured.shared_bytes_per_block = result.shared_bytes_per_block
            finalized.append(remeasured)
        return finalized

    def select_best(self, results: List[Any]) -> Any:
        """The fastest *measured* result — never a model-priced survivor."""
        from repro.autotune.evaluate import best_result

        measured = [
            r
            for r in results
            if r.measurement is not None and r.measurement.kind == self.secondary.kind
        ]
        return best_result(measured if measured else results)

    # -- identity ----------------------------------------------------------------
    def signature(self) -> Dict[str, Any]:
        return {
            "scheme": self.scheme,
            "primary": self.primary.signature(),
            "secondary": self.secondary.signature(),
            "top": self.top,
        }

    def uri(self) -> str:
        # full sub-backend URIs (options included) so the recorded provenance
        # round-trips through parse_backend_uri to the same signature
        return f"hybrid:{self.primary.uri()}>{self.secondary.uri()}?top={self.top}"

    def describe(self) -> str:
        return (
            f"{self.primary.scheme} prunes the space, {self.secondary.scheme} "
            f"re-ranks the top-{self.top} (the paper's empirical loop)"
        )
