"""The analytical-model backend: today's default pricing, now pluggable.

Extracted from the old hard-wired ``ConfigurationEvaluator`` body: replay the
candidate through the shared :class:`~repro.compiler.CompilationSession`
(affine analysis frozen, tiling/scratchpad/mapping re-run), wrap the mapped
kernel into a :class:`~repro.machine.gpu.KernelLaunch`, and price it on the
:class:`~repro.machine.gpu.GPUPerformanceModel` — the stand-in for a run on
the paper's GeForce 8800 GTX.

Distributed candidates (configurations carrying ``grid_p`` extras, produced
by :class:`~repro.autotune.distspace.DistributedSpace`) take a different
path: no compiler replay, the mapping is priced on
:func:`repro.distmodel.gemm_schedule` against the request's
:class:`~repro.machine.GridSpec`, with provenance ``model-dist`` and the
per-phase breakdown in the measurement metadata.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.compiler import CompilationSession
from repro.distmodel import gemm_schedule
from repro.machine.gpu import GPUPerformanceModel, KernelLaunch
from repro.machine.spec import GPUSpec

from repro.autotune.backends.base import (
    EvaluationBackend,
    Measurement,
    register_backend,
)


@register_backend
class ModelBackend(EvaluationBackend):
    """Price candidates on the analytical GPU performance model (default)."""

    scheme = "model"
    kind = "model"
    supports_distributed = True

    #: provenance stamped on distributed (grid-priced) measurements
    DIST_KIND = "model-dist"

    _TRANSIENT = ("_model",)

    def __init__(self) -> None:
        super().__init__()
        self._model: Optional[GPUPerformanceModel] = None

    def prepare(
        self,
        session: CompilationSession,
        spec: GPUSpec,
        seed: int = 0,
        reuse_analysis: bool = True,
    ) -> None:
        super().prepare(session, spec, seed=seed, reuse_analysis=reuse_analysis)
        self._model = GPUPerformanceModel(spec)

    def _compile(self, configuration: Any):
        session, _spec = self._require_prepared()
        if self._reuse_analysis:
            return session.replay(from_stage="tiling", config=configuration)
        # Legacy cost model: a cold session per candidate re-runs every
        # stage, exactly like the old monolithic compile_with_config.
        cold = CompilationSession(
            session.program,
            spec=session.spec,
            options=session.options,
            param_values=session.param_values,
        )
        return cold.replay(from_stage="analysis", config=configuration)

    def _measure_distributed(self, configuration: Any) -> Measurement:
        """Price a PE-grid mapping on the communication-aware distmodel."""
        session, _spec = self._require_prepared()
        if self._grid is None:
            raise ValueError(
                "distributed configuration reached the model backend without "
                "a GridSpec; pass grid= to autotune()"
            )
        from repro.autotune.distspace import summa_mapping

        artifact = session.analysis()
        loops = list(artifact.analysis.loop_order)
        mapping = summa_mapping(configuration, loops)
        schedule = gemm_schedule(
            artifact.extents[loops[0]],
            artifact.extents[loops[1]],
            artifact.extents[loops[2]],
            mapping,
            self._grid,
        )
        schedule.record(self._grid)
        metadata: Dict[str, Any] = {
            "cycles": schedule.total_cycles,
            "breakdown": {p.name: p.elapsed_cycles for p in schedule.phases},
            "hidden_fraction": schedule.hidden_fraction,
            "exposed_comm_cycles": schedule.exposed_comm_cycles,
            "comm_cycles": schedule.comm_cycles,
            "grid": self._grid.name,
        }
        return Measurement(
            time_ms=schedule.time_ms(self._grid), kind=self.DIST_KIND, metadata=metadata
        )

    def _measure(self, configuration: Any) -> Measurement:
        _session, spec = self._require_prepared()
        if self._is_distributed(configuration):
            return self._measure_distributed(configuration)
        if self._model is None:  # re-prepared lazily after pickling
            self._model = GPUPerformanceModel(spec)
        mapped = self._compile(configuration)
        launch = KernelLaunch(
            workload=mapped.workload,
            geometry=mapped.geometry,
            global_sync_rounds=mapped.global_sync_rounds,
        )
        time_us = self._model.execution_time_us(launch)
        metadata: Dict[str, Any] = {
            "cycles": time_us * spec.cycles_per_us,
            "breakdown": self._model.breakdown(launch),
            "shared_bytes_per_block": mapped.geometry.shared_memory_per_block_bytes,
        }
        return Measurement(time_ms=time_us / 1000.0, kind=self.kind, metadata=metadata)

    def uri(self) -> str:
        return "model:"

    def describe(self) -> str:
        return "analytical GPU-model pricing (the Section-4.3 cost model; default)"
