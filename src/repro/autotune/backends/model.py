"""The analytical-model backend: today's default pricing, now pluggable.

Extracted from the old hard-wired ``ConfigurationEvaluator`` body: replay the
candidate through the shared :class:`~repro.compiler.CompilationSession`
(affine analysis frozen, tiling/scratchpad/mapping re-run), wrap the mapped
kernel into a :class:`~repro.machine.gpu.KernelLaunch`, and price it on the
:class:`~repro.machine.gpu.GPUPerformanceModel` — the stand-in for a run on
the paper's GeForce 8800 GTX.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.compiler import CompilationSession
from repro.machine.gpu import GPUPerformanceModel, KernelLaunch
from repro.machine.spec import GPUSpec

from repro.autotune.backends.base import (
    EvaluationBackend,
    Measurement,
    register_backend,
)


@register_backend
class ModelBackend(EvaluationBackend):
    """Price candidates on the analytical GPU performance model (default)."""

    scheme = "model"
    kind = "model"

    _TRANSIENT = ("_model",)

    def __init__(self) -> None:
        super().__init__()
        self._model: Optional[GPUPerformanceModel] = None

    def prepare(
        self,
        session: CompilationSession,
        spec: GPUSpec,
        seed: int = 0,
        reuse_analysis: bool = True,
    ) -> None:
        super().prepare(session, spec, seed=seed, reuse_analysis=reuse_analysis)
        self._model = GPUPerformanceModel(spec)

    def _compile(self, configuration: Any):
        session, _spec = self._require_prepared()
        if self._reuse_analysis:
            return session.replay(from_stage="tiling", config=configuration)
        # Legacy cost model: a cold session per candidate re-runs every
        # stage, exactly like the old monolithic compile_with_config.
        cold = CompilationSession(
            session.program,
            spec=session.spec,
            options=session.options,
            param_values=session.param_values,
        )
        return cold.replay(from_stage="analysis", config=configuration)

    def _measure(self, configuration: Any) -> Measurement:
        _session, spec = self._require_prepared()
        if self._model is None:  # re-prepared lazily after pickling
            self._model = GPUPerformanceModel(spec)
        mapped = self._compile(configuration)
        launch = KernelLaunch(
            workload=mapped.workload,
            geometry=mapped.geometry,
            global_sync_rounds=mapped.global_sync_rounds,
        )
        time_us = self._model.execution_time_us(launch)
        metadata: Dict[str, Any] = {
            "cycles": time_us * spec.cycles_per_us,
            "breakdown": self._model.breakdown(launch),
            "shared_bytes_per_block": mapped.geometry.shared_memory_per_block_bytes,
        }
        return Measurement(time_ms=time_us / 1000.0, kind=self.kind, metadata=metadata)

    def uri(self) -> str:
        return "model:"

    def describe(self) -> str:
        return "analytical GPU-model pricing (the Section-4.3 cost model; default)"
