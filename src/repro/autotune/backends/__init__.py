"""Pluggable evaluation backends: how a candidate configuration gets a cost.

One URI-selected interface (:class:`EvaluationBackend`: ``prepare`` once per
request, ``measure`` per candidate) with four implementations:

========================  ===========================================================
``model:``                analytical GPU-model pricing (default; Section 4.3)
``measure-py:``           execute the ``lower-py`` stage artifact, timed
``measure-c:``            compile + time the emitted C harness (needs a toolchain)
``hybrid:A>B?top=K``      A prunes the search, B re-ranks the top-K survivors
========================  ===========================================================

Every :class:`Measurement` carries its ``kind`` (``model`` / ``measured-py``
/ ``measured-c``) into reports and the persistent cache, and the backend
identity is part of the tuning fingerprint — model-priced and measured
results never collide under one cache key.
"""

from repro.autotune.backends.base import (
    BACKEND_SCHEMES,
    BackendUnavailable,
    EvaluationBackend,
    Measurement,
    available_backends,
    parse_backend_uri,
    register_backend,
    resolve_backend,
    split_options,
)
from repro.autotune.backends.hybrid import HybridBackend
from repro.autotune.backends.measured_c import MeasuredCBackend
from repro.autotune.backends.measured_py import MeasuredPythonBackend, trimmed_median
from repro.autotune.backends.model import ModelBackend

__all__ = [
    "BACKEND_SCHEMES",
    "BackendUnavailable",
    "EvaluationBackend",
    "HybridBackend",
    "Measurement",
    "MeasuredCBackend",
    "MeasuredPythonBackend",
    "ModelBackend",
    "available_backends",
    "parse_backend_uri",
    "register_backend",
    "resolve_backend",
    "split_options",
    "trimmed_median",
]
