"""Empirical autotuning above the mapping pipeline.

The paper (Section 4.3) uses the analytical data-movement model to *prune*
the mapping space and picks the final configuration empirically on the
machine.  This package supplies that empirical layer as a reusable service:

* :mod:`repro.autotune.space` — declarative configuration space (tile sizes,
  launch geometry, scratchpad staging) seeded by the SLSQP relaxed optimum
  and pruned by the cost model and scratchpad capacity;
* :mod:`repro.autotune.evaluate` — prices a configuration via
  :meth:`MappingPipeline.compile_with_config` and the machine models, with
  optional interpreter correctness spot-checks;
* :mod:`repro.autotune.search` — exhaustive / pruned-grid / random-restart
  hill-climb strategies with order-preserving parallel evaluation;
* :mod:`repro.autotune.cache` — persistent fingerprint-keyed JSON cache, so
  repeated tuning requests are O(1) with zero pipeline compiles;
* :mod:`repro.autotune.session` — the public :func:`autotune` /
  :func:`autotune_batch` API returning :class:`TuningReport`;
* :mod:`repro.autotune.cli` — ``python -m repro.autotune``.
"""

from repro.autotune.cache import TuningCache, fingerprint
from repro.autotune.evaluate import ConfigurationEvaluator, EvaluationResult, best_result
from repro.autotune.search import (
    EXECUTORS,
    ExecutorFallbackWarning,
    ExhaustiveSearch,
    PooledBatchEvaluator,
    PrunedGridSearch,
    RandomHillClimbSearch,
    SearchStrategy,
    STRATEGIES,
    make_batch_evaluator,
    resolve_strategy,
)
from repro.autotune.session import (
    TuningJob,
    TuningReport,
    autotune,
    autotune_batch,
    tuning_fingerprint,
)
from repro.autotune.space import Configuration, ConfigurationSpace, SpaceOptions

__all__ = [
    "Configuration",
    "ConfigurationSpace",
    "ConfigurationEvaluator",
    "EvaluationResult",
    "EXECUTORS",
    "ExecutorFallbackWarning",
    "ExhaustiveSearch",
    "PooledBatchEvaluator",
    "PrunedGridSearch",
    "RandomHillClimbSearch",
    "SearchStrategy",
    "STRATEGIES",
    "SpaceOptions",
    "TuningCache",
    "TuningJob",
    "TuningReport",
    "autotune",
    "autotune_batch",
    "best_result",
    "fingerprint",
    "make_batch_evaluator",
    "resolve_strategy",
    "tuning_fingerprint",
]
