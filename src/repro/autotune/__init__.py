"""Empirical autotuning above the mapping pipeline.

The paper (Section 4.3) uses the analytical data-movement model to *prune*
the mapping space and picks the final configuration empirically on the
machine.  This package supplies that empirical layer as a reusable service:

* :mod:`repro.autotune.space` — declarative configuration space (tile sizes,
  launch geometry, scratchpad staging) seeded by the SLSQP relaxed optimum
  and pruned by the cost model and scratchpad capacity;
* :mod:`repro.autotune.backends` — pluggable, URI-selected evaluation
  backends (``model:`` analytical pricing, ``measure-py:`` /
  ``measure-c:`` wall-clock measurement of the emitted program,
  ``hybrid:model>measure-py?top=K`` — the paper's model-prunes-measurement-
  decides loop) behind one ``prepare``/``measure`` interface;
* :mod:`repro.autotune.evaluate` — costs a configuration by replaying it
  through a shared :class:`repro.compiler.CompilationSession` (affine
  analysis runs once per request, candidates replay from the tiling stage)
  and the selected backend, with optional interpreter correctness
  spot-checks;
* :mod:`repro.autotune.search` — exhaustive / pruned-grid / random-restart
  hill-climb strategies with order-preserving parallel evaluation;
* :mod:`repro.autotune.cache` — persistent fingerprint-keyed cache facade, so
  repeated tuning requests are O(1) with zero pipeline compiles;
* :mod:`repro.autotune.store` — pluggable persistence backends behind the
  :class:`CacheStore` interface (legacy single JSON file, sharded
  per-fingerprint directory, append-only JSONL log) selected by store URI;
* :mod:`repro.autotune.session` — the public :func:`autotune` /
  :func:`autotune_batch` API returning :class:`TuningReport`;
* :mod:`repro.autotune.cli` — ``python -m repro.autotune``.
"""

from repro.autotune.backends import (
    BACKEND_SCHEMES,
    BackendUnavailable,
    EvaluationBackend,
    HybridBackend,
    Measurement,
    MeasuredCBackend,
    MeasuredPythonBackend,
    ModelBackend,
    available_backends,
    parse_backend_uri,
    register_backend,
    resolve_backend,
)
from repro.autotune.cache import TuningCache, fingerprint
from repro.autotune.store import (
    AppendLogStore,
    CacheStore,
    JsonFileStore,
    MemoryStore,
    ShardedStore,
    migrate_store,
    open_store,
    parse_store_uri,
)
from repro.autotune.evaluate import ConfigurationEvaluator, EvaluationResult, best_result
from repro.autotune.search import (
    EXECUTORS,
    ExecutorFallbackWarning,
    ExhaustiveSearch,
    PooledBatchEvaluator,
    PrunedGridSearch,
    RandomHillClimbSearch,
    SearchStrategy,
    STRATEGIES,
    make_batch_evaluator,
    resolve_strategy,
)
from repro.autotune.session import (
    TuningJob,
    TuningReport,
    autotune,
    autotune_batch,
    tuning_fingerprint,
)
from repro.autotune.space import Configuration, ConfigurationSpace, SpaceOptions

__all__ = [
    "AppendLogStore",
    "BACKEND_SCHEMES",
    "BackendUnavailable",
    "CacheStore",
    "Configuration",
    "ConfigurationSpace",
    "ConfigurationEvaluator",
    "EvaluationBackend",
    "HybridBackend",
    "JsonFileStore",
    "Measurement",
    "MeasuredCBackend",
    "MeasuredPythonBackend",
    "MemoryStore",
    "ModelBackend",
    "ShardedStore",
    "EvaluationResult",
    "available_backends",
    "parse_backend_uri",
    "register_backend",
    "resolve_backend",
    "EXECUTORS",
    "ExecutorFallbackWarning",
    "ExhaustiveSearch",
    "PooledBatchEvaluator",
    "PrunedGridSearch",
    "RandomHillClimbSearch",
    "SearchStrategy",
    "STRATEGIES",
    "SpaceOptions",
    "TuningCache",
    "TuningJob",
    "TuningReport",
    "autotune",
    "autotune_batch",
    "best_result",
    "fingerprint",
    "make_batch_evaluator",
    "migrate_store",
    "open_store",
    "parse_store_uri",
    "resolve_strategy",
    "tuning_fingerprint",
]
