"""Declarative configuration space for empirical autotuning.

The paper's Section-4.3 model is a *pruning* device: the authors pick the
final mapping empirically on the machine from the model's shortlist.  This
module builds that shortlist as an explicit, enumerable space over

* memory-level (intra-tile) tile sizes per loop,
* the outer tile / thread-block count,
* threads per block,
* scratchpad staging on/off,

seeded by the SLSQP relaxed optimum of :func:`repro.tiling.tile_search.
solve_relaxed` and pruned by the :class:`DataMovementCostModel` footprint
(scratchpad capacity) and minimum-parallelism constraints, so the empirical
search never wastes an evaluation on a configuration the model can already
reject.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.compiler import CompilationSession, split_across
from repro.core.options import MappingOptions
from repro.ir.program import Program
from repro.machine.memory import MemoryModel
from repro.machine.spec import GEFORCE_8800_GTX, GPUSpec
from repro.tiling.cost_model import DataMovementCostModel
from repro.tiling.tile_search import (
    TileSearchProblem,
    candidate_neighbourhood,
    solve_relaxed,
)


#: sentinel distinguishing "use the space's default cap" from an explicit
#: ``None`` (= unlimited) in :meth:`ConfigurationSpace.enumerate`
_DEFER = object()


@dataclass(frozen=True)
class Configuration:
    """One point of the mapping space — a fully explicit, replayable mapping.

    ``tile_sizes`` is a sorted tuple of ``(loop, size)`` pairs so the whole
    configuration is hashable and its string key is stable across runs.
    """

    num_blocks: int
    threads_per_block: int
    tile_sizes: Tuple[Tuple[str, int], ...]
    use_scratchpad: bool = True
    #: family parameters beyond the single-device knobs (e.g. a distributed
    #: mapping's ``grid_p`` / ``schedule`` / ``depth``), sorted for stable
    #: hashing; empty for every single-device configuration, so existing
    #: keys, cache entries and dict round-trips are unchanged
    extras: Tuple[Tuple[str, Any], ...] = ()

    @staticmethod
    def make(
        num_blocks: int,
        threads_per_block: int,
        tile_sizes: Mapping[str, int],
        use_scratchpad: bool = True,
        extras: Optional[Mapping[str, Any]] = None,
    ) -> "Configuration":
        return Configuration(
            num_blocks=int(num_blocks),
            threads_per_block=int(threads_per_block),
            tile_sizes=tuple(sorted((str(k), int(v)) for k, v in tile_sizes.items())),
            use_scratchpad=bool(use_scratchpad),
            extras=tuple(sorted((str(k), v) for k, v in (extras or {}).items())),
        )

    @property
    def tile_dict(self) -> Dict[str, int]:
        return dict(self.tile_sizes)

    @property
    def extras_dict(self) -> Dict[str, Any]:
        return dict(self.extras)

    def key(self) -> str:
        """Stable human-readable identity, used for tie-breaking and caching."""
        tiles = "_".join(f"{loop}{size}" for loop, size in self.tile_sizes)
        spm = "spm" if self.use_scratchpad else "nospm"
        base = f"b{self.num_blocks}.t{self.threads_per_block}.{tiles}.{spm}"
        if self.extras:
            base += "." + "_".join(f"{k}-{v}" for k, v in self.extras)
        return base

    def to_options(self, base: Optional[MappingOptions] = None) -> MappingOptions:
        """Materialise as pipeline options on top of ``base`` policy knobs."""
        base = base or MappingOptions()
        return base.with_overrides(
            num_blocks=self.num_blocks,
            threads_per_block=self.threads_per_block,
            tile_sizes=self.tile_dict,
            use_scratchpad=self.use_scratchpad,
        )

    @classmethod
    def from_options(cls, options: MappingOptions, tile_sizes: Mapping[str, int]) -> "Configuration":
        """The configuration a compiled kernel actually used."""
        return cls.make(
            num_blocks=options.num_blocks,
            threads_per_block=options.threads_per_block,
            tile_sizes=tile_sizes,
            use_scratchpad=options.use_scratchpad,
        )

    def to_dict(self) -> Dict[str, Any]:
        payload = {
            "num_blocks": self.num_blocks,
            "threads_per_block": self.threads_per_block,
            "tile_sizes": dict(self.tile_sizes),
            "use_scratchpad": self.use_scratchpad,
        }
        if self.extras:
            payload["extras"] = dict(self.extras)
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Configuration":
        return cls.make(
            num_blocks=payload["num_blocks"],
            threads_per_block=payload["threads_per_block"],
            tile_sizes=payload["tile_sizes"],
            use_scratchpad=payload["use_scratchpad"],
            extras=payload.get("extras"),
        )


@dataclass(frozen=True)
class SpaceOptions:
    """Axes of the enumerable space (kept small by default; widen per need)."""

    thread_counts: Tuple[int, ...] = (64, 128, 256)
    block_counts: Tuple[int, ...] = (16, 32, 64)
    #: include ``False`` to let the tuner consider the no-scratchpad baseline
    scratchpad_choices: Tuple[bool, ...] = (True,)
    #: per launch geometry, keep this many model-ranked tile vectors
    #: (``None`` = keep every feasible vector; used by the exhaustive strategy)
    tile_candidates_per_geometry: Optional[int] = 4

    def describe(self) -> Dict[str, Any]:
        """Stable JSON view, a fingerprint ingredient."""
        return {
            "thread_counts": list(self.thread_counts),
            "block_counts": list(self.block_counts),
            "scratchpad_choices": list(self.scratchpad_choices),
            "tile_candidates_per_geometry": self.tile_candidates_per_geometry,
        }


class ConfigurationSpace:
    """Enumerates model-pruned mapping configurations for one program."""

    def __init__(
        self,
        program: Program,
        spec: GPUSpec = GEFORCE_8800_GTX,
        param_values: Optional[Mapping[str, int]] = None,
        base_options: Optional[MappingOptions] = None,
        space_options: Optional[SpaceOptions] = None,
        session: Optional[CompilationSession] = None,
    ) -> None:
        self.program = program
        self.spec = spec
        self.base_options = base_options or MappingOptions()
        self.space = space_options or SpaceOptions()
        #: the staged-compiler session whose frozen analysis artifacts this
        #: space shares (and whose `compile()` freezes the seed mapping)
        self.session = session or CompilationSession(
            program, spec=spec, options=self.base_options, param_values=param_values
        )
        analysis_artifact = self.session.analysis()
        self.binding = dict(analysis_artifact.binding)
        self.analysis = analysis_artifact.analysis
        self.extents = dict(analysis_artifact.extents)
        self.lowers = dict(analysis_artifact.lowers)
        self.memory = MemoryModel(spec)
        self._models: Dict[Tuple[int, int], DataMovementCostModel] = {}
        self._seed: Optional[Configuration] = None

    # -- model plumbing ----------------------------------------------------------------
    def _space_loops(self) -> List[str]:
        return list(self.analysis.space_loops) or [self.analysis.loop_order[0]]

    def _outer_tiles(self, num_blocks: int) -> Dict[str, int]:
        space_loops = self._space_loops()
        block_counts = split_across(num_blocks, space_loops, self.extents)
        return {
            loop: max(1, math.ceil(self.extents[loop] / block_counts[loop]))
            for loop in space_loops
        }

    def cost_model(self, num_blocks: int, threads: int) -> DataMovementCostModel:
        """The Section-4.3 model for one launch geometry (memoised)."""
        key = (num_blocks, threads)
        if key not in self._models:
            outer = self._outer_tiles(num_blocks)
            extents = {
                loop: outer.get(loop, self.extents[loop])
                for loop in self.analysis.loop_order
            }
            self._models[key] = DataMovementCostModel(
                program=self.program,
                tile_loops=list(self.analysis.loop_order),
                loop_extents=extents,
                threads=threads,
                sync_cost=self.spec.block_sync_cycles,
                transfer_cost=self.spec.dma_cycles_per_element,
                problem_params=dict(self.binding),
                delta=self.base_options.delta,
                stage_all=self.base_options.target == "cell",
                hoisting=self.base_options.hoisting,
            )
        return self._models[key]

    def memory_limit(self, num_blocks: int) -> int:
        blocks_per_mp = 1
        if self.analysis.needs_global_synchronization:
            blocks_per_mp = max(1, math.ceil(num_blocks / self.spec.multiprocessors))
        return self.memory.memory_limit_per_block(blocks_per_mp)

    # -- enumeration ------------------------------------------------------------------
    def seed_configuration(self) -> Configuration:
        """The configuration the one-shot seed pipeline would pick (memoised).

        Runs one full compile (including the Section-4.3 search) with the base
        options, then freezes the resulting mapping — the empirical baseline
        every tuning report compares against.
        """
        if self._seed is None:
            mapped = self.session.compile()
            self._seed = Configuration.from_options(self.base_options, mapped.tile_sizes)
        return self._seed

    def tile_vectors(
        self,
        num_blocks: int,
        threads: int,
        use_scratchpad: bool,
        limit: Optional[int],
    ) -> List[Dict[str, int]]:
        """Model-pruned integer tile vectors for one launch geometry.

        Candidates come from the integer neighbourhood of the relaxed optimum;
        vectors violating the scratchpad capacity or minimum-parallelism
        constraint are dropped, the rest ranked by modelled movement cost.
        """
        model = self.cost_model(num_blocks, threads)
        limit_bytes = float(self.memory_limit(num_blocks))
        problem = TileSearchProblem(
            cost_model=model,
            memory_limit_bytes=limit_bytes,
            min_parallelism=threads,
        )
        relaxed = solve_relaxed(problem)
        neighbourhood = candidate_neighbourhood(problem, relaxed)
        loops = model.tile_loops
        ranked: List[Tuple[float, Dict[str, int]]] = []
        for combination in itertools.product(*[neighbourhood[loop] for loop in loops]):
            sizes = dict(zip(loops, combination))
            if model.work_per_tile(sizes) < threads:
                continue
            if use_scratchpad and model.footprint_bytes(sizes) > limit_bytes:
                continue
            ranked.append((model.movement_cost(sizes), sizes))
        ranked.sort(key=lambda entry: (entry[0], tuple(sorted(entry[1].items()))))
        if limit is not None:
            ranked = ranked[:limit]
        return [sizes for _cost, sizes in ranked]

    def enumerate(self, limit_per_geometry: Any = _DEFER) -> List[Configuration]:
        """All configurations of the space, model-pruned, in deterministic order.

        ``limit_per_geometry`` overrides the space's per-geometry tile-vector
        cap: omit it to use :attr:`SpaceOptions.tile_candidates_per_geometry`,
        pass an ``int`` to cap, or ``None`` to keep every feasible vector
        (the exhaustive strategy).  The seed configuration is always the
        first element, so every search strategy evaluates the baseline.
        """
        if limit_per_geometry is _DEFER:
            limit_per_geometry = self.space.tile_candidates_per_geometry
        configs: List[Configuration] = [self.seed_configuration()]
        seen = {configs[0]}
        for num_blocks in self.space.block_counts:
            for threads in self.space.thread_counts:
                if threads > self.spec.max_threads_per_block:
                    continue
                for use_spm in self.space.scratchpad_choices:
                    for sizes in self.tile_vectors(
                        num_blocks, threads, use_spm, limit_per_geometry
                    ):
                        config = Configuration.make(num_blocks, threads, sizes, use_spm)
                        if config not in seen:
                            seen.add(config)
                            configs.append(config)
        return configs

    def neighbours(self, config: Configuration) -> List[Configuration]:
        """One-knob moves from ``config`` (for hill-climbing strategies).

        Each move halves or doubles one tile size, the thread count, or the
        block count, or toggles scratchpad staging; moves violating the
        capacity / parallelism constraints are filtered by the model.
        """
        tiles = config.tile_dict
        moves: List[Configuration] = []

        for loop, size in tiles.items():
            for factor in (0.5, 2.0):
                new_size = max(1, min(int(size * factor), self.extents.get(loop, size)))
                if new_size == size:
                    continue
                new_tiles = dict(tiles)
                new_tiles[loop] = new_size
                moves.append(
                    Configuration.make(
                        config.num_blocks, config.threads_per_block, new_tiles,
                        config.use_scratchpad,
                    )
                )
        for threads in (config.threads_per_block // 2, config.threads_per_block * 2):
            if threads >= 1 and threads <= self.spec.max_threads_per_block:
                moves.append(
                    Configuration.make(
                        config.num_blocks, threads, tiles, config.use_scratchpad
                    )
                )
        for blocks in (config.num_blocks // 2, config.num_blocks * 2):
            if blocks >= 1:
                moves.append(
                    Configuration.make(
                        blocks, config.threads_per_block, tiles, config.use_scratchpad
                    )
                )
        if len(self.space.scratchpad_choices) > 1:
            moves.append(
                Configuration.make(
                    config.num_blocks, config.threads_per_block, tiles,
                    not config.use_scratchpad,
                )
            )

        feasible: List[Configuration] = []
        seen = {config}
        for move in moves:
            if move in seen:
                continue
            seen.add(move)
            model = self.cost_model(move.num_blocks, move.threads_per_block)
            sizes = {loop: move.tile_dict.get(loop, 1) for loop in model.tile_loops}
            if model.work_per_tile(sizes) < move.threads_per_block:
                continue
            if move.use_scratchpad and model.footprint_bytes(sizes) > self.memory_limit(
                move.num_blocks
            ):
                continue
            feasible.append(move)
        return feasible

    def describe(self) -> Dict[str, Any]:
        """Stable description of the space for cache fingerprinting."""
        return {
            "space_options": self.space.describe(),
            "loop_order": list(self.analysis.loop_order),
            "extents": {k: self.extents[k] for k in sorted(self.extents)},
        }
