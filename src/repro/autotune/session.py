"""The public autotuning API: :func:`autotune` and :func:`autotune_batch`.

One call turns the staged compiler into an empirical tuning service: build
the model-pruned configuration space, evaluate candidates (optionally in
parallel) by replaying them through one shared
:class:`repro.compiler.CompilationSession` (affine analysis runs once per
request, not once per candidate), and return a :class:`TuningReport` whose
best configuration can be replayed directly via
:meth:`CompilationSession.replay`.  With a :class:`TuningCache`,
repeated requests are answered from disk with **zero** pipeline compiles
(verifiable through :data:`repro.core.pipeline.COMPILE_COUNTER`).
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from repro.compiler import GLOBAL_ARTIFACT_CACHE, ArtifactCache, CompilationSession
from repro.telemetry import trace
from repro.telemetry.events import EVENTS, events_pass_hook
from repro.telemetry.history import HistoryRecord, HistoryStore, open_history, spearman_rho
from repro.telemetry.metrics import METRICS
from repro.core.options import MappingOptions
from repro.ir.printer import program_to_c
from repro.ir.program import Program
from repro.machine.spec import GEFORCE_8800_GTX, GPUSpec, GridSpec
from repro.autotune.backends import EvaluationBackend, resolve_backend
from repro.autotune.cache import TuningCache, fingerprint
from repro.autotune.distspace import DistributedSpace
from repro.autotune.evaluate import ConfigurationEvaluator, EvaluationResult
from repro.autotune.search import (
    EXECUTORS,
    SearchStrategy,
    make_batch_evaluator,
    resolve_strategy,
)
from repro.autotune.space import ConfigurationSpace, SpaceOptions

TUNING_REQUESTS_TOTAL = METRICS.counter(
    "repro_tuning_requests_total",
    "autotune() requests by answer source",
    labels=("source",),
)
REQUEST_SECONDS = METRICS.histogram(
    "repro_request_seconds", "end-to-end autotune() wall time in seconds"
)
MEASURE_PARALLELISM = METRICS.gauge(
    "repro_measure_parallelism",
    "concurrent measurement workers of the most recent wall-clock request",
)


@dataclass
class TuningReport:
    """Everything one tuning request produced."""

    kernel_name: str
    fingerprint: str
    strategy: str
    spec_name: str
    best: EvaluationResult
    baseline: EvaluationResult
    results: List[EvaluationResult] = field(default_factory=list)
    from_cache: bool = False
    seed: int = 0
    #: evaluation-backend URI the request ran under (provenance)
    backend: str = "model:"

    @property
    def num_evaluations(self) -> int:
        return len(self.results)

    @property
    def speedup_over_baseline(self) -> float:
        """Modelled baseline time over best time (≥ 1 when tuning helped)."""
        if self.best.time_ms == 0:
            return float("inf")
        return self.baseline.time_ms / self.best.time_ms

    def summary(self) -> str:
        best = self.best
        tiles = ", ".join(f"{k}={v}" for k, v in best.configuration.tile_sizes)
        source = "cache" if self.from_cache else f"{self.num_evaluations} evaluations"
        kind = best.measurement_kind
        provenance = "" if kind == "model" else f" via {kind}"
        extras = "".join(f" {k}={v}" for k, v in best.configuration.extras)
        return (
            f"{self.kernel_name}: best {best.time_ms:.3f} ms "
            f"(baseline {self.baseline.time_ms:.3f} ms, "
            f"{self.speedup_over_baseline:.2f}x) — blocks={best.configuration.num_blocks} "
            f"threads={best.configuration.threads_per_block} tiles[{tiles}] "
            f"scratchpad={'on' if best.configuration.use_scratchpad else 'off'}"
            f"{extras} [{source}]{provenance}"
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kernel_name": self.kernel_name,
            "fingerprint": self.fingerprint,
            "strategy": self.strategy,
            "spec_name": self.spec_name,
            "best": self.best.to_dict(),
            "baseline": self.baseline.to_dict(),
            "results": [r.to_dict() for r in self.results],
            "seed": self.seed,
            "backend": self.backend,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any], from_cache: bool = False) -> "TuningReport":
        return cls(
            kernel_name=payload["kernel_name"],
            fingerprint=payload["fingerprint"],
            strategy=payload["strategy"],
            spec_name=payload["spec_name"],
            best=EvaluationResult.from_dict(payload["best"]),
            baseline=EvaluationResult.from_dict(payload["baseline"]),
            results=[EvaluationResult.from_dict(r) for r in payload.get("results", [])],
            from_cache=from_cache,
            seed=payload.get("seed", 0),
            backend=payload.get("backend", "model:"),
        )


@dataclass
class TuningJob:
    """One (program, problem-size) pair of a batch tuning request."""

    program: Program
    param_values: Optional[Mapping[str, int]] = None
    label: Optional[str] = None

    @property
    def name(self) -> str:
        return self.label or self.program.name


def _prepare_request(
    program: Program,
    spec: GPUSpec,
    param_values: Optional[Mapping[str, int]],
    options: Optional[MappingOptions],
    strategy: Union[str, SearchStrategy],
    seed: int,
    space_options: Optional[SpaceOptions],
    check_correctness: bool,
    check_program: Optional[Program],
    backend: Union[str, EvaluationBackend, None] = None,
    artifact_cache: Optional[ArtifactCache] = None,
    grid: Optional[GridSpec] = None,
):
    """Resolve one tuning request into (options, strategy, space, fingerprint).

    Shared by :func:`autotune` and :func:`tuning_fingerprint` so the key the
    tuning service deduplicates on is byte-identical to the key the cache
    stores under.  Building the space is cheap (the session's analysis stage:
    band analysis and loop extents — no pipeline compile happens here); the
    same :class:`CompilationSession` later feeds the evaluator, so one
    request runs affine analysis exactly once however many candidates it
    evaluates.

    The backend identity is a fingerprint ingredient: the same kernel tuned
    under ``model:`` and under ``measure-py:`` occupies two distinct cache
    keys (modelled and measured milliseconds are not comparable, so one must
    never answer for the other).  Wall-clock backends additionally
    fingerprint the input ``seed``.
    """
    options = options or MappingOptions()
    strategy = resolve_strategy(strategy, seed=seed)
    backend = resolve_backend(backend)
    if grid is not None and not getattr(backend, "supports_distributed", False):
        raise ValueError(
            f"backend {backend.uri()!r} cannot price distributed (PE-grid) "
            "mappings; tune distributed kernels under the model: backend"
        )
    compile_session = CompilationSession(
        program, spec=spec, options=options, param_values=param_values
    )
    if trace.active_trace() is not None:
        # Attach before the space construction below triggers the analysis
        # pass, so a traced request shows analysis as its first pass span.
        compile_session.manager.add_hook(trace.trace_pass_hook)
    if EVENTS.enabled("debug"):
        # debug-level log narration of every compiler stage (stage.complete)
        compile_session.manager.add_hook(events_pass_hook)
    if artifact_cache is not None:
        # must precede the space construction below: it triggers the analysis
        # pass, and adoption after the fact would install nothing.  The cache
        # never enters the request fingerprint — where an artifact came from
        # cannot change what the request computes.
        artifact_cache.adopt(compile_session)
    if grid is not None:
        # Distributed request: the space enumerates SUMMA mappings onto the
        # grid, and its describe() embeds the GridSpec — which is how the
        # grid target enters the fingerprint below.
        space: ConfigurationSpace = DistributedSpace(
            program,
            grid,
            spec=spec,
            param_values=param_values,
            base_options=options,
            space_options=space_options or SpaceOptions(),
            session=compile_session,
        )
    else:
        space = ConfigurationSpace(
            program,
            spec=spec,
            param_values=param_values,
            base_options=options,
            space_options=space_options or SpaceOptions(),
            session=compile_session,
        )
    check_signature: Dict[str, Any] = {"enabled": check_correctness}
    if check_correctness:
        # The spot-check program and input seed change every `correct` verdict.
        check_signature["seed"] = seed
        check_signature["program"] = program_to_c(check_program or program)
    backend_signature = dict(backend.signature())
    if not backend.deterministic:
        backend_signature["seed"] = seed
    key = fingerprint(
        program,
        spec,
        param_values,
        options,
        strategy.signature(),
        space.describe(),
        check_signature,
        backend_signature,
    )
    return options, strategy, space, key, compile_session, backend


def tuning_fingerprint(
    program: Program,
    spec: GPUSpec = GEFORCE_8800_GTX,
    param_values: Optional[Mapping[str, int]] = None,
    options: Optional[MappingOptions] = None,
    strategy: Union[str, SearchStrategy] = "pruned",
    seed: int = 0,
    space_options: Optional[SpaceOptions] = None,
    check_correctness: bool = False,
    check_program: Optional[Program] = None,
    backend: Union[str, EvaluationBackend, None] = None,
    grid: Optional[GridSpec] = None,
) -> str:
    """The cache fingerprint :func:`autotune` would use for this request.

    Lets callers (notably :mod:`repro.service`) deduplicate identical
    in-flight requests and probe the cache without starting a tuning run.
    """
    _options, _strategy, _space, key, _session, _backend = _prepare_request(
        program, spec, param_values, options, strategy, seed,
        space_options, check_correctness, check_program, backend,
        grid=grid,
    )
    return key


def _model_measured_pairs(
    results: Sequence[EvaluationResult],
) -> List[Any]:
    """(model_ms, measured_ms) pairs the hybrid backend stamped while
    re-measuring survivors (``measurement.metadata["model_time_ms"]``)."""
    pairs = []
    for result in results:
        measurement = result.measurement
        if measurement is not None and "model_time_ms" in measurement.metadata:
            pairs.append((measurement.metadata["model_time_ms"], result.time_ms))
    return pairs


def autotune(
    program: Program,
    spec: GPUSpec = GEFORCE_8800_GTX,
    param_values: Optional[Mapping[str, int]] = None,
    options: Optional[MappingOptions] = None,
    strategy: Union[str, SearchStrategy] = "pruned",
    max_workers: int = 1,
    executor: str = "thread",
    cache: Union[TuningCache, str, Path, None] = None,
    seed: int = 0,
    space_options: Optional[SpaceOptions] = None,
    check_correctness: bool = False,
    check_program: Optional[Program] = None,
    backend: Union[str, EvaluationBackend, None] = None,
    history: Union[HistoryStore, str, Path, None] = None,
    artifact_cache: Union[ArtifactCache, bool, None] = None,
    grid: Optional[GridSpec] = None,
) -> TuningReport:
    """Empirically tune the mapping of ``program`` on ``spec``.

    Parameters
    ----------
    strategy:
        ``"exhaustive"``, ``"pruned"`` (default), ``"hillclimb"``, or a
        :class:`SearchStrategy` instance.
    max_workers:
        Evaluate candidates on a pool of this size; the report is identical
        for any worker count.
    executor:
        ``"thread"`` (default) or ``"process"`` — worker processes escape the
        GIL for cold tuning runs (falling back to threads with a warning when
        the program is not picklable).
    cache:
        A :class:`TuningCache`, or a store spec it accepts (a ``.json``
        path, ``dir:DIR`` for the sharded store, ``log:FILE`` for the
        append log); a warm entry is returned without a single pipeline
        compile.
    seed:
        Drives every randomised search path (and the correctness spot-check
        and measured-backend inputs), making runs reproducible.
    check_correctness / check_program:
        Also verify each configuration through the reference interpreter
        (against ``check_program`` when the tuned problem is too large to
        interpret).
    backend:
        How candidates get a cost: a URI string (``"model:"`` — the default
        analytical pricing — ``"measure-py:"``, ``"measure-c:cc=gcc"``,
        ``"hybrid:model>measure-py?top=8"``) or an
        :class:`~repro.autotune.backends.EvaluationBackend` instance.  The
        backend identity is part of the cache fingerprint, so model-priced
        and measured reports never answer for each other.  Raises
        :class:`~repro.autotune.backends.BackendUnavailable` before any
        tuning work when the host cannot run the backend.
    history:
        A :class:`~repro.telemetry.history.HistoryStore` (or a JSONL path
        one accepts); every completed request — warm hits included —
        appends one :class:`~repro.telemetry.history.HistoryRecord` there.
        The record is also attached to the returned report as
        ``report.history_record`` (even when no store is given), which is
        how the tuning service ships it back from worker processes.
    artifact_cache:
        Opt-in cross-request sharing of config-invariant artifacts: ``True``
        selects the process-wide :data:`~repro.compiler.
        GLOBAL_ARTIFACT_CACHE`, or pass an :class:`~repro.compiler.
        ArtifactCache` instance.  A second request for the same (program,
        binding, spec) then runs affine analysis **zero** times.  Never part
        of the request fingerprint.
    grid:
        A :class:`~repro.machine.GridSpec` makes this a *distributed* tuning
        request: the space becomes a
        :class:`~repro.autotune.distspace.DistributedSpace` of SUMMA
        mappings onto the PE grid, candidates are priced on
        :mod:`repro.distmodel` (``model:`` backend only; provenance
        ``model-dist``), and the grid enters the cache fingerprint via the
        space description — the same kernel tuned against two grids never
        shares a cache entry or a history regression group.
    """
    if max_workers <= 0:
        raise ValueError("max_workers must be positive")
    if executor not in EXECUTORS:
        raise ValueError(f"executor must be one of {EXECUTORS}, got {executor!r}")
    if cache is not None and not isinstance(cache, TuningCache):
        cache = TuningCache(cache)
    if artifact_cache is True:
        artifact_cache = GLOBAL_ARTIFACT_CACHE
    elif artifact_cache is False:
        artifact_cache = None
    history = open_history(history)
    # Family parameters that are part of the kernel identity (history
    # grouping): a distributed request tuned against a 16x16 fabric must not
    # share a regression baseline with one tuned against an 8x8 fabric.
    variant = f"{grid.grid_p}x{grid.grid_p}:{grid.name}" if grid is not None else ""
    started = time.perf_counter()
    # fallback=True: candidate spans opened on evaluator pool threads adopt
    # this span as their parent (see repro.telemetry.trace).
    with trace.span(
        "request", kind="request", kernel=program.name, fallback=True
    ) as request_span:
        options, strategy, space, key, compile_session, backend = _prepare_request(
            program, spec, param_values, options, strategy, seed,
            space_options, check_correctness, check_program, backend,
            artifact_cache=artifact_cache,
            grid=grid,
        )
        if artifact_cache is not None:
            # the space construction just froze (or adopted) the analysis
            # artifact — publish it so the *next* request with this identity
            # runs analysis zero times (warm tuning-cache hits included)
            artifact_cache.publish(compile_session)
        request_span.annotate(
            strategy=strategy.name, backend=backend.uri(), fingerprint=key[:16]
        )
        collector = trace.active_trace()
        trace_id = collector.trace_id if collector is not None else None
        if trace_id is not None:
            request_span.annotate(trace_id=trace_id)
        if cache is not None:
            stored = cache.get(key)
            if stored is not None:
                request_span.annotate(source="cache")
                TUNING_REQUESTS_TOTAL.inc(source="cache")
                REQUEST_SECONDS.observe(time.perf_counter() - started)
                report = TuningReport.from_dict(stored, from_cache=True)
                record = HistoryRecord(
                    kernel=report.kernel_name,
                    fingerprint=key,
                    spec_name=report.spec_name,
                    strategy=report.strategy,
                    backend=report.backend,
                    cache_hit=True,
                    winner_ms=report.best.time_ms,
                    winner_kind=report.best.measurement_kind,
                    baseline_ms=report.baseline.time_ms,
                    evaluations=0,
                    wall_s=time.perf_counter() - started,
                    trace_id=trace_id,
                    seed=report.seed,
                    variant=variant,
                )
                report.history_record = record
                if history is not None:
                    history.append(record)
                return report

        if max_workers > 1 and backend.measures_wall_clock:
            # K concurrent timed runs contend for the same cores and inflate
            # each other's perf_counter windows — the times the search trusts
            # would be run-order noise.  A backend that serializes its timed
            # section under TIMED_SECTION_LOCK advertises measurement_workers
            # > 1: replay/exec/warmup then overlap on threads (the lock is
            # per-process, so a process pool would not serialize anything)
            # while recorded numbers stay contention-free.  (A hybrid with a
            # model primary keeps its parallel search; its measured re-rank
            # delegates to the leaf.  After the cache check: a warm hit
            # evaluates nothing to serialize.)
            backend_workers = getattr(backend, "measurement_workers", 1)
            if backend_workers > 1:
                max_workers = min(max_workers, backend_workers)
                executor = "thread"
            else:
                warnings.warn(
                    f"backend {backend.uri()!r} times real executions; serializing "
                    f"evaluation (max_workers {max_workers} -> 1) so concurrent "
                    "candidates cannot skew each other's measurements",
                    RuntimeWarning,
                    stacklevel=2,
                )
                max_workers = 1
        if backend.measures_wall_clock:
            MEASURE_PARALLELISM.set(max_workers)

        evaluator = ConfigurationEvaluator(
            program,
            spec=spec,
            param_values=param_values,
            base_options=options,
            check_correctness=check_correctness,
            check_program=check_program,
            seed=seed,
            session=compile_session,
            backend=backend,
            grid=grid,
        )
        with make_batch_evaluator(
            evaluator, max_workers=max_workers, executor=executor
        ) as evaluate_many:
            with trace.span(
                "search", kind="search", strategy=strategy.name, fallback=True
            ):
                results = strategy.run(space, evaluate_many)
        if not results:
            raise ValueError("search strategy produced no evaluations")

        seed_config = space.seed_configuration()
        # The backend's post-search pass: the hybrid backend re-measures the
        # top-K survivors (and the baseline) here; winner selection is the
        # backend's too, so a model-priced survivor can never outrank a
        # measured one on incomparable milliseconds.
        with trace.span("finalize", kind="finalize", backend=backend.uri()):
            EVENTS.emit(
                "request.finalize",
                level="debug",
                kernel=program.name,
                backend=backend.uri(),
                survivors=len(results),
            )
            results = evaluator.finalize(results, ensure=(seed_config,))
        baseline = next(
            (r for r in results if r.configuration == seed_config), results[0]
        )
        report = TuningReport(
            kernel_name=program.name,
            fingerprint=key,
            strategy=strategy.name,
            spec_name=spec.name,
            best=evaluator.select_best(results),
            baseline=baseline,
            results=results,
            seed=seed,
            backend=backend.uri(),
        )
        if cache is not None:
            cache.put(key, report.to_dict())
            EVENTS.emit(
                "cache.put", level="debug", kernel=program.name, fingerprint=key[:16]
            )
        request_span.annotate(
            source="tuned", evaluations=len(results), best_ms=report.best.time_ms
        )
        TUNING_REQUESTS_TOTAL.inc(source="tuned")
        wall_s = time.perf_counter() - started
        REQUEST_SECONDS.observe(wall_s)
        pairs = _model_measured_pairs(results)
        rho = (
            spearman_rho([p[0] for p in pairs], [p[1] for p in pairs])
            if len(pairs) >= 2
            else None
        )
        record = HistoryRecord(
            kernel=report.kernel_name,
            fingerprint=key,
            spec_name=report.spec_name,
            strategy=report.strategy,
            backend=report.backend,
            cache_hit=False,
            winner_ms=report.best.time_ms,
            winner_kind=report.best.measurement_kind,
            baseline_ms=report.baseline.time_ms,
            evaluations=len(results),
            stage_seconds={
                row["stage"]: row["total_ms"] / 1e3
                for row in compile_session.stage_report()
            },
            rho=rho,
            wall_s=wall_s,
            trace_id=trace_id,
            seed=seed,
            variant=variant,
        )
        report.history_record = record
        if history is not None:
            history.append(record)
        return report


def autotune_batch(
    jobs: Sequence[Union[TuningJob, Program]],
    spec: GPUSpec = GEFORCE_8800_GTX,
    **kwargs: Any,
) -> List[TuningReport]:
    """Tune many (kernel, problem-size) pairs in one call.

    Jobs may be bare programs or :class:`TuningJob` instances; every keyword
    of :func:`autotune` applies to each job, so one shared cache serves the
    whole batch.
    """
    cache = kwargs.get("cache")
    if cache is not None and not isinstance(cache, TuningCache):
        # open the store once for the whole batch, not once per job
        kwargs["cache"] = TuningCache(cache)
    if kwargs.get("history") is not None:
        kwargs["history"] = open_history(kwargs["history"])
    reports: List[TuningReport] = []
    for job in jobs:
        if isinstance(job, Program):
            job = TuningJob(program=job)
        report = autotune(
            job.program, spec=spec, param_values=job.param_values, **kwargs
        )
        if job.label:
            report.kernel_name = job.label
        reports.append(report)
    return reports
