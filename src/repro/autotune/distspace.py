"""The distributed-GEMM configuration space.

A :class:`DistributedSpace` enumerates :class:`~repro.distmodel.SummaMapping`
points — sub-grid size, Mt/Nt/Kt tiles, blocking-vs-pipelined broadcast
schedule and pipeline depth — as ordinary
:class:`~repro.autotune.space.Configuration` objects so every existing
search strategy, executor pool, cache and report works unchanged:

* ``num_blocks`` carries the PE count (``grid_p²``), ``threads_per_block``
  is 1 (one PE runs one tile serially), the three tile sizes ride on the
  program's own loops, and the family parameters (``grid_p``, ``schedule``,
  ``depth``) travel in :attr:`Configuration.extras`;
* pruning mirrors the single-device space's model-pruning role: the
  sub-grid must divide the problem and fit the fabric, tiles must divide
  their per-PE blocks, and the per-PE footprint (including the pipeline's
  ``depth + 1`` panel-buffer sets) must fit the PE memory;
* ``enumerate``'s per-geometry cap ranks tile vectors per
  (grid, schedule, depth) geometry by the distmodel's priced cycles —
  cheap, since the pricing is analytical;
* :meth:`DistributedSpace.describe` embeds the full
  :class:`~repro.machine.GridSpec`, which puts the grid target into every
  request fingerprint.
"""

from __future__ import annotations

import math
from dataclasses import asdict
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.compiler import CompilationSession
from repro.core.options import MappingOptions
from repro.distmodel.gemm import (
    SCHEDULES,
    SummaMapping,
    gemm_schedule,
    mapping_infeasible_reason,
)
from repro.ir.program import Program
from repro.machine.spec import GEFORCE_8800_GTX, GPUSpec, GridSpec
from repro.autotune.space import _DEFER, Configuration, ConfigurationSpace, SpaceOptions

#: pipeline depths the space considers under the pipelined schedule
DEPTH_CHOICES: Tuple[int, ...] = (1, 2, 4)


def divisors(value: int) -> List[int]:
    """All positive divisors of ``value``, ascending."""
    result = [d for d in range(1, int(math.isqrt(value)) + 1) if value % d == 0]
    return sorted(set(result + [value // d for d in result]))


def _spread(values: Sequence[int], count: int) -> List[int]:
    """Up to ``count`` values spread across a sorted sequence (ends included)."""
    if len(values) <= count:
        return list(values)
    picks = {values[round(i * (len(values) - 1) / (count - 1))] for i in range(count)}
    return sorted(picks)


def summa_mapping(
    config: Configuration, loop_order: Sequence[str]
) -> Optional[SummaMapping]:
    """The SUMMA mapping a configuration encodes, or ``None`` if single-device.

    ``loop_order`` names the program's (m, n, k) loops — the first two space
    loops carry Mt/Nt, the reduction loop carries Kt.
    """
    extras = config.extras_dict
    if "grid_p" not in extras:
        return None
    tiles = config.tile_dict
    loop_m, loop_n, loop_k = loop_order[0], loop_order[1], loop_order[2]
    return SummaMapping(
        grid_p=int(extras["grid_p"]),
        mt=int(tiles[loop_m]),
        nt=int(tiles[loop_n]),
        kt=int(tiles[loop_k]),
        schedule=str(extras.get("schedule", "pipelined")),
        depth=int(extras.get("depth", 1)),
    )


class DistributedSpace(ConfigurationSpace):
    """Enumerates footprint-pruned SUMMA mappings for one GEMM program."""

    def __init__(
        self,
        program: Program,
        grid: GridSpec,
        spec: GPUSpec = GEFORCE_8800_GTX,
        param_values: Optional[Mapping[str, int]] = None,
        base_options: Optional[MappingOptions] = None,
        space_options: Optional[SpaceOptions] = None,
        session: Optional[CompilationSession] = None,
    ) -> None:
        super().__init__(
            program,
            spec=spec,
            param_values=param_values,
            base_options=base_options,
            space_options=space_options,
            session=session,
        )
        self.grid = grid
        loops = list(self.analysis.loop_order)
        if len(loops) != 3:
            raise ValueError(
                f"the distributed-GEMM space needs a 3-loop program, "
                f"got loops {loops} in {program.name!r}"
            )
        self.loop_m, self.loop_n, self.loop_k = loops
        self.m = self.extents[self.loop_m]
        self.n = self.extents[self.loop_n]
        self.k = self.extents[self.loop_k]

    # -- mapping <-> configuration -----------------------------------------------------
    def configuration(self, mapping: SummaMapping) -> Configuration:
        return Configuration.make(
            num_blocks=mapping.grid_p * mapping.grid_p,
            threads_per_block=1,
            tile_sizes={
                self.loop_m: mapping.mt,
                self.loop_n: mapping.nt,
                self.loop_k: mapping.kt,
            },
            use_scratchpad=False,
            extras={
                "grid_p": mapping.grid_p,
                "schedule": mapping.schedule,
                "depth": mapping.depth,
            },
        )

    def mapping(self, config: Configuration) -> SummaMapping:
        mapped = summa_mapping(config, (self.loop_m, self.loop_n, self.loop_k))
        if mapped is None:
            raise ValueError(f"configuration {config.key()} carries no grid mapping")
        return mapped

    def _feasible(self, mapping: SummaMapping) -> bool:
        return mapping_infeasible_reason(self.m, self.n, self.k, mapping, self.grid) is None

    def priced_cycles(self, mapping: SummaMapping) -> float:
        return gemm_schedule(self.m, self.n, self.k, mapping, self.grid).total_cycles

    # -- enumeration -------------------------------------------------------------------
    def grid_choices(self) -> List[int]:
        """Sub-grid dimensions that divide every problem dimension."""
        shared = math.gcd(self.m, math.gcd(self.n, self.k))
        return [p for p in divisors(shared) if 2 <= p <= self.grid.grid_p]

    def seed_configuration(self) -> Configuration:
        """The canonical SUMMA baseline: largest feasible grid, blocking
        broadcasts, whole per-PE blocks as tiles (no pipeline buffers)."""
        if self._seed is None:
            for p in reversed(self.grid_choices()):
                mapping = SummaMapping(
                    grid_p=p,
                    mt=self.m // p,
                    nt=self.n // p,
                    kt=self.k // p,
                    schedule="blocking",
                    depth=1,
                )
                if self._feasible(mapping):
                    self._seed = self.configuration(mapping)
                    break
            else:
                raise ValueError(
                    f"no feasible SUMMA sub-grid for problem "
                    f"{self.m}x{self.n}x{self.k} on fabric "
                    f"{self.grid.grid_p}x{self.grid.grid_p}"
                )
        return self._seed

    def enumerate(self, limit_per_geometry: Any = _DEFER) -> List[Configuration]:
        """All feasible mappings, seed first, priced-ranked per geometry."""
        if limit_per_geometry is _DEFER:
            limit_per_geometry = self.space.tile_candidates_per_geometry
        configs: List[Configuration] = [self.seed_configuration()]
        seen = {configs[0]}
        for p in self.grid_choices():
            mt_choices = _spread(divisors(self.m // p), 3)
            nt_choices = _spread(divisors(self.n // p), 3)
            kt_choices = _spread(divisors(self.k // p), 3)
            for schedule in SCHEDULES:
                depths = (1,) if schedule == "blocking" else DEPTH_CHOICES
                for depth in depths:
                    ranked: List[Tuple[float, Configuration]] = []
                    for mt in mt_choices:
                        for nt in nt_choices:
                            for kt in kt_choices:
                                mapping = SummaMapping(
                                    grid_p=p, mt=mt, nt=nt, kt=kt,
                                    schedule=schedule, depth=depth,
                                )
                                if not self._feasible(mapping):
                                    continue
                                ranked.append(
                                    (self.priced_cycles(mapping), self.configuration(mapping))
                                )
                    ranked.sort(key=lambda entry: (entry[0], entry[1].key()))
                    if limit_per_geometry is not None:
                        ranked = ranked[:limit_per_geometry]
                    for _cycles, config in ranked:
                        if config not in seen:
                            seen.add(config)
                            configs.append(config)
        return configs

    def neighbours(self, config: Configuration) -> List[Configuration]:
        """One-knob moves: step a tile along its divisor chain, step the
        sub-grid, toggle the schedule, halve/double the pipeline depth."""
        mapping = self.mapping(config)
        moves: List[SummaMapping] = []
        p = mapping.grid_p

        def step(chain: List[int], value: int) -> List[int]:
            try:
                index = chain.index(value)
            except ValueError:
                return []
            return [chain[i] for i in (index - 1, index + 1) if 0 <= i < len(chain)]

        for mt in step(divisors(self.m // p), mapping.mt):
            moves.append(SummaMapping(p, mt, mapping.nt, mapping.kt, mapping.schedule, mapping.depth))
        for nt in step(divisors(self.n // p), mapping.nt):
            moves.append(SummaMapping(p, mapping.mt, nt, mapping.kt, mapping.schedule, mapping.depth))
        for kt in step(divisors(self.k // p), mapping.kt):
            moves.append(SummaMapping(p, mapping.mt, mapping.nt, kt, mapping.schedule, mapping.depth))
        for new_p in step(self.grid_choices(), p):
            # rescale each tile to the largest divisor of its new per-PE
            # block not exceeding the old tile
            def fit(block: int, tile: int) -> int:
                return max(d for d in divisors(block) if d <= tile)
            moves.append(
                SummaMapping(
                    new_p,
                    fit(self.m // new_p, mapping.mt),
                    fit(self.n // new_p, mapping.nt),
                    fit(self.k // new_p, mapping.kt),
                    mapping.schedule,
                    mapping.depth,
                )
            )
        other = "blocking" if mapping.schedule == "pipelined" else "pipelined"
        moves.append(
            SummaMapping(p, mapping.mt, mapping.nt, mapping.kt, other,
                         1 if other == "blocking" else mapping.depth)
        )
        if mapping.schedule == "pipelined":
            for depth in (mapping.depth // 2, mapping.depth * 2):
                if depth >= 1:
                    moves.append(
                        SummaMapping(p, mapping.mt, mapping.nt, mapping.kt,
                                     "pipelined", depth)
                    )

        feasible: List[Configuration] = []
        seen = {config}
        for move in moves:
            if not self._feasible(move):
                continue
            candidate = self.configuration(move)
            if candidate not in seen:
                seen.add(candidate)
                feasible.append(candidate)
        return feasible

    def describe(self) -> Dict[str, Any]:
        """Parent description plus the grid target and family axes.

        Embedding ``asdict(grid)`` is what puts the :class:`GridSpec` into
        the request fingerprint (and therefore into cache keys).
        """
        payload = super().describe()
        payload["family"] = "distributed-gemm"
        payload["grid"] = asdict(self.grid)
        payload["schedules"] = list(SCHEDULES)
        payload["depth_choices"] = list(DEPTH_CHOICES)
        payload["grid_choices"] = self.grid_choices()
        return payload
