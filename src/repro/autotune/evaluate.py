"""Costing (and optionally verifying) one mapping configuration.

An evaluation replays a :class:`~repro.autotune.space.Configuration` through
a shared :class:`repro.compiler.CompilationSession` and asks a pluggable
:class:`~repro.autotune.backends.EvaluationBackend` what it costs — the
analytical GPU model by default (``model:``, the stand-in for a run on the
paper's GeForce 8800 GTX), or a *measured* backend that actually executes
the mapped program (``measure-py:`` / ``measure-c:`` / ``hybrid:...`` — see
:mod:`repro.autotune.backends`).  Because the session freezes the
config-invariant affine-analysis artifacts, a tuning request analyses the
program **once** and every candidate replays only the tiling/scratchpad/
mapping stages (set ``reuse_analysis=False`` to recover the legacy
one-monolithic-compile-per-candidate behaviour, e.g. for benchmarking the
difference).  Configurations the machine cannot execute (e.g. a block's
buffers exceed the scratchpad) come back infeasible rather than raising, so
search strategies can treat the evaluator as total.

Every :class:`EvaluationResult` carries its :class:`~repro.autotune.backends.
Measurement` — ``measurement.kind`` records whether the time was modelled or
measured, and travels into reports and the persistent cache.

With ``check_correctness`` enabled the mapped program is additionally run
through the reference interpreter against the original program on small
seeded random inputs — the same oracle the repo's transformation tests use.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Union

import numpy as np

from repro.compiler import CompilationSession
from repro.core.options import MappingOptions
from repro.ir.program import Program
from repro.machine.spec import GEFORCE_8800_GTX, GPUSpec, GridSpec
from repro.runtime.interpreter import run_program
from repro.telemetry import trace
from repro.autotune.backends import EvaluationBackend, Measurement, resolve_backend
from repro.autotune.space import Configuration


@dataclass
class EvaluationResult:
    """Outcome of costing one configuration."""

    configuration: Configuration
    time_ms: float
    cycles: float
    feasible: bool
    error: Optional[str] = None
    shared_bytes_per_block: int = 0
    breakdown: Dict[str, float] = field(default_factory=dict)
    #: ``None`` when no spot-check ran, otherwise the verdict
    correct: Optional[bool] = None
    #: how ``time_ms`` was obtained (kind, per-run samples, ...)
    measurement: Optional[Measurement] = None

    @property
    def measurement_kind(self) -> str:
        """Provenance of the time: ``model`` unless a backend measured it."""
        return self.measurement.kind if self.measurement is not None else "model"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "configuration": self.configuration.to_dict(),
            "time_ms": self.time_ms,
            "cycles": self.cycles,
            "feasible": self.feasible,
            "error": self.error,
            "shared_bytes_per_block": self.shared_bytes_per_block,
            "breakdown": dict(self.breakdown),
            "correct": self.correct,
            "measurement": self.measurement.to_dict() if self.measurement else None,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "EvaluationResult":
        measurement = payload.get("measurement")
        return cls(
            configuration=Configuration.from_dict(payload["configuration"]),
            time_ms=payload["time_ms"],
            cycles=payload["cycles"],
            feasible=payload["feasible"],
            error=payload.get("error"),
            shared_bytes_per_block=payload.get("shared_bytes_per_block", 0),
            breakdown=dict(payload.get("breakdown", {})),
            correct=payload.get("correct"),
            measurement=Measurement.from_dict(measurement) if measurement else None,
        )


def result_from_measurement(
    config: Configuration, measurement: Measurement
) -> EvaluationResult:
    """Wrap a backend measurement into an :class:`EvaluationResult`."""
    metadata = measurement.metadata
    return EvaluationResult(
        configuration=config,
        time_ms=measurement.time_ms,
        cycles=metadata.get("cycles", float("inf")),
        feasible=measurement.feasible,
        error=measurement.error,
        shared_bytes_per_block=metadata.get("shared_bytes_per_block", 0),
        breakdown=dict(metadata.get("breakdown", {})),
        measurement=measurement,
    )


class ConfigurationEvaluator:
    """Costs configurations of one (program, machine, params) instance.

    A thin orchestrator: the shared compilation session and the correctness
    spot-check live here; *how* a candidate gets a cost is the pluggable
    ``backend``'s business (a URI string, an
    :class:`~repro.autotune.backends.EvaluationBackend` instance, or ``None``
    for the analytical model).
    """

    def __init__(
        self,
        program: Program,
        spec: GPUSpec = GEFORCE_8800_GTX,
        param_values: Optional[Mapping[str, int]] = None,
        base_options: Optional[MappingOptions] = None,
        check_correctness: bool = False,
        check_program: Optional[Program] = None,
        seed: int = 0,
        session: Optional[CompilationSession] = None,
        reuse_analysis: bool = True,
        backend: Union[str, EvaluationBackend, None] = None,
        grid: Optional[GridSpec] = None,
    ) -> None:
        """``check_program``: a small-size twin of ``program`` to verify
        functionally (defaults to ``program`` itself — only sensible when the
        problem is small enough for the interpreter).

        ``session``: an existing :class:`CompilationSession` whose frozen
        analysis artifacts the evaluations should reuse (one is created
        lazily otherwise).  ``reuse_analysis=False`` compiles every
        configuration from a cold session — the legacy monolithic
        ``compile_with_config`` cost model, kept for benchmarking.

        ``backend``: raises :class:`~repro.autotune.backends.
        BackendUnavailable` eagerly when the host cannot run it (e.g.
        ``measure-c:`` without a toolchain) — a doomed request must fail
        before any tuning work starts.

        ``grid``: the PE-grid target of a *distributed* tuning request —
        attached to the backend (which prices grid mappings on
        :mod:`repro.distmodel`) before it is prepared.
        """
        self.program = program
        self.spec = spec
        self.grid = grid
        self.param_values = dict(param_values or {})
        self.base_options = base_options or MappingOptions()
        self.check_correctness = check_correctness
        self.check_program = check_program or program
        self.seed = seed
        self.reuse_analysis = reuse_analysis
        self.backend = resolve_backend(backend)
        if grid is not None:
            self.backend.set_grid(grid)
        self._session = session
        self._check_session: Optional[CompilationSession] = None
        self._lock = threading.Lock()
        self._prepared = False
        # fail fast on unavailable backends (and freeze per-request state)
        self._ensure_prepared()

    # The sessions and backend travel with the evaluator to process-pool
    # workers (they pickle minus their locks), frozen analysis artifacts
    # included — a worker replays candidates without ever re-running the
    # analysis stage.
    def __getstate__(self) -> Dict[str, Any]:
        state = dict(self.__dict__)
        state["_lock"] = None
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()
        # PassManager hooks are dropped on pickle by contract (see
        # PassManager.__getstate__); when this process is tracing, re-attach
        # the telemetry pass hook so worker-side pass spans are not lost.
        if trace.active_trace() is not None and self._session is not None:
            self._session.manager.add_hook(trace.trace_pass_hook)

    def _fresh_session(
        self, program: Program, with_params: bool = True
    ) -> CompilationSession:
        session = CompilationSession(
            program,
            spec=self.spec,
            options=self.base_options,
            param_values=self.param_values if with_params else None,
        )
        if trace.active_trace() is not None:
            session.manager.add_hook(trace.trace_pass_hook)
        return session

    @property
    def session(self) -> CompilationSession:
        """The shared compilation session (created lazily, thread-safe)."""
        with self._lock:
            if self._session is None:
                self._session = self._fresh_session(self.program)
            return self._session

    def _ensure_prepared(self) -> None:
        """Prepare the backend once (idempotent; re-runs after unpickling)."""
        if self._prepared and self.backend.prepared:
            return
        self.backend.prepare(
            self.session,
            self.spec,
            seed=self.seed,
            reuse_analysis=self.reuse_analysis,
        )
        self._prepared = True

    def evaluate(self, config: Configuration) -> EvaluationResult:
        """Compile, cost, and optionally spot-check one configuration."""
        self._ensure_prepared()
        with trace.span(
            "candidate",
            kind="candidate",
            blocks=config.num_blocks,
            threads=config.threads_per_block,
            scratchpad=config.use_scratchpad,
        ) as item:
            result = result_from_measurement(config, self.backend.measure(config))
            if result.feasible and self.check_correctness:
                with trace.span("spot-check", kind="check"):
                    result.correct = self.spot_check(config)
            item.annotate(time_ms=result.time_ms, feasible=result.feasible)
        return result

    def finalize(self, results: List[EvaluationResult], ensure=()) -> List[EvaluationResult]:
        """The backend's post-search hook (hybrid re-ranking; default no-op)."""
        self._ensure_prepared()
        return self.backend.finalize(results, self, ensure=ensure)

    def select_best(self, results: List[EvaluationResult]) -> EvaluationResult:
        """The backend's winner among finalized results."""
        return self.backend.select_best(results)

    def spot_check(self, config: Configuration) -> bool:
        """Interpret the mapped small-size program against the reference."""
        program = self.check_program
        with self._lock:
            if self._check_session is None:
                # The spot-check always runs at the check program's default
                # parameters (it must stay small enough to interpret).
                self._check_session = self._fresh_session(program, with_params=False)
            session = self._check_session
        mapped = session.replay(from_stage="tiling", config=config)
        inputs = self._random_inputs(program)
        reference = run_program(program, inputs={k: v.copy() for k, v in inputs.items()})
        transformed = run_program(
            mapped.program, inputs={k: v.copy() for k, v in inputs.items()}
        )
        for array in program.arrays.values():
            if array.is_local:
                continue
            if not np.allclose(reference.data(array.name), transformed.data(array.name)):
                return False
        return True

    def _random_inputs(self, program: Program) -> Dict[str, np.ndarray]:
        rng = np.random.default_rng(self.seed)
        return {
            array.name: rng.random(tuple(array.shape))
            for array in program.arrays.values()
            if not array.is_local
        }


def best_result(results: List[EvaluationResult]) -> EvaluationResult:
    """The fastest feasible result, ties broken by configuration key.

    Results whose correctness spot-check *failed* (``correct is False``) are
    never eligible — a fast but wrong mapping must not win.  Unchecked results
    (``correct is None``) remain eligible.  The tie-break makes serial and
    parallel evaluation agree bit-for-bit on the winner regardless of
    completion order.
    """
    feasible = [r for r in results if r.feasible and r.correct is not False]
    if not feasible:
        raise ValueError("no feasible (and correct) configuration was evaluated")
    return min(feasible, key=lambda r: (r.time_ms, r.configuration.key()))
