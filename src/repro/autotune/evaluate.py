"""Pricing (and optionally verifying) one mapping configuration.

An evaluation replays a :class:`~repro.autotune.space.Configuration` through
a shared :class:`repro.compiler.CompilationSession` —
``session.replay(from_stage="tiling", config=...)`` — and prices the
resulting launch on the GPU performance model, standing in for a run on the
paper's GeForce 8800 GTX.  Because the session freezes the config-invariant
affine-analysis artifacts, a tuning request analyses the program **once** and
every candidate replays only the tiling/scratchpad/mapping stages (set
``reuse_analysis=False`` to recover the legacy one-monolithic-compile-per-
candidate behaviour, e.g. for benchmarking the difference).  Configurations
the machine cannot execute (e.g. a block's buffers exceed the scratchpad)
come back infeasible rather than raising, so search strategies can treat the
evaluator as total.

With ``check_correctness`` enabled the mapped program is additionally run
through the reference interpreter against the original program on small
seeded random inputs — the same oracle the repo's transformation tests use.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

import numpy as np

from repro.compiler import CompilationSession
from repro.core.options import MappingOptions
from repro.ir.program import Program
from repro.machine.gpu import GPUPerformanceModel, KernelLaunch
from repro.machine.spec import GEFORCE_8800_GTX, GPUSpec
from repro.runtime.interpreter import run_program
from repro.autotune.space import Configuration


@dataclass
class EvaluationResult:
    """Outcome of pricing one configuration."""

    configuration: Configuration
    time_ms: float
    cycles: float
    feasible: bool
    error: Optional[str] = None
    shared_bytes_per_block: int = 0
    breakdown: Dict[str, float] = field(default_factory=dict)
    #: ``None`` when no spot-check ran, otherwise the verdict
    correct: Optional[bool] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "configuration": self.configuration.to_dict(),
            "time_ms": self.time_ms,
            "cycles": self.cycles,
            "feasible": self.feasible,
            "error": self.error,
            "shared_bytes_per_block": self.shared_bytes_per_block,
            "breakdown": dict(self.breakdown),
            "correct": self.correct,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "EvaluationResult":
        return cls(
            configuration=Configuration.from_dict(payload["configuration"]),
            time_ms=payload["time_ms"],
            cycles=payload["cycles"],
            feasible=payload["feasible"],
            error=payload.get("error"),
            shared_bytes_per_block=payload.get("shared_bytes_per_block", 0),
            breakdown=dict(payload.get("breakdown", {})),
            correct=payload.get("correct"),
        )


class ConfigurationEvaluator:
    """Prices configurations of one (program, machine, params) instance."""

    def __init__(
        self,
        program: Program,
        spec: GPUSpec = GEFORCE_8800_GTX,
        param_values: Optional[Mapping[str, int]] = None,
        base_options: Optional[MappingOptions] = None,
        check_correctness: bool = False,
        check_program: Optional[Program] = None,
        seed: int = 0,
        session: Optional[CompilationSession] = None,
        reuse_analysis: bool = True,
    ) -> None:
        """``check_program``: a small-size twin of ``program`` to verify
        functionally (defaults to ``program`` itself — only sensible when the
        problem is small enough for the interpreter).

        ``session``: an existing :class:`CompilationSession` whose frozen
        analysis artifacts the evaluations should reuse (one is created
        lazily otherwise).  ``reuse_analysis=False`` compiles every
        configuration from a cold session — the legacy monolithic
        ``compile_with_config`` cost model, kept for benchmarking.
        """
        self.program = program
        self.spec = spec
        self.param_values = dict(param_values or {})
        self.base_options = base_options or MappingOptions()
        self.check_correctness = check_correctness
        self.check_program = check_program or program
        self.seed = seed
        self.reuse_analysis = reuse_analysis
        self._model = GPUPerformanceModel(spec)
        self._session = session
        self._check_session: Optional[CompilationSession] = None
        self._lock = threading.Lock()

    # The sessions travel with the evaluator to process-pool workers (they
    # pickle minus their locks), frozen analysis artifacts included — a
    # worker replays candidates without ever re-running the analysis stage.
    def __getstate__(self) -> Dict[str, Any]:
        state = dict(self.__dict__)
        state["_lock"] = None
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def _fresh_session(
        self, program: Program, with_params: bool = True
    ) -> CompilationSession:
        return CompilationSession(
            program,
            spec=self.spec,
            options=self.base_options,
            param_values=self.param_values if with_params else None,
        )

    @property
    def session(self) -> CompilationSession:
        """The shared compilation session (created lazily, thread-safe)."""
        with self._lock:
            if self._session is None:
                self._session = self._fresh_session(self.program)
            return self._session

    def _compile(self, config: Configuration):
        if self.reuse_analysis:
            return self.session.replay(from_stage="tiling", config=config)
        # Legacy cost model: a cold session per candidate re-runs every
        # stage, exactly like the old monolithic compile_with_config.
        return self._fresh_session(self.program).replay(
            from_stage="analysis", config=config
        )

    def evaluate(self, config: Configuration) -> EvaluationResult:
        """Compile, price, and optionally spot-check one configuration."""
        try:
            mapped = self._compile(config)
            launch = KernelLaunch(
                workload=mapped.workload,
                geometry=mapped.geometry,
                global_sync_rounds=mapped.global_sync_rounds,
            )
            time_us = self._model.execution_time_us(launch)
        except ValueError as error:
            return EvaluationResult(
                configuration=config,
                time_ms=float("inf"),
                cycles=float("inf"),
                feasible=False,
                error=str(error),
            )
        result = EvaluationResult(
            configuration=config,
            time_ms=time_us / 1000.0,
            cycles=time_us * self.spec.cycles_per_us,
            feasible=True,
            shared_bytes_per_block=mapped.geometry.shared_memory_per_block_bytes,
            breakdown=self._model.breakdown(launch),
        )
        if self.check_correctness:
            result.correct = self.spot_check(config)
        return result

    def spot_check(self, config: Configuration) -> bool:
        """Interpret the mapped small-size program against the reference."""
        program = self.check_program
        with self._lock:
            if self._check_session is None:
                # The spot-check always runs at the check program's default
                # parameters (it must stay small enough to interpret).
                self._check_session = self._fresh_session(program, with_params=False)
            session = self._check_session
        mapped = session.replay(from_stage="tiling", config=config)
        inputs = self._random_inputs(program)
        reference = run_program(program, inputs={k: v.copy() for k, v in inputs.items()})
        transformed = run_program(
            mapped.program, inputs={k: v.copy() for k, v in inputs.items()}
        )
        for array in program.arrays.values():
            if array.is_local:
                continue
            if not np.allclose(reference.data(array.name), transformed.data(array.name)):
                return False
        return True

    def _random_inputs(self, program: Program) -> Dict[str, np.ndarray]:
        rng = np.random.default_rng(self.seed)
        return {
            array.name: rng.random(tuple(array.shape))
            for array in program.arrays.values()
            if not array.is_local
        }


def best_result(results: List[EvaluationResult]) -> EvaluationResult:
    """The fastest feasible result, ties broken by configuration key.

    Results whose correctness spot-check *failed* (``correct is False``) are
    never eligible — a fast but wrong mapping must not win.  Unchecked results
    (``correct is None``) remain eligible.  The tie-break makes serial and
    parallel evaluation agree bit-for-bit on the winner regardless of
    completion order.
    """
    feasible = [r for r in results if r.feasible and r.correct is not False]
    if not feasible:
        raise ValueError("no feasible (and correct) configuration was evaluated")
    return min(feasible, key=lambda r: (r.time_ms, r.configuration.key()))
