"""``python -m repro.autotune`` — see :mod:`repro.autotune.cli`."""

from repro.autotune.cli import main

raise SystemExit(main())
