"""``python -m repro.autotune`` — see :mod:`repro.autotune.cli`."""

from repro.autotune.cli import main

# Guarded so spawn-based worker processes re-importing the parent's main
# module (e.g. process-pool evaluation) do not start a second CLI.
if __name__ == "__main__":
    raise SystemExit(main())
