"""Persistent compilation/tuning cache.

Tuning the same (program, machine, params, options, strategy, space) twice
must cost nothing the second time: the session layer fingerprints the request,
and this cache maps fingerprints to serialised tuning reports in a JSON file
on disk.  The fingerprint hashes the *rendered* program text (the C-like
printer output is deterministic and captures loop structure, domains and
accesses), the machine spec fields, the bound parameters, the base mapping
options and the strategy/space signatures — anything that can change the
answer changes the key.

Writes are atomic (temp file + ``os.replace``) so a crash mid-save never
corrupts a warm cache.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import tempfile
import threading
import warnings
from dataclasses import asdict
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Union

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

from repro.core.options import MappingOptions
from repro.ir.printer import program_to_c
from repro.ir.program import Program
from repro.machine.spec import GPUSpec

#: version 2: entry file order is insertion order (prune's "oldest"); files
#: written by version 1 (key-sorted) are discarded as a cold cache rather
#: than mis-pruned
CACHE_VERSION = 2

#: whether the missing-fcntl warning has been emitted (once per process)
_warned_unlocked = False


def _warn_unlocked_writes() -> None:
    global _warned_unlocked
    if _warned_unlocked:
        return
    _warned_unlocked = True
    warnings.warn(
        "fcntl is unavailable on this platform: TuningCache writes proceed "
        "without inter-process file locking, so concurrent writers may race",
        RuntimeWarning,
        stacklevel=4,
    )


def canonical_json(payload: Any) -> str:
    """Deterministic JSON rendering (sorted keys, no whitespace drift)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def fingerprint(
    program: Program,
    spec: GPUSpec,
    param_values: Optional[Mapping[str, int]],
    options: MappingOptions,
    strategy_signature: Mapping[str, Any],
    space_signature: Mapping[str, Any],
    check_signature: Optional[Mapping[str, Any]] = None,
) -> str:
    """Stable key of one tuning request.

    ``check_signature`` carries the correctness-check request (enabled flag,
    spot-check program, input seed) — a report produced *without* spot-checks
    must not satisfy a request *with* them.
    """
    binding = program.bound_params(param_values)
    payload = {
        "version": CACHE_VERSION,
        "program": program_to_c(program),
        "params": {k: binding[k] for k in sorted(binding)},
        "spec": asdict(spec),
        "options": options.to_dict(),
        "strategy": dict(strategy_signature),
        "space": dict(space_signature),
        "check": dict(check_signature or {}),
    }
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


class TuningCache:
    """Fingerprint → report-dict store, optionally persisted to a JSON file.

    ``path=None`` keeps the cache in memory only (useful for tests and
    one-shot sessions); with a path, every :meth:`put` persists immediately
    and a fresh instance pointed at the same file starts warm.

    Thread-safe: an internal lock serialises the threads of one process
    sharing an instance (the tuning service's thread-executor mode), while
    the ``fcntl`` file lock serialises *processes* sharing the backing file.
    """

    def __init__(self, path: Optional[Union[str, Path]] = None) -> None:
        self.path = Path(path) if path is not None else None
        self.hits = 0
        self.misses = 0
        self._entries: Dict[str, Dict[str, Any]] = {}
        self._mutex = threading.Lock()
        if self.path is not None and self.path.exists():
            self._load()

    # -- mapping interface ---------------------------------------------------------
    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored report for ``key``, counting the hit or miss."""
        with self._mutex:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self.hits += 1
            return entry

    def peek(self, key: str) -> Optional[Dict[str, Any]]:
        """:meth:`get` without touching the hit/miss counters.

        For probes that are not a request's authoritative lookup (monitoring,
        tests) so hit-rate statistics only count real lookups.
        """
        with self._mutex:
            return self._entries.get(key)

    def put(self, key: str, value: Mapping[str, Any]) -> None:
        """Store a report and (when file-backed) persist atomically."""
        with self._mutex:
            self._entries[key] = dict(value)
            if self.path is not None:
                self._save()

    def absorb(self, key: str, value: Mapping[str, Any]) -> None:
        """Store a report in memory *without* persisting.

        For results another process already wrote to the backing file (the
        tuning service's worker processes): the entry becomes visible to this
        instance's :meth:`get` without a redundant read-merge-write cycle.
        """
        with self._mutex:
            self._entries[key] = dict(value)

    def __contains__(self, key: str) -> bool:
        with self._mutex:
            return key in self._entries

    def __len__(self) -> int:
        with self._mutex:
            return len(self._entries)

    def clear(self) -> None:
        """Drop every entry (and the backing file's contents)."""
        with self._mutex:
            self._entries.clear()
            if self.path is not None:
                self._save(merge=False)

    def prune(self, max_entries: int) -> int:
        """Drop the oldest entries beyond ``max_entries``; returns the count dropped.

        "Oldest" is insertion order (JSON objects preserve it round-trip).
        The save skips the usual read-merge so this instance's later saves
        cannot resurrect the pruned entries from disk.  A *different* live
        process still holding them in memory will merge them back on its next
        save, though — run maintenance pruning while writers are idle.
        """
        if max_entries < 0:
            raise ValueError(f"max_entries cannot be negative, got {max_entries}")
        with self._mutex:
            drop = len(self._entries) - max_entries
            if drop <= 0:
                return 0
            for key in list(self._entries)[:drop]:
                del self._entries[key]
            if self.path is not None:
                self._save(merge=False)
            return drop

    def stats(self) -> Dict[str, int]:
        """Entry count, on-disk bytes (0 when in-memory), and hit/miss counters."""
        size = 0
        if self.path is not None:
            try:
                size = self.path.stat().st_size
            except OSError:
                size = 0
        with self._mutex:
            return {
                "entries": len(self._entries),
                "bytes": size,
                "hits": self.hits,
                "misses": self.misses,
            }

    # -- persistence ---------------------------------------------------------------
    def _load(self) -> None:
        try:
            payload = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            # A missing or corrupt file means a cold cache, not a crash.
            self._entries = {}
            return
        if payload.get("version") != CACHE_VERSION:
            self._entries = {}
            return
        entries = payload.get("entries", {})
        if isinstance(entries, dict):
            self._entries = {str(k): dict(v) for k, v in entries.items()}

    @contextlib.contextmanager
    def _file_lock(self):
        """Exclusive advisory lock on a sidecar file (warns, once, without fcntl)."""
        if fcntl is None:
            _warn_unlocked_writes()
            yield
            return
        lock_path = self.path.with_name(self.path.name + ".lock")
        with open(lock_path, "w") as handle:
            fcntl.flock(handle, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle, fcntl.LOCK_UN)

    def _save(self, merge: bool = True) -> None:
        # Read-merge-write under an exclusive file lock: pick up entries other
        # processes persisted since we loaded, so concurrent sessions tuning
        # different kernels against one cache file keep each other's results
        # (our own keys win).  Without fcntl the merge still runs but is only
        # best-effort against a racing writer.
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self._file_lock():
            if merge and self.path.exists():
                on_disk = TuningCache.__new__(TuningCache)
                on_disk.path = self.path
                on_disk._entries = {}
                on_disk._load()
                self._entries = {**on_disk._entries, **self._entries}
            payload = {"version": CACHE_VERSION, "entries": self._entries}
            descriptor, temp_name = tempfile.mkstemp(
                dir=str(self.path.parent), prefix=self.path.name, suffix=".tmp"
            )
            try:
                with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                    # No sort_keys: entry insertion order must survive the
                    # round-trip — prune() defines "oldest" by it.
                    json.dump(payload, handle, indent=1)
                os.replace(temp_name, self.path)
            except BaseException:
                try:
                    os.unlink(temp_name)
                except OSError:
                    pass
                raise
