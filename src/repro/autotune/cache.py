"""Persistent compilation/tuning cache.

Tuning the same (program, machine, params, options, strategy, space) twice
must cost nothing the second time: the session layer fingerprints the request,
and this cache maps fingerprints to serialised tuning reports.  The
fingerprint hashes the *rendered* program text (the C-like printer output is
deterministic and captures loop structure, domains and accesses), the machine
spec fields, the bound parameters, the base mapping options and the
strategy/space signatures — anything that can change the answer changes the
key.

:class:`TuningCache` itself is a thin facade: hit/miss accounting, thread
safety, and the absorb-without-persisting overlay live here, while actual
persistence is delegated to a pluggable :class:`repro.autotune.store.CacheStore`
backend selected by the ``path`` spec — a plain ``.json`` path keeps the
legacy single-file format, ``dir:PATH`` selects the sharded per-fingerprint
layout (O(1) puts), and ``log:PATH`` the append-only JSONL log.  See
:mod:`repro.autotune.store` for the backends and
``python -m repro.autotune cache-migrate`` for converting between them.

All backends write durably (atomic replace or locked append) so a crash
mid-save never corrupts a warm cache.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from dataclasses import asdict
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Union

from repro.core.options import MappingOptions
from repro.ir.printer import program_to_c
from repro.ir.program import Program
from repro.machine.spec import GPUSpec
from repro.autotune.store import CACHE_VERSION, CacheStore, open_store
from repro.telemetry.metrics import METRICS

# Pre-registered (unlabelled counters always render, even at 0) so a fresh
# server's /metrics already exposes the cache series scrapers look for.
CACHE_HITS_TOTAL = METRICS.counter(
    "repro_cache_hits_total", "tuning-cache lookup hits"
)
CACHE_MISSES_TOTAL = METRICS.counter(
    "repro_cache_misses_total", "tuning-cache lookup misses"
)
CACHE_PUTS_TOTAL = METRICS.counter(
    "repro_cache_puts_total", "tuning reports persisted"
)
CACHE_ABSORBS_TOTAL = METRICS.counter(
    "repro_cache_absorbs_total", "worker reports absorbed without persisting"
)

__all__ = [
    "CACHE_VERSION",
    "TuningCache",
    "canonical_json",
    "fingerprint",
]


def canonical_json(payload: Any) -> str:
    """Deterministic JSON rendering (sorted keys, no whitespace drift)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def fingerprint(
    program: Program,
    spec: GPUSpec,
    param_values: Optional[Mapping[str, int]],
    options: MappingOptions,
    strategy_signature: Mapping[str, Any],
    space_signature: Mapping[str, Any],
    check_signature: Optional[Mapping[str, Any]] = None,
    backend_signature: Optional[Mapping[str, Any]] = None,
) -> str:
    """Stable key of one tuning request.

    ``check_signature`` carries the correctness-check request (enabled flag,
    spot-check program, input seed) — a report produced *without* spot-checks
    must not satisfy a request *with* them.  ``backend_signature`` carries
    the evaluation backend's identity (scheme plus its knobs) — model-priced
    and measured results must never collide under one key.  The default
    model backend contributes **nothing** to the payload, keeping its
    fingerprints byte-identical to the pre-backend era so existing warm
    caches stay warm.
    """
    binding = program.bound_params(param_values)
    payload = {
        "version": CACHE_VERSION,
        "program": program_to_c(program),
        "params": {k: binding[k] for k in sorted(binding)},
        "spec": asdict(spec),
        "options": options.to_dict(),
        "strategy": dict(strategy_signature),
        "space": dict(space_signature),
        "check": dict(check_signature or {}),
    }
    backend_payload = dict(backend_signature or {})
    if backend_payload and backend_payload != {"scheme": "model"}:
        payload["backend"] = backend_payload
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


class TuningCache:
    """Fingerprint → report-dict store over a pluggable persistence backend.

    ``path=None`` keeps the cache in memory only (useful for tests and
    one-shot sessions); any other spec — a ``.json`` path, ``dir:DIR``,
    ``log:FILE``, or an already-open :class:`CacheStore` — persists every
    :meth:`put` immediately, and a fresh instance pointed at the same
    location starts warm.

    Thread-safe: an internal lock serialises the threads of one process
    sharing an instance (the tuning service's thread-executor mode), while
    the backends' ``fcntl`` file locks serialise *processes* sharing the
    backing files.

    ``absorb_limit`` bounds the in-memory absorb overlay (least-recently-used
    entries are evicted first), so a long-lived server absorbing every
    finished job keeps flat resident memory; evicted entries remain served
    from the backing store their producer persisted them to.
    """

    def __init__(
        self,
        path: Union[CacheStore, str, Path, None] = None,
        absorb_limit: int = 256,
    ) -> None:
        if absorb_limit < 0:
            raise ValueError(
                f"absorb_limit cannot be negative, got {absorb_limit!r}"
            )
        self.store = open_store(path)
        self.hits = 0
        self.misses = 0
        self.absorb_limit = absorb_limit
        #: results absorbed from other processes: visible to get(), never
        #: persisted by this instance (the producer already persisted them);
        #: ordered oldest-use-first so the LRU bound evicts from the front
        self._absorbed: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._mutex = threading.Lock()

    # -- identity ------------------------------------------------------------------
    @property
    def backend(self) -> str:
        """The persistence backend's short name (``memory``/``json``/...)."""
        return self.store.backend

    @property
    def path(self) -> Optional[Path]:
        """Filesystem anchor of the backend (file or directory), if any."""
        return self.store.path

    @property
    def uri(self) -> Optional[str]:
        """Spec string that re-opens this cache's store (``None`` = memory).

        This is what travels to worker processes: ``TuningCache(cache.uri)``
        reconstructs the same backend, whatever kind it is.
        """
        return self.store.uri

    # -- mapping interface ---------------------------------------------------------
    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored report for ``key``, counting the hit or miss."""
        with self._mutex:
            entry = self._lookup(key)
            if entry is None:
                self.misses += 1
                CACHE_MISSES_TOTAL.inc()
                return None
            self.hits += 1
            CACHE_HITS_TOTAL.inc()
            return entry

    def peek(self, key: str) -> Optional[Dict[str, Any]]:
        """:meth:`get` without touching the hit/miss counters.

        For probes that are not a request's authoritative lookup (monitoring,
        tests) so hit-rate statistics only count real lookups.
        """
        with self._mutex:
            return self._lookup(key)

    def _lookup(self, key: str) -> Optional[Dict[str, Any]]:
        entry = self._absorbed.get(key)
        if entry is not None:
            self._absorbed.move_to_end(key)  # LRU touch
            return entry
        return self.store.get(key)

    def put(self, key: str, value: Mapping[str, Any]) -> None:
        """Store a report and (when backed by a store) persist durably."""
        with self._mutex:
            self._absorbed.pop(key, None)
            self.store.put(key, dict(value))
        CACHE_PUTS_TOTAL.inc()

    def set_absorb_limit(self, absorb_limit: int) -> None:
        """Re-bound the absorb overlay, evicting LRU entries beyond it."""
        if absorb_limit < 0:
            raise ValueError(
                f"absorb_limit cannot be negative, got {absorb_limit!r}"
            )
        with self._mutex:
            self.absorb_limit = absorb_limit
            while len(self._absorbed) > self.absorb_limit:
                self._absorbed.popitem(last=False)

    def absorb(self, key: str, value: Mapping[str, Any]) -> None:
        """Store a report in memory *without* persisting.

        For results another process already wrote to the backing store (the
        tuning service's worker processes): the entry becomes visible to this
        instance's :meth:`get` without a redundant persistence cycle.  The
        overlay is LRU-bounded by ``absorb_limit``: evicting an entry only
        means the next lookup re-reads it from the backing store.
        """
        with self._mutex:
            if self.store.path is None:
                self.store.put(key, dict(value))
            else:
                self._absorbed[key] = dict(value)
                self._absorbed.move_to_end(key)
                while len(self._absorbed) > self.absorb_limit:
                    self._absorbed.popitem(last=False)
        CACHE_ABSORBS_TOTAL.inc()

    def __contains__(self, key: str) -> bool:
        with self._mutex:
            return key in self._absorbed or key in self.store

    def __len__(self) -> int:
        with self._mutex:
            extra = sum(1 for key in self._absorbed if key not in self.store)
            return len(self.store) + extra

    def clear(self) -> None:
        """Drop every entry (and the backing store's contents)."""
        with self._mutex:
            self._absorbed.clear()
            self.store.clear()

    def prune(self, max_entries: int) -> int:
        """Drop the oldest entries beyond ``max_entries``; returns the count dropped.

        "Oldest" is insertion order, whichever backend persists it.  Pruned
        entries stay pruned under concurrent writers: the sharded and log
        backends delete per-entry state no saver ever rewrites, and the JSON
        backend records tombstones that later saves honour.
        """
        if max_entries < 0:
            raise ValueError(f"max_entries cannot be negative, got {max_entries}")
        with self._mutex:
            dropped = self.store.prune(max_entries)
            if dropped and self._absorbed:
                # absorbed entries were persisted by other processes; any the
                # prune deleted must stop being served from the overlay too
                self._absorbed = OrderedDict(
                    (k, v) for k, v in self._absorbed.items() if k in self.store
                )
            return dropped

    def scan(self):
        """Every persisted (key, value) pair, oldest insertion first."""
        with self._mutex:
            return list(self.store.scan())

    def measurement_kind_counts(self) -> Dict[str, int]:
        """Entry counts per best-result ``measurement.kind`` provenance.

        Entries written before measurement provenance existed count as
        ``"model"`` (the only way a time could be obtained then).  An O(n)
        scan — meant for the ``cache-stats`` CLI and monitoring, not hot
        paths.
        """
        counts: Dict[str, int] = {}
        for _key, entry in self.scan():
            best = entry.get("best") or {}
            measurement = best.get("measurement") or {}
            kind = measurement.get("kind", "model")
            counts[kind] = counts.get(kind, 0) + 1
        return counts

    def compact(self) -> Dict[str, Any]:
        """Reclaim backend dead space (tombstones, dead log records, ...)."""
        with self._mutex:
            return self.store.compact()

    def stats(self) -> Dict[str, Any]:
        """Backend identity and gauges, plus this instance's hit/miss counters.

        ``entries`` counts absorbed-but-not-yet-visible results too, so a
        server's ``/cache/stats`` reflects every report it can serve — even
        ones a worker persisted through its own store instance moments ago.
        """
        with self._mutex:
            # under the mutex: AppendLogStore.stats() resyncs its index, and
            # every other store access in this class is mutex-serialised too
            base = self.store.stats()
            base["entries"] += sum(
                1 for key in self._absorbed if key not in self.store
            )
            base["absorbed"] = len(self._absorbed)
            base["absorb_limit"] = self.absorb_limit
            base["hits"] = self.hits
            base["misses"] = self.misses
        return base
