"""Deprecated monolithic pipeline facade over :mod:`repro.compiler`.

The end-to-end compiler used to live here as one ``MappingPipeline.compile``
with private helpers; it is now the staged pass pipeline of
:mod:`repro.compiler` (``analysis → tiling → scratchpad → mapping``), where
each stage is a first-class, fingerprintable artifact and
:class:`~repro.compiler.session.CompilationSession` supports
replay-from-stage.

:class:`MappingPipeline` remains as a thin compatibility shim:

* :meth:`MappingPipeline.compile` ≡ ``CompilationSession(...).compile()``;
* :meth:`MappingPipeline.compile_with_config` ≡
  ``CompilationSession(...).replay(from_stage="tiling", config=...)``.

Both emit :class:`DeprecationWarning`; new code should build sessions
directly (via :meth:`MappingPipeline.session` or :mod:`repro.compiler`),
which also unlocks artifact reuse across configurations.

The counters (:data:`COMPILE_COUNTER`, :func:`counting_compiles`) and the
pure helpers (:func:`loop_extents`, :func:`split_across`) are re-exported
from :mod:`repro.compiler` for compatibility.  Note the counters are no
longer the standalone tallies that once lived here: since the telemetry
refactor every increment also publishes to the process-wide metrics
registry (``repro_compiles_total`` / ``repro_stage_runs_total`` on
``/metrics`` — see :mod:`repro.compiler.instrument`).  **Deprecated import
path**: reach them via :mod:`repro.compiler`; this module's re-export is
kept only for pre-staged-compiler callers and may be dropped with the shim.
"""

from __future__ import annotations

import warnings
from typing import Any, Mapping, Optional, Sequence

from repro.core.options import MappingOptions
from repro.ir.program import Program
from repro.machine.memory import MemoryModel
from repro.machine.spec import GEFORCE_8800_GTX, GPUSpec

# Re-exports: the implementation moved to repro.compiler, but these names are
# long-standing public API of this module.
from repro.compiler.artifacts import MappedKernel
from repro.compiler.instrument import (
    COMPILE_COUNTER,
    CompileCount,
    CompileCounter,
    counting_compiles,
)
from repro.compiler.passes import loop_extents, resolve_pass_names, split_across
from repro.compiler.session import CompilationSession

__all__ = [
    "COMPILE_COUNTER",
    "CompilationSession",
    "CompileCount",
    "CompileCounter",
    "MappedKernel",
    "MappingPipeline",
    "counting_compiles",
    "loop_extents",
    "split_across",
]


class MappingPipeline:
    """Compiles affine programs onto the two-level machine model (deprecated).

    The ``compile``/``compile_with_config`` entry points are shims over the
    staged :mod:`repro.compiler` API and warn with ``DeprecationWarning``;
    :meth:`session` is the supported, warning-free bridge for callers holding
    a pipeline.  The ``passes`` argument selects a custom pass list by name —
    unknown names are rejected here, at construction, with the registered
    passes listed.
    """

    def __init__(
        self,
        spec: GPUSpec = GEFORCE_8800_GTX,
        options: Optional[MappingOptions] = None,
        passes: Optional[Sequence[Any]] = None,
    ) -> None:
        self.spec = spec
        self.options = options or MappingOptions()
        self.memory = MemoryModel(spec)
        # Validate eagerly: a typo in a stage/pass name must fail at
        # construction with the registry listed, not deep inside a run.
        self.passes = None if passes is None else resolve_pass_names(passes)

    # -- supported API ---------------------------------------------------------------
    def session(
        self, program: Program, param_values: Optional[Mapping[str, int]] = None
    ) -> CompilationSession:
        """A :class:`CompilationSession` carrying this pipeline's spec/options."""
        return CompilationSession(
            program,
            spec=self.spec,
            options=self.options,
            param_values=param_values,
            passes=self.passes,
        )

    # -- deprecated shims --------------------------------------------------------------
    def compile(
        self, program: Program, param_values: Optional[Mapping[str, int]] = None
    ) -> MappedKernel:
        """Deprecated: one-shot compile (build a session instead)."""
        warnings.warn(
            "MappingPipeline.compile() is a deprecated shim; build a "
            "repro.compiler.CompilationSession and call session.compile() "
            "instead (artifacts become reusable across configurations)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.session(program, param_values).compile()

    def compile_with_config(
        self,
        program: Program,
        config: Any,
        param_values: Optional[Mapping[str, int]] = None,
    ) -> MappedKernel:
        """Deprecated: replay one explicit configuration (use session.replay).

        ``config`` is anything exposing ``num_blocks``, ``threads_per_block``,
        ``use_scratchpad`` and a ``tile_dict`` mapping of explicit tile sizes
        (notably :class:`repro.autotune.space.Configuration`).
        """
        warnings.warn(
            "MappingPipeline.compile_with_config() is a deprecated shim; use "
            "repro.compiler.CompilationSession.replay(from_stage='tiling', "
            "config=...) instead (the analysis stages are then reused across "
            "configurations)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.session(program, param_values).replay(
            from_stage="tiling", config=config
        )
