"""End-to-end mapping pipeline: program → multi-level tiled, scratchpad-managed
kernel plus the workload descriptor the machine models price.

The pipeline follows the paper's flow:

1. find parallelism (bands, space/time loops) — Section 4.1;
2. outer-level tiling across thread blocks, memory-constrained intra-tile
   tiling (tile sizes either given or found by the Section-4.3 search), and
   inner-level tiling across threads — Figs. 2–3;
3. scratchpad data management for the tile body — Section 3 — with copy code
   placed at the block boundary and synchronisation points inserted;
4. extraction of launch geometry and a per-block workload descriptor for the
   analytical machine models (the stand-in for running CUDA on the 8800 GTX).
"""

from __future__ import annotations

import contextlib
import math
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.options import MappingOptions
from repro.ir.ast import BlockNode, StatementNode, SyncNode
from repro.ir.program import Program
from repro.ir.statements import Statement
from repro.machine.gpu import BlockWorkload
from repro.machine.memory import MemoryModel
from repro.machine.spec import GEFORCE_8800_GTX, GPUSpec
from repro.polyhedral.parametric import parametric_bounds
from repro.scratchpad.manager import ScratchpadManager, ScratchpadOptions, ScratchpadPlan
from repro.scratchpad.remap import build_remap_table, remap_statement
from repro.tiling.bands import BandAnalysis, analyze_bands
from repro.tiling.cost_model import DataMovementCostModel
from repro.tiling.mapping import LaunchGeometry, blocks_for_extent
from repro.tiling.multilevel import TiledProgram, TilingLevelSpec, tile_program
from repro.tiling.placement import placement_depths
from repro.tiling.tile_search import TileSearchProblem, TileSearchResult, search_tile_sizes


@dataclass
class CompileCounter:
    """Counts end-to-end pipeline compilations.

    The autotuner's persistent cache promises that a warm request performs
    *zero* pipeline compiles; this process-wide counter is how tests and
    benchmarks verify that promise.  Increments are lock-protected because
    parallel evaluation compiles on thread-pool workers.
    """

    count: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def increment(self) -> None:
        with self._lock:
            self.count += 1

    def reset(self) -> None:
        with self._lock:
            self.count = 0


#: process-wide counter bumped by every :meth:`MappingPipeline.compile`
COMPILE_COUNTER = CompileCounter()


@dataclass
class CompileCount:
    """Result slot of :func:`counting_compiles`."""

    count: int = 0


@contextlib.contextmanager
def counting_compiles():
    """Count the pipeline compiles performed inside the ``with`` block.

    Yields a :class:`CompileCount` whose ``count`` is final once the block
    exits.  The delta is taken from the process-wide :data:`COMPILE_COUNTER`,
    so compiles on *other* threads of this process during the block are
    included — callers wanting an exact per-task figure (the tuning service's
    per-job accounting, the CLI) should not run compiles concurrently in the
    same process, or should treat the figure as an upper bound.
    """
    start = COMPILE_COUNTER.count
    box = CompileCount()
    try:
        yield box
    finally:
        box.count = COMPILE_COUNTER.count - start


@dataclass
class MappedKernel:
    """Everything the pipeline produces for one kernel configuration."""

    original: Program
    analysis: BandAnalysis
    tiled: Optional[TiledProgram]
    plan: Optional[ScratchpadPlan]
    #: final executable program (tiled structure, remapped accesses, copy code)
    program: Program
    geometry: LaunchGeometry
    workload: BlockWorkload
    global_sync_rounds: int
    tile_sizes: Dict[str, int]
    outer_tile_sizes: Dict[str, int]
    tile_search: Optional[TileSearchResult] = None
    param_binding: Dict[str, int] = field(default_factory=dict)

    @property
    def uses_scratchpad(self) -> bool:
        return self.plan is not None and bool(self.plan.buffers)


class MappingPipeline:
    """Compiles affine programs onto the two-level machine model."""

    def __init__(
        self,
        spec: GPUSpec = GEFORCE_8800_GTX,
        options: Optional[MappingOptions] = None,
    ) -> None:
        self.spec = spec
        self.options = options or MappingOptions()
        self.memory = MemoryModel(spec)

    # -- public API -----------------------------------------------------------------
    def compile(
        self, program: Program, param_values: Optional[Mapping[str, int]] = None
    ) -> MappedKernel:
        COMPILE_COUNTER.increment()
        options = self.options
        binding = program.bound_params(param_values)
        analysis = analyze_bands(program)
        extents, lowers = self._loop_extents(program, binding)

        space_loops = list(analysis.space_loops) or [analysis.loop_order[0]]
        block_counts = self._split_across(options.num_blocks, space_loops, extents)
        outer_tiles = {
            loop: max(1, math.ceil(extents[loop] / block_counts[loop]))
            for loop in space_loops
        }

        search_result: Optional[TileSearchResult] = None
        if options.tile_sizes is not None:
            mem_tiles = {
                loop: min(int(size), extents[loop])
                for loop, size in options.tile_sizes.items()
                if loop in extents
            }
        else:
            mem_tiles, search_result = self._search_tiles(
                program, analysis, binding, extents, outer_tiles
            )
        for loop in analysis.loop_order:
            mem_tiles.setdefault(loop, min(outer_tiles.get(loop, extents[loop]), extents[loop]))

        thread_counts = self._split_across(
            options.threads_per_block, space_loops, mem_tiles
        )
        thread_tiles = {
            loop: max(1, math.ceil(mem_tiles[loop] / thread_counts[loop]))
            for loop in space_loops
        }

        levels = [
            TilingLevelSpec(sizes=dict(outer_tiles), parallel="blocks", suffix="T"),
            TilingLevelSpec(sizes=dict(mem_tiles), parallel=None, suffix="p"),
            TilingLevelSpec(sizes=dict(thread_tiles), parallel="threads", suffix="t"),
        ]
        tiled = tile_program(program, levels, block_level=1)

        plan: Optional[ScratchpadPlan] = None
        if options.use_scratchpad:
            plan = self._apply_scratchpad(tiled, binding, mem_tiles, lowers)

        geometry = LaunchGeometry(
            num_blocks=options.num_blocks,
            threads_per_block=options.threads_per_block,
            shared_memory_per_block_bytes=plan.total_footprint_bytes() if plan else 0,
        )
        workload, rounds = self._build_workload(
            program, analysis, plan, binding, extents, lowers, outer_tiles, mem_tiles
        )
        return MappedKernel(
            original=program,
            analysis=analysis,
            tiled=tiled,
            plan=plan,
            program=tiled.program,
            geometry=geometry,
            workload=workload,
            global_sync_rounds=rounds,
            tile_sizes=mem_tiles,
            outer_tile_sizes=outer_tiles,
            tile_search=search_result,
            param_binding=dict(binding),
        )

    def compile_with_config(
        self,
        program: Program,
        config,
        param_values: Optional[Mapping[str, int]] = None,
    ) -> MappedKernel:
        """Replay one explicit mapping configuration, skipping the tile search.

        ``config`` is anything exposing ``num_blocks``, ``threads_per_block``,
        ``use_scratchpad`` and a ``tile_dict`` mapping of explicit tile sizes
        (notably :class:`repro.autotune.space.Configuration`).  Because the
        tile sizes are given, :meth:`compile` takes its explicit-sizes path and
        the Section-4.3 search never runs — this is what lets the autotuner
        evaluate many configurations cheaply and replay cached winners.
        """
        tile_sizes = config.tile_dict if hasattr(config, "tile_dict") else config.tile_sizes
        options = self.options.with_overrides(
            num_blocks=config.num_blocks,
            threads_per_block=config.threads_per_block,
            tile_sizes=dict(tile_sizes) if tile_sizes is not None else None,
            use_scratchpad=config.use_scratchpad,
        )
        replay = MappingPipeline(spec=self.spec, options=options)
        return replay.compile(program, param_values)

    # -- tiling helpers ----------------------------------------------------------------
    def _loop_extents(
        self, program: Program, binding: Mapping[str, int]
    ) -> Tuple[Dict[str, int], Dict[str, int]]:
        return loop_extents(program, binding)

    @staticmethod
    def _split_across(
        total: int, loops: Sequence[str], weights: Mapping[str, int]
    ) -> Dict[str, int]:
        return split_across(total, loops, weights)

    def _search_tiles(
        self,
        program: Program,
        analysis: BandAnalysis,
        binding: Mapping[str, int],
        extents: Mapping[str, int],
        outer_tiles: Mapping[str, int],
    ) -> Tuple[Dict[str, int], TileSearchResult]:
        """Run the Section-4.3 search for the memory-level tile sizes."""
        options = self.options
        loop_extents = {
            loop: outer_tiles.get(loop, extents[loop]) for loop in analysis.loop_order
        }
        model = DataMovementCostModel(
            program=program,
            tile_loops=list(analysis.loop_order),
            loop_extents=loop_extents,
            threads=options.threads_per_block,
            sync_cost=self.spec.block_sync_cycles,
            transfer_cost=self.spec.dma_cycles_per_element,
            problem_params=dict(binding),
            delta=options.delta,
            stage_all=options.target == "cell",
            hoisting=options.hoisting,
        )
        blocks_per_mp = 1
        if analysis.needs_global_synchronization:
            blocks_per_mp = max(
                1, math.ceil(options.num_blocks / self.spec.multiprocessors)
            )
        memory_limit = self.memory.memory_limit_per_block(blocks_per_mp)
        problem = TileSearchProblem(
            cost_model=model,
            memory_limit_bytes=float(memory_limit),
            min_parallelism=options.threads_per_block,
        )
        result = search_tile_sizes(problem)
        return dict(result.tile_sizes), result

    # -- scratchpad integration ----------------------------------------------------------
    def _apply_scratchpad(
        self,
        tiled: TiledProgram,
        binding: Mapping[str, int],
        mem_tiles: Mapping[str, int],
        lowers: Mapping[str, int],
    ) -> ScratchpadPlan:
        """Plan buffers for the tile body and splice copy code into the block."""
        options = self.options
        representative = self._representative_tile_binding(tiled, binding, lowers)
        manager = ScratchpadManager(
            ScratchpadOptions(
                delta=options.delta,
                target=options.target,
                context=tiled.context,
                param_binding=representative,
                liveness=options.liveness,
            )
        )
        program = tiled.program
        plan = manager.plan(program)
        if not plan.buffers:
            return plan

        table = build_remap_table(plan.specs())
        remapped: Dict[str, Statement] = {}
        for statement in list(program.statements.values()):
            remapped[statement.name] = remap_statement(statement, table)
        for node in program.body.walk():
            if isinstance(node, StatementNode) and node.statement.name in remapped:
                node.statement = remapped[node.statement.name]
        program.statements.update(remapped)

        new_block: List = []
        for entry in plan.buffers:
            if entry.movement.has_copy_in():
                new_block.extend(entry.movement.copy_in.body)
                for statement in entry.movement.copy_in_statements:
                    program.add_statement(statement)
        if new_block:
            new_block.append(SyncNode(scope="threads"))
        new_block.extend(tiled.block_body.body)
        copy_out_nodes: List = []
        for entry in plan.buffers:
            if entry.movement.has_copy_out():
                copy_out_nodes.extend(entry.movement.copy_out.body)
                for statement in entry.movement.copy_out_statements:
                    program.add_statement(statement)
        if copy_out_nodes:
            new_block.append(SyncNode(scope="threads"))
            new_block.extend(copy_out_nodes)
        tiled.block_body.body = new_block

        for spec in plan.specs():
            program.add_array(spec.local)
            program.symbol_definitions.update(spec.offset_definitions)
        program.name = f"{program.name}_spm"
        program.validate()
        return plan

    @staticmethod
    def _representative_tile_binding(
        tiled: TiledProgram, binding: Mapping[str, int], lowers: Mapping[str, int]
    ) -> Dict[str, int]:
        """Bind every tile iterator to its loop's lower bound (an interior tile)."""
        values = dict(binding)
        for level in tiled.levels:
            for original, (iterator, _size) in level.iterators.items():
                values[iterator] = lowers.get(original, 0)
        return values

    # -- workload extraction ------------------------------------------------------------
    def _build_workload(
        self,
        program: Program,
        analysis: BandAnalysis,
        plan: Optional[ScratchpadPlan],
        binding: Mapping[str, int],
        extents: Mapping[str, int],
        lowers: Mapping[str, int],
        outer_tiles: Mapping[str, int],
        mem_tiles: Mapping[str, int],
    ) -> Tuple[BlockWorkload, int]:
        options = self.options
        total_instances = 0.0
        weighted_global = 0.0
        weighted_shared = 0.0
        table = build_remap_table(plan.specs()) if plan else {}
        for statement in program.statement_list:
            instances = 1.0
            for loop in statement.domain.dims:
                instances *= extents[loop]
            total_instances += instances
            target = remap_statement(statement, table) if table else statement
            global_accesses, shared_accesses = _access_counts(target)
            weighted_global += instances * global_accesses
            weighted_shared += instances * shared_accesses
        if total_instances == 0:
            raise ValueError("program has no statement instances")
        global_per_instance = weighted_global / total_instances
        shared_per_instance = weighted_shared / total_instances
        instances_per_block = total_instances / options.num_blocks

        element_size = next(iter(program.arrays.values())).element_size
        copy_in = copy_out = occurrences_total = 0.0
        if plan is not None and plan.buffers:
            representative = dict(binding)
            representative.update(
                {f"{loop}T": lowers[loop] for loop in outer_tiles}
            )
            for loop in analysis.loop_order:
                representative.setdefault(f"{loop}p", lowers[loop])
                representative.setdefault(f"{loop}t", lowers[loop])
            block_loops = [
                (f"{loop}p", loop) for loop in analysis.loop_order if loop in mem_tiles
            ]
            depths = placement_depths(
                plan.specs(), block_loops, enable_hoisting=options.hoisting
            )
            for entry in plan.buffers:
                spec_loops = block_loops[: depths[entry.spec.local.name]]
                occurrences = 1.0
                for _tile_iter, original in spec_loops:
                    extent = outer_tiles.get(original, extents[original])
                    occurrences *= math.ceil(extent / mem_tiles[original])
                volume_in = entry.movement.volume_in(representative)
                volume_out = entry.movement.volume_out(representative)
                copy_in += occurrences * volume_in
                copy_out += occurrences * volume_out
                occurrences_total += occurrences * (
                    int(volume_in > 0) + int(volume_out > 0)
                )
            element_size = plan.buffers[0].spec.original.element_size

        workload = BlockWorkload(
            compute_instances=instances_per_block,
            global_accesses_per_instance=global_per_instance,
            shared_accesses_per_instance=shared_per_instance,
            copy_in_elements=copy_in,
            copy_out_elements=copy_out,
            copy_occurrences=occurrences_total,
            element_size=element_size,
        )

        rounds = 1
        if analysis.needs_global_synchronization and analysis.space_loops:
            first_space = analysis.loop_order.index(analysis.space_loops[0])
            for loop in analysis.loop_order[:first_space]:
                if loop in analysis.time_loops:
                    rounds *= blocks_for_extent(extents[loop], mem_tiles[loop])
        return workload, rounds


def loop_extents(
    program: Program, binding: Mapping[str, int]
) -> Tuple[Dict[str, int], Dict[str, int]]:
    """Concrete extent and lower bound of every loop of the (deepest) nest.

    Shared by the pipeline and the autotuner's configuration space so both
    derive launch geometry from identical extents.
    """
    extents: Dict[str, int] = {}
    lowers: Dict[str, int] = {}
    for statement in program.statement_list:
        for loop in statement.domain.dims:
            if loop in extents:
                continue
            bound = parametric_bounds(statement.domain, loop)
            low = bound.lower.evaluate_int(binding)
            high = bound.upper.evaluate_int(binding)
            extents[loop] = max(high - low + 1, 1)
            lowers[loop] = low
    return extents, lowers


def split_across(
    total: int, loops: Sequence[str], weights: Mapping[str, int]
) -> Dict[str, int]:
    """Split a process count across loops, proportionally to their extents."""
    counts = {loop: 1 for loop in loops}
    remaining = total
    if len(loops) == 1:
        counts[loops[0]] = total
        return counts
    # Repeatedly double the count of the loop with the largest per-count extent.
    while remaining > 1:
        best = max(loops, key=lambda l: weights[l] / counts[l])
        if counts[best] * 2 > total:
            break
        counts[best] *= 2
        product = 1
        for loop in loops:
            product *= counts[loop]
        if product >= total:
            break
        remaining = total // product
    return counts


def _access_counts(statement: Statement) -> Tuple[float, float]:
    """(global, shared) accesses per dynamic instance of a statement."""
    global_count = 0.0
    shared_count = 0.0
    loads = statement.read_loads() + [statement.write_load()]
    for load in loads:
        if load.array.is_local:
            shared_count += 1
        else:
            global_count += 1
    return global_count, shared_count
