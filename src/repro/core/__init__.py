"""End-to-end compilation pipeline (the paper's system, assembled).

The implementation lives in :mod:`repro.compiler` as a staged pass pipeline
(affine analysis → multi-level tiling → scratchpad data management →
mapping/workload extraction) with first-class, fingerprintable stage
artifacts and replay-from-stage.  This package keeps the historical entry
points: :class:`MappingOptions` (the pipeline's knobs — still the canonical
home) and :class:`MappingPipeline`, whose ``compile``/``compile_with_config``
are deprecation shims over :class:`repro.compiler.CompilationSession`.
"""

from repro.core.options import MappingOptions

__all__ = [
    "COMPILE_COUNTER",
    "CompilationSession",
    "CompileCount",
    "CompileCounter",
    "MappingOptions",
    "MappedKernel",
    "MappingPipeline",
    "counting_compiles",
]

#: names re-exported from the (deprecated-shim) pipeline module, resolved
#: lazily so that importing ``repro.core.options`` from inside
#: ``repro.compiler`` does not drag the shim — and with it the whole
#: compiler package — into a circular import
_PIPELINE_EXPORTS = frozenset(name for name in __all__ if name != "MappingOptions")


def __getattr__(name: str):
    if name in _PIPELINE_EXPORTS:
        from repro.core import pipeline

        return getattr(pipeline, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(__all__))
