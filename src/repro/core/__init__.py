"""End-to-end compilation pipeline (the paper's system, assembled).

The implementation lives in :mod:`repro.compiler` as a staged pass pipeline
(affine analysis → multi-level tiling → scratchpad data management →
mapping/workload extraction) with first-class, fingerprintable stage
artifacts and replay-from-stage.  This package keeps the historical entry
points: :class:`MappingOptions` (the pipeline's knobs — still the canonical
home) and :class:`MappingPipeline`, whose ``compile``/``compile_with_config``
are deprecation shims over :class:`repro.compiler.CompilationSession`.
"""

from repro.core.options import MappingOptions
from repro.core.pipeline import (
    COMPILE_COUNTER,
    CompilationSession,
    CompileCount,
    CompileCounter,
    MappedKernel,
    MappingPipeline,
    counting_compiles,
)

__all__ = [
    "COMPILE_COUNTER",
    "CompilationSession",
    "CompileCount",
    "CompileCounter",
    "MappingOptions",
    "MappedKernel",
    "MappingPipeline",
    "counting_compiles",
]
