"""End-to-end compilation pipeline (the paper's system, assembled).

:class:`~repro.core.pipeline.MappingPipeline` chains the pieces the paper
describes: parallelism detection (bands), multi-level tiling, scratchpad data
management with copy-code placement, launch-geometry selection and workload
extraction for the machine models.
"""

from repro.core.options import MappingOptions
from repro.core.pipeline import (
    COMPILE_COUNTER,
    CompileCount,
    CompileCounter,
    MappedKernel,
    MappingPipeline,
    counting_compiles,
)

__all__ = [
    "COMPILE_COUNTER",
    "CompileCount",
    "CompileCounter",
    "MappingOptions",
    "MappedKernel",
    "MappingPipeline",
    "counting_compiles",
]
