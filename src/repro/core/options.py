"""Options controlling the end-to-end mapping pipeline."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional

from repro.scratchpad.reuse import DEFAULT_DELTA

_TARGETS = ("gpu", "cell")


@dataclass
class MappingOptions:
    """Knobs of :class:`~repro.core.pipeline.MappingPipeline`.

    Attributes
    ----------
    num_blocks:
        Total number of outer-level parallel processes (thread blocks).
    threads_per_block:
        Inner-level processes per block (``P`` in the cost model; the paper
        uses multiples of the warp size, 32).
    tile_sizes:
        Explicit memory-level tile sizes per original loop.  ``None`` runs the
        Section-4.3 tile-size search instead.
    use_scratchpad:
        Disable to obtain the "GPU without scratchpad" baseline of Figs. 4–5.
    delta:
        Algorithm-1 overlap threshold.
    target:
        ``"gpu"`` or ``"cell"`` staging policy.
    hoisting:
        Account for Section-4.2 hoisting of copy code out of redundant loops.
    liveness:
        Enable the Section-3.1.4 copy minimisation (extension).
    """

    num_blocks: int = 32
    threads_per_block: int = 256
    tile_sizes: Optional[Dict[str, int]] = None
    use_scratchpad: bool = True
    delta: float = DEFAULT_DELTA
    target: str = "gpu"
    hoisting: bool = True
    liveness: bool = False

    def __post_init__(self) -> None:
        if (
            not isinstance(self.num_blocks, int)
            or isinstance(self.num_blocks, bool)
            or self.num_blocks <= 0
        ):
            raise ValueError(f"num_blocks must be a positive integer, got {self.num_blocks!r}")
        if (
            not isinstance(self.threads_per_block, int)
            or isinstance(self.threads_per_block, bool)
            or self.threads_per_block <= 0
        ):
            raise ValueError(
                f"threads_per_block must be a positive integer, got {self.threads_per_block!r}"
            )
        if self.tile_sizes is not None:
            if not isinstance(self.tile_sizes, Mapping):
                raise ValueError(
                    f"tile_sizes must be a mapping of loop name to size, got {self.tile_sizes!r}"
                )
            for loop, size in self.tile_sizes.items():
                if not isinstance(loop, str) or not loop:
                    raise ValueError(f"tile_sizes keys must be loop names, got {loop!r}")
                if not isinstance(size, int) or isinstance(size, bool) or size <= 0:
                    raise ValueError(
                        f"tile size for loop {loop!r} must be a positive integer, got {size!r}"
                    )
            self.tile_sizes = dict(self.tile_sizes)
        if not 0 <= self.delta <= 1:
            raise ValueError(f"delta must lie in [0, 1], got {self.delta!r}")
        if self.target not in _TARGETS:
            raise ValueError(f"target must be one of {_TARGETS}, got {self.target!r}")

    # -- conversion helpers (used by repro.autotune) -----------------------------------
    def with_overrides(self, **changes: Any) -> "MappingOptions":
        """A copy with the given fields replaced (and re-validated)."""
        return dataclasses.replace(self, **changes)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable view, a stable fingerprint ingredient."""
        return {
            "num_blocks": self.num_blocks,
            "threads_per_block": self.threads_per_block,
            "tile_sizes": dict(sorted(self.tile_sizes.items())) if self.tile_sizes else None,
            "use_scratchpad": self.use_scratchpad,
            "delta": self.delta,
            "target": self.target,
            "hoisting": self.hoisting,
            "liveness": self.liveness,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "MappingOptions":
        """Inverse of :meth:`to_dict` (unknown keys rejected by the constructor)."""
        known = {f.name for f in dataclasses.fields(cls)}
        extra = set(payload) - known
        if extra:
            raise ValueError(f"unknown MappingOptions fields: {sorted(extra)}")
        return cls(**dict(payload))
