"""Options controlling the end-to-end mapping pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.scratchpad.reuse import DEFAULT_DELTA


@dataclass
class MappingOptions:
    """Knobs of :class:`~repro.core.pipeline.MappingPipeline`.

    Attributes
    ----------
    num_blocks:
        Total number of outer-level parallel processes (thread blocks).
    threads_per_block:
        Inner-level processes per block (``P`` in the cost model; the paper
        uses multiples of the warp size, 32).
    tile_sizes:
        Explicit memory-level tile sizes per original loop.  ``None`` runs the
        Section-4.3 tile-size search instead.
    use_scratchpad:
        Disable to obtain the "GPU without scratchpad" baseline of Figs. 4–5.
    delta:
        Algorithm-1 overlap threshold.
    target:
        ``"gpu"`` or ``"cell"`` staging policy.
    hoisting:
        Account for Section-4.2 hoisting of copy code out of redundant loops.
    liveness:
        Enable the Section-3.1.4 copy minimisation (extension).
    """

    num_blocks: int = 32
    threads_per_block: int = 256
    tile_sizes: Optional[Dict[str, int]] = None
    use_scratchpad: bool = True
    delta: float = DEFAULT_DELTA
    target: str = "gpu"
    hoisting: bool = True
    liveness: bool = False

    def __post_init__(self) -> None:
        if self.num_blocks <= 0:
            raise ValueError("num_blocks must be positive")
        if self.threads_per_block <= 0:
            raise ValueError("threads_per_block must be positive")
        if not 0 <= self.delta <= 1:
            raise ValueError("delta must lie in [0, 1]")
