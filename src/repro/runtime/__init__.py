"""Functional execution substrate.

The interpreter executes programs (original or transformed) over concrete
numpy arrays, producing both results (for correctness checks) and access
statistics (for the machine model's cost accounting).
"""

from repro.runtime.context import ExecutionContext, AccessCounters
from repro.runtime.interpreter import Interpreter, run_program

__all__ = ["ExecutionContext", "AccessCounters", "Interpreter", "run_program"]
