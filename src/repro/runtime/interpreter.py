"""Reference interpreter for loop-structure ASTs.

The interpreter executes a program sequentially over numpy arrays.  Parallel
loop annotations are ignored for value semantics (the transformations the
framework performs are only legal when sequential and parallel execution give
the same values), which makes the interpreter the correctness oracle for
every transformation: the scratchpad-transformed and multi-level tiled
programs must compute exactly the same array contents as the original.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

import numpy as np

from repro.ir.arrays import Array
from repro.ir.ast import (
    COPY_IN,
    COPY_OUT,
    BlockNode,
    GuardNode,
    LoopNode,
    Node,
    StatementNode,
    SyncNode,
)
from repro.ir.expressions import EvaluationEnv
from repro.ir.program import Program
from repro.ir.statements import Statement
from repro.runtime.context import ExecutionContext
from repro.polyhedral.affine import AffineExpr
from repro.polyhedral.parametric import QuasiAffineBound


_REDUCTIONS = {
    "+": lambda old, new: old + new,
    "*": lambda old, new: old * new,
    "min": lambda old, new: min(old, new),
    "max": lambda old, new: max(old, new),
}


class Interpreter(EvaluationEnv):
    """Executes a :class:`~repro.ir.program.Program` over an execution context."""

    def __init__(
        self,
        program: Program,
        context: ExecutionContext,
        check_domains: bool = True,
    ) -> None:
        self.program = program
        self.context = context
        self.check_domains = check_domains
        self._symbol_definitions = dict(getattr(program, "symbol_definitions", {}) or {})

    # -- EvaluationEnv protocol -------------------------------------------------
    def read(self, array: Array, indices) -> float:
        return self.context.read(array, indices)

    # -- execution -----------------------------------------------------------------
    def run(self) -> ExecutionContext:
        """Execute the whole program and return the (mutated) context."""
        binding: Dict[str, int] = dict(self.context.params)
        self._refresh_symbols(binding)
        self._exec(self.program.body, binding)
        return self.context

    def _exec(self, node: Node, binding: Dict[str, int]) -> None:
        if isinstance(node, BlockNode):
            for child in node.body:
                self._exec(child, binding)
        elif isinstance(node, LoopNode):
            low, high = node.bounds_at(binding)
            for value in range(low, high + 1, node.step):
                binding[node.iterator] = value
                self._refresh_symbols(binding)
                self._exec(node.body, binding)
            binding.pop(node.iterator, None)
            self._refresh_symbols(binding)
        elif isinstance(node, GuardNode):
            if node.holds_at(binding):
                self._exec(node.body, binding)
        elif isinstance(node, StatementNode):
            self._exec_statement(node, binding)
        elif isinstance(node, SyncNode):
            if node.scope == "threads":
                self.context.counters.thread_syncs += 1
            else:
                self.context.counters.block_syncs += 1
        else:
            raise TypeError(f"cannot interpret node of type {type(node).__name__}")

    def _exec_statement(self, node: StatementNode, binding: Dict[str, int]) -> None:
        statement = node.statement
        if self.check_domains and not self._in_domain(statement, binding):
            return
        value = statement.rhs.evaluate(self, binding)
        target = statement.lhs.index_point(binding)
        if statement.reduction is not None:
            old = self.context.read(statement.lhs.array, target)
            value = _REDUCTIONS[statement.reduction](old, value)
        self.context.write(statement.lhs.array, target, value)
        counters = self.context.counters
        counters.statement_instances += 1
        if node.kind == COPY_IN:
            counters.copy_in_elements += 1
        elif node.kind == COPY_OUT:
            counters.copy_out_elements += 1

    def _in_domain(self, statement: Statement, binding: Mapping[str, int]) -> bool:
        relevant = {}
        for name in statement.domain.dims + statement.domain.params:
            if name not in binding:
                return False
            relevant[name] = binding[name]
        return statement.domain.contains(relevant)

    def _refresh_symbols(self, binding: Dict[str, int]) -> None:
        """Recompute derived symbols (scratchpad offsets) from the current binding.

        Derived symbols are quasi-affine expressions over parameters and outer
        loop iterators registered by the scratchpad manager (see
        ``Program.symbol_definitions``); they are recomputed whenever the
        binding changes so inner code can use them like ordinary parameters.
        """
        if not self._symbol_definitions:
            return
        for name, definition in self._symbol_definitions.items():
            binding.pop(name, None)
        for name, definition in self._symbol_definitions.items():
            try:
                if isinstance(definition, QuasiAffineBound):
                    binding[name] = definition.evaluate_int(binding)
                elif isinstance(definition, AffineExpr):
                    value = definition.evaluate(binding)
                    binding[name] = int(value)
                else:
                    raise TypeError(
                        f"unsupported symbol definition type {type(definition).__name__}"
                    )
            except KeyError:
                # Not all free variables bound at this level yet; the symbol
                # becomes available deeper in the loop nest.
                continue


def run_program(
    program: Program,
    param_values: Optional[Mapping[str, int]] = None,
    inputs: Optional[Mapping[str, np.ndarray]] = None,
    check_domains: bool = True,
    count_accesses: bool = True,
) -> ExecutionContext:
    """Convenience wrapper: allocate arrays, bind inputs, run, return the context."""
    binding = program.bound_params(param_values)
    context = ExecutionContext(binding, count_accesses=count_accesses)
    for array in program.arrays.values():
        if inputs and array.name in inputs:
            context.bind_array(array, np.array(inputs[array.name]))
        elif not array.is_local:
            context.allocate(array)
    Interpreter(program, context, check_domains=check_domains).run()
    return context
