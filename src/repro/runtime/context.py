"""Execution context: concrete array storage, parameter bindings and counters."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro.ir.arrays import Array


@dataclass
class AccessCounters:
    """Dynamic access statistics collected while interpreting a program.

    The split between global and local (scratchpad) accesses, and between
    compute accesses and copy (DMA) traffic, is exactly the information the
    paper's cost model needs: copy volumes, number of copy occurrences and the
    residual global traffic of computation that was not redirected to the
    scratchpad.
    """

    global_reads: int = 0
    global_writes: int = 0
    local_reads: int = 0
    local_writes: int = 0
    copy_in_elements: int = 0
    copy_out_elements: int = 0
    copy_in_occurrences: int = 0
    copy_out_occurrences: int = 0
    statement_instances: int = 0
    thread_syncs: int = 0
    block_syncs: int = 0
    per_array_reads: Dict[str, int] = field(default_factory=dict)
    per_array_writes: Dict[str, int] = field(default_factory=dict)

    def record_read(self, array: Array) -> None:
        if array.is_local:
            self.local_reads += 1
        else:
            self.global_reads += 1
        self.per_array_reads[array.name] = self.per_array_reads.get(array.name, 0) + 1

    def record_write(self, array: Array) -> None:
        if array.is_local:
            self.local_writes += 1
        else:
            self.global_writes += 1
        self.per_array_writes[array.name] = self.per_array_writes.get(array.name, 0) + 1

    @property
    def total_global_accesses(self) -> int:
        return self.global_reads + self.global_writes

    @property
    def total_local_accesses(self) -> int:
        return self.local_reads + self.local_writes

    def summary(self) -> Dict[str, int]:
        """Flat dictionary view used by reports and tests."""
        return {
            "global_reads": self.global_reads,
            "global_writes": self.global_writes,
            "local_reads": self.local_reads,
            "local_writes": self.local_writes,
            "copy_in_elements": self.copy_in_elements,
            "copy_out_elements": self.copy_out_elements,
            "copy_in_occurrences": self.copy_in_occurrences,
            "copy_out_occurrences": self.copy_out_occurrences,
            "statement_instances": self.statement_instances,
            "thread_syncs": self.thread_syncs,
            "block_syncs": self.block_syncs,
        }


_DTYPE_MAP = {
    "float32": np.float32,
    "float64": np.float64,
    "int32": np.int64,   # interpret integer data in wide arithmetic
    "int64": np.int64,
}


class ExecutionContext:
    """Holds concrete numpy storage for every array touched by a program."""

    def __init__(
        self,
        param_binding: Optional[Mapping[str, int]] = None,
        count_accesses: bool = True,
    ) -> None:
        self.params: Dict[str, int] = {k: int(v) for k, v in (param_binding or {}).items()}
        self.counters = AccessCounters()
        self.count_accesses = count_accesses
        self._storage: Dict[str, np.ndarray] = {}
        self._arrays: Dict[str, Array] = {}

    # -- storage management ------------------------------------------------------
    def bind_array(self, array: Array, data: np.ndarray) -> None:
        """Register externally provided storage for an array (input data)."""
        expected = array.concrete_shape(self.params)
        if tuple(data.shape) != expected:
            raise ValueError(
                f"array {array.name}: provided data has shape {tuple(data.shape)}, "
                f"expected {expected}"
            )
        self._arrays[array.name] = array
        self._storage[array.name] = np.asarray(data, dtype=_DTYPE_MAP.get(array.dtype, np.float64))

    def allocate(self, array: Array) -> np.ndarray:
        """Allocate zero-initialised storage for an array (idempotent)."""
        if array.name not in self._storage:
            shape = array.concrete_shape(self.params)
            dtype = _DTYPE_MAP.get(array.dtype, np.float64)
            self._storage[array.name] = np.zeros(shape, dtype=dtype)
            self._arrays[array.name] = array
        return self._storage[array.name]

    def data(self, name: str) -> np.ndarray:
        """Raw storage of an array by name."""
        try:
            return self._storage[name]
        except KeyError:
            raise KeyError(f"array {name!r} has no storage in this context") from None

    def has_array(self, name: str) -> bool:
        return name in self._storage

    # -- element access ------------------------------------------------------------
    def read(self, array: Array, indices: Tuple[int, ...]) -> float:
        storage = self.allocate(array)
        try:
            value = storage[indices]
        except IndexError:
            raise IndexError(
                f"read out of bounds: {array.name}{list(indices)} with shape {storage.shape}"
            ) from None
        if any(i < 0 for i in indices):
            raise IndexError(
                f"negative index in read of {array.name}{list(indices)}"
            )
        if self.count_accesses:
            self.counters.record_read(array)
        return float(value)

    def write(self, array: Array, indices: Tuple[int, ...], value: float) -> None:
        storage = self.allocate(array)
        if any(i < 0 for i in indices):
            raise IndexError(
                f"negative index in write of {array.name}{list(indices)}"
            )
        try:
            storage[indices] = value
        except IndexError:
            raise IndexError(
                f"write out of bounds: {array.name}{list(indices)} with shape {storage.shape}"
            ) from None
        if self.count_accesses:
            self.counters.record_write(array)
