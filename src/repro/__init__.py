"""repro — reproduction of Baskaran et al., PPoPP 2008.

"Automatic Data Movement and Computation Mapping for Multi-level Parallel
Architectures with Explicitly Managed Memories."

Public API highlights
---------------------
* :class:`repro.ir.ProgramBuilder` — write affine programs.
* :class:`repro.scratchpad.ScratchpadManager` — automatic scratchpad data
  management (Section 3 of the paper).
* :func:`repro.tiling.tile_program` and
  :func:`repro.tiling.search_tile_sizes` — multi-level tiling and the
  tile-size search (Section 4).
* :class:`repro.compiler.CompilationSession` — the end-to-end compiler as a
  staged pass pipeline with inspectable artifacts and replay-from-stage
  (:class:`repro.core.MappingPipeline` remains as a deprecated shim).
* :func:`repro.autotune.autotune` — empirical autotuning with parallel
  (thread or process) evaluation, URI-selected evaluation backends
  (``model:`` / ``measure-py:`` / ``measure-c:`` /
  ``hybrid:model>measure-py?top=K``) and a persistent compilation cache.
* :mod:`repro.service` — the autotuner served as a long-lived multi-process
  tuning server with a shared cache and in-flight request deduplication.
* :mod:`repro.machine` — the GPU / CPU performance models standing in for the
  paper's GeForce 8800 GTX testbed, plus :class:`~repro.machine.GridSpec`,
  the multi-PE grid target of the distributed kernel family.
* :mod:`repro.distmodel` — the communication-aware cost model (asymmetric
  host links, hop latency, overlap-aware phase schedules) pricing
  distributed SUMMA-GEMM mappings.
* :mod:`repro.kernels` — the evaluation workloads (MPEG-4 ME, 1-D/2-D
  Jacobi, matmul, conv2d, distributed-gemm).
"""

from repro.autotune import (
    BackendUnavailable,
    EvaluationBackend,
    Measurement,
    TuningCache,
    TuningReport,
    autotune,
    autotune_batch,
    parse_backend_uri,
    tuning_fingerprint,
)
from repro.compiler import (
    CompilationSession,
    Pass,
    PassManager,
    STAGE_COUNTER,
    StageArtifact,
    counting_stage_runs,
)
from repro.core import (
    COMPILE_COUNTER,
    MappedKernel,
    MappingOptions,
    MappingPipeline,
    counting_compiles,
)
from repro.ir import Program, ProgramBuilder
from repro.machine import (
    CPUPerformanceModel,
    GPUPerformanceModel,
    GEFORCE_8800_GTX,
    REFERENCE_CPU,
    simulate_cpu,
    simulate_gpu,
)
from repro.runtime import run_program
from repro.scratchpad import ScratchpadManager, ScratchpadOptions
from repro.tiling import TilingLevelSpec, analyze_bands, search_tile_sizes, tile_program

__version__ = "1.0.0"

__all__ = [
    "BackendUnavailable",
    "COMPILE_COUNTER",
    "CompilationSession",
    "EvaluationBackend",
    "Measurement",
    "Pass",
    "PassManager",
    "STAGE_COUNTER",
    "StageArtifact",
    "TuningCache",
    "TuningReport",
    "autotune",
    "autotune_batch",
    "counting_compiles",
    "counting_stage_runs",
    "parse_backend_uri",
    "tuning_fingerprint",
    "MappedKernel",
    "MappingOptions",
    "MappingPipeline",
    "Program",
    "ProgramBuilder",
    "CPUPerformanceModel",
    "GPUPerformanceModel",
    "GEFORCE_8800_GTX",
    "REFERENCE_CPU",
    "simulate_cpu",
    "simulate_gpu",
    "run_program",
    "ScratchpadManager",
    "ScratchpadOptions",
    "TilingLevelSpec",
    "analyze_bands",
    "search_tile_sizes",
    "tile_program",
    "__version__",
]
