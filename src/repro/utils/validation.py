"""Lightweight argument-validation helpers.

These keep precondition checks one-liners at public API boundaries while
producing error messages that name the offending argument.
"""

from __future__ import annotations

from typing import Any, Tuple, Type, Union


def require(condition: bool, message: str) -> None:
    """Raise ``ValueError(message)`` unless *condition* holds."""
    if not condition:
        raise ValueError(message)


def require_type(value: Any, types: Union[Type, Tuple[Type, ...]], name: str) -> None:
    """Raise ``TypeError`` unless *value* is an instance of *types*."""
    if not isinstance(value, types):
        if isinstance(types, tuple):
            expected = ", ".join(t.__name__ for t in types)
        else:
            expected = types.__name__
        raise TypeError(f"{name} must be of type {expected}, got {type(value).__name__}")


def require_positive(value: Union[int, float], name: str) -> None:
    """Raise ``ValueError`` unless *value* is strictly positive."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value}")
