"""Small shared utilities used across the ``repro`` package."""

from repro.utils.frac import as_fraction, fraction_ceil, fraction_floor, lcm_many, gcd_many
from repro.utils.naming import NameGenerator, fresh_name
from repro.utils.validation import require, require_type, require_positive

__all__ = [
    "as_fraction",
    "fraction_ceil",
    "fraction_floor",
    "lcm_many",
    "gcd_many",
    "NameGenerator",
    "fresh_name",
    "require",
    "require_type",
    "require_positive",
]
