"""Exact rational-arithmetic helpers.

The polyhedral layer works over the rationals so that projections, images and
emptiness tests are exact.  Everything funnels through :class:`fractions.Fraction`;
these helpers centralise the conversions and the handful of integer-rounding
operations (ceil/floor division) that quasi-affine bounds need.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Iterable, Union

Rational = Union[int, Fraction]


def as_fraction(value: Union[int, float, str, Fraction]) -> Fraction:
    """Convert *value* to an exact :class:`Fraction`.

    Floats are accepted only when they are exactly representable as a ratio of
    small integers (``Fraction(value).limit_denominator`` is *not* applied); a
    float that carries rounding noise raises ``ValueError`` so that inexact
    data never silently enters the exact layer.
    """
    if isinstance(value, Fraction):
        return value
    if isinstance(value, bool):  # bool is an int subclass; reject explicitly
        raise TypeError("booleans are not valid rational values")
    if isinstance(value, int):
        return Fraction(value)
    if isinstance(value, str):
        return Fraction(value)
    if isinstance(value, float):
        if not math.isfinite(value):
            raise ValueError(f"non-finite float {value!r} cannot become a Fraction")
        frac = Fraction(value)
        if frac.denominator > 1_000_000:
            raise ValueError(
                f"float {value!r} does not look like an exact rational; "
                "pass a Fraction or an int instead"
            )
        return frac
    raise TypeError(f"cannot interpret {type(value).__name__} as a rational number")


def fraction_floor(value: Rational) -> int:
    """Exact floor of a rational value, returned as ``int``."""
    frac = as_fraction(value)
    return frac.numerator // frac.denominator


def fraction_ceil(value: Rational) -> int:
    """Exact ceiling of a rational value, returned as ``int``."""
    frac = as_fraction(value)
    return -((-frac.numerator) // frac.denominator)


def gcd_many(values: Iterable[int]) -> int:
    """Greatest common divisor of an iterable of integers (0 for empty)."""
    result = 0
    for v in values:
        result = math.gcd(result, int(v))
    return result


def lcm_many(values: Iterable[int]) -> int:
    """Least common multiple of an iterable of integers (1 for empty)."""
    result = 1
    for v in values:
        v = abs(int(v))
        if v == 0:
            continue
        result = result * v // math.gcd(result, v)
    return result
