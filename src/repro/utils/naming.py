"""Fresh-name generation for generated dimensions, buffers and loops."""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, Optional, Set


class NameGenerator:
    """Produce names that do not collide with a set of reserved names.

    Used by the code generator and the scratchpad manager when introducing new
    loop iterators (``c0``, ``c1``, ...) and local buffers (``l_A_0``, ...).
    """

    def __init__(self, reserved: Optional[Iterable[str]] = None) -> None:
        self._reserved: Set[str] = set(reserved or ())

    def reserve(self, name: str) -> None:
        """Mark *name* as taken."""
        self._reserved.add(name)

    def reserve_all(self, names: Iterable[str]) -> None:
        for name in names:
            self.reserve(name)

    def fresh(self, prefix: str) -> str:
        """Return an unused name starting with *prefix* and reserve it."""
        if prefix not in self._reserved:
            self._reserved.add(prefix)
            return prefix
        for i in itertools.count():
            candidate = f"{prefix}{i}"
            if candidate not in self._reserved:
                self._reserved.add(candidate)
                return candidate
        raise RuntimeError("unreachable")

    def fresh_sequence(self, prefix: str, count: int) -> list:
        """Return *count* distinct fresh names sharing *prefix*."""
        return [self.fresh(f"{prefix}{i}") for i in range(count)]

    def __contains__(self, name: str) -> bool:
        return name in self._reserved


_GLOBAL_COUNTER: Iterator[int] = itertools.count()


def fresh_name(prefix: str = "tmp") -> str:
    """Module-level convenience: globally unique name with *prefix*."""
    return f"{prefix}_{next(_GLOBAL_COUNTER)}"
