"""C toolchain discovery for the measured-C evaluation backend.

The ``measure-c:`` backend compiles and times emitted C; whether that is
possible depends on the host.  :func:`find_c_compiler` answers the question
with ``shutil.which`` — honouring an explicit request (the backend's
``cc=...`` URI option), then the ``CC`` environment variable, then the
conventional compiler names — and returns ``None`` instead of raising when no
toolchain exists, so callers can degrade cleanly (the backend raises
:class:`~repro.autotune.backends.BackendUnavailable`, tests skip via
:func:`c_toolchain_skip_reason`).
"""

from __future__ import annotations

import os
import shutil
from typing import Optional, Sequence

#: compiler names probed, in order, when neither ``cc=`` nor ``$CC`` is set
DEFAULT_COMPILERS: Sequence[str] = ("cc", "gcc", "clang")


def find_c_compiler(cc: Optional[str] = None) -> Optional[str]:
    """Absolute path of a usable C compiler, or ``None``.

    ``cc`` pins a specific compiler (name or path) — when given and not
    found, the answer is ``None`` even if other compilers exist, so an
    explicit ``measure-c:cc=...`` request never silently falls back to a
    different toolchain.  Otherwise ``$CC`` is honoured first, then the
    conventional names (``cc``, ``gcc``, ``clang``).
    """
    if cc is not None:
        return shutil.which(cc)
    env_cc = os.environ.get("CC")
    if env_cc:
        found = shutil.which(env_cc)
        if found:
            return found
    for name in DEFAULT_COMPILERS:
        found = shutil.which(name)
        if found:
            return found
    return None


def c_toolchain_skip_reason(cc: Optional[str] = None) -> Optional[str]:
    """``None`` when a toolchain is present, else a human-readable reason.

    Designed for pytest markers::

        requires_c_toolchain = pytest.mark.skipif(
            c_toolchain_skip_reason() is not None,
            reason=c_toolchain_skip_reason() or "",
        )
    """
    if find_c_compiler(cc) is not None:
        return None
    probed = [cc] if cc is not None else [os.environ.get("CC") or "", *DEFAULT_COMPILERS]
    names = ", ".join(name for name in probed if name)
    return f"no C toolchain found (probed: {names})"
