"""Loop generation from polyhedra (CLooG substitute) and code emission.

Given a polyhedron (or a union of polyhedra) over a set of dimensions, the
scanner produces a loop-structure AST (:mod:`repro.ir.ast`) that visits every
integer point exactly once.  The scratchpad framework uses this to generate
copy-in / copy-out loop nests (each element loaded/stored once even when the
per-reference data spaces overlap), and the emitters render transformed
programs as C-like text for inspection.
"""

from repro.codegen.scan import scan_polyhedron, loop_nest_for
from repro.codegen.union_scan import scan_union
from repro.codegen.emit_c import emit_c
from repro.codegen.emit_c_exec import emit_c_harness
from repro.codegen.emit_py import compile_to_python, emit_python_source
from repro.codegen.emit_py_vec import emit_python_source_vectorized
from repro.codegen.toolchain import c_toolchain_skip_reason, find_c_compiler

# last: pulls in repro.autotune.store (the _locked idiom), which transitively
# imports this package's submodules — everything it needs is defined above
from repro.codegen.compile_cache import CompileCache, open_compile_cache

__all__ = [
    "scan_polyhedron",
    "loop_nest_for",
    "scan_union",
    "c_toolchain_skip_reason",
    "emit_c",
    "emit_c_harness",
    "compile_to_python",
    "emit_python_source",
    "emit_python_source_vectorized",
    "find_c_compiler",
    "CompileCache",
    "open_compile_cache",
]
