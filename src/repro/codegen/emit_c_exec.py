"""Emission of *compilable, runnable* C from loop-structure ASTs.

:func:`repro.codegen.emit_c.emit_c` renders programs as C-like text for
inspection (``forall_blocks``, ``__syncthreads()`` — the paper's figures).
This module instead emits a self-contained C99 translation unit that a host
toolchain can compile and *time* — the ``measure-c:`` evaluation backend's
artifact.  The harness contains

* the kernel body as plain sequential loops (parallel annotations drop to
  ordinary ``for`` — the transformations are only legal when sequential and
  parallel execution agree, exactly the interpreter's convention),
* deterministic seeded array initialisation (an LCG, so two hosts fill the
  same values without sharing numpy),
* a ``main`` that runs ``warmup`` unrecorded and ``repeat`` timed executions
  (``CLOCK_MONOTONIC``), re-initialising the arrays before each run, printing
  one wall-time-in-nanoseconds line per timed run, and

Every timing knob is an ``argv`` override — ``argv[1]`` warmup, ``argv[2]``
repeat, ``argv[3]`` the init seed — so the *source text* (and therefore the
compiled binary) depends only on the mapped program and its parameter
binding.  That is what makes the ``measure-c:`` compile cache effective:
candidates that differ only in timing knobs or input seed share one binary.
* a stderr checksum over every array so the optimiser cannot discard the
  kernel as dead code.

Loop bounds, guards and array indices mirror :mod:`repro.codegen.emit_py`
semantics **exactly**: the Python emitter evaluates them in ``Fraction``
arithmetic, so this emitter scales each affine form to a common integer
denominator and uses exact integer ``floord``/``ceild``/``truncd`` helpers —
never floating point, whose rounding could disagree with the reference on
fractional bounds like ``i/3``.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.ir.ast import (
    BlockNode,
    GuardNode,
    LoopNode,
    Node,
    StatementNode,
    SyncNode,
)
from repro.ir.expressions import AffineValue, BinOp, Call, Const, Expr, Iter, Load
from repro.ir.program import Program
from repro.polyhedral.affine import AffineExpr
from repro.polyhedral.parametric import QuasiAffineBound

_INDENT = "    "

#: data-expression calls mapped onto libm (everything else passes through)
_CALL_MAP = {"min": "fmin", "max": "fmax", "abs": "fabs"}

_PRELUDE = """\
#include <stdio.h>
#include <stdlib.h>
#include <math.h>
#include <time.h>

/* exact rational rounding — must agree with Python Fraction semantics */
static long floord(long n, long d) {
    long q = n / d;
    return (n % d != 0 && ((n < 0) != (d < 0))) ? q - 1 : q;
}
static long ceild(long n, long d) { return -floord(-n, d); }
static long truncd(long n, long d) { return n / d; }  /* int(Fraction): toward zero */
static long lmin(long a, long b) { return a < b ? a : b; }
static long lmax(long a, long b) { return a > b ? a : b; }
"""


def _scaled(expr: AffineExpr) -> Tuple[str, int]:
    """Integer rendering of ``expr * D`` plus the common denominator ``D``."""
    denominator = int(Fraction(expr.constant).denominator)
    for name in expr.coefficients:
        denominator = math.lcm(denominator, Fraction(expr.coefficient(name)).denominator)
    terms: List[str] = []
    for name in sorted(expr.coefficients):
        coefficient = Fraction(expr.coefficient(name)) * denominator
        assert coefficient.denominator == 1
        terms.append(f"({int(coefficient)})*{name}")
    constant = Fraction(expr.constant) * denominator
    assert constant.denominator == 1
    if int(constant) != 0 or not terms:
        terms.append(f"({int(constant)})")
    return " + ".join(terms), denominator


def _rounded(expr: AffineExpr, fn: str) -> str:
    numerator, denominator = _scaled(expr)
    if denominator == 1:
        return f"({numerator})"
    return f"{fn}({numerator}, {denominator})"


def _combine(pieces: Sequence[str], combiner: str) -> str:
    combined = pieces[0]
    for piece in pieces[1:]:
        combined = f"{combiner}({combined}, {piece})"
    return combined


def _bound_to_c(value, *, is_lower: bool) -> str:
    """A loop bound as an exact ``long`` expression.

    Rounding distributes over min/max (both are monotone), so a quasi-affine
    bound rounds each branch and combines with ``lmin``/``lmax`` — identical
    to the Python emitter's ``_ceil(min(...))``.
    """
    fn = "ceild" if is_lower else "floord"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, AffineExpr):
        return _rounded(value, fn)
    if isinstance(value, QuasiAffineBound):
        combiner = "lmin" if value.kind == "min" else "lmax"
        return _combine([_rounded(e, fn) for e in value.exprs], combiner)
    raise TypeError(f"unsupported bound type {type(value).__name__}")


def _index_to_c(expr: AffineExpr) -> str:
    """An array index: ``int(Fraction)`` truncates toward zero, so ``truncd``."""
    numerator, denominator = _scaled(expr)
    if denominator == 1:
        return f"({numerator})"
    return f"truncd({numerator}, {denominator})"


def _affine_value_to_c(expr: AffineExpr) -> str:
    numerator, denominator = _scaled(expr)
    if denominator == 1:
        return f"((double)({numerator}))"
    return f"(((double)({numerator})) / {denominator}.0)"


def _constraint_to_c(expr: AffineExpr, is_equality: bool) -> str:
    # scaling by the (positive) common denominator preserves the sign
    numerator, _denominator = _scaled(expr)
    op = "==" if is_equality else ">="
    return f"({numerator}) {op} 0"


def _load_to_c(load: Load) -> str:
    indices = "".join(f"[{_index_to_c(i)}]" for i in load.indices)
    return f"{load.array.name}{indices}"


def _expr_to_c(expr: Expr) -> str:
    if isinstance(expr, Const):
        return repr(float(expr.value))
    if isinstance(expr, Iter):
        return expr.name
    if isinstance(expr, AffineValue):
        return _affine_value_to_c(expr.expr)
    if isinstance(expr, Load):
        return _load_to_c(expr)
    if isinstance(expr, BinOp):
        return f"({_expr_to_c(expr.lhs)} {expr.op} {_expr_to_c(expr.rhs)})"
    if isinstance(expr, Call):
        args = ", ".join(_expr_to_c(a) for a in expr.args)
        return f"{_CALL_MAP.get(expr.func, expr.func)}({args})"
    raise TypeError(f"cannot emit expression of type {type(expr).__name__}")


class _HarnessEmitter:
    def __init__(self, program: Program, binding: Mapping[str, int], check_domains: bool) -> None:
        self.program = program
        self.binding = dict(binding)
        self.check_domains = check_domains
        self.lines: List[str] = []
        self.symbol_definitions = dict(program.symbol_definitions or {})
        self._emitted_symbols: List[Set[str]] = [set()]

    def emit(self, line: str, depth: int) -> None:
        self.lines.append(f"{_INDENT * depth}{line}" if line else "")

    # -- derived symbols (same scoping rules as the Python emitter) ---------------
    def _emit_symbols(self, bound: Set[str], depth: int) -> None:
        already = set().union(*self._emitted_symbols)
        for name, definition in self.symbol_definitions.items():
            if name in already:
                continue
            if isinstance(definition, QuasiAffineBound):
                free = {v for e in definition.exprs for v in e.variables}
                code = _bound_to_c(definition, is_lower=(definition.kind == "max"))
            elif isinstance(definition, AffineExpr):
                free = set(definition.variables)
                code = _index_to_c(definition)
            else:
                raise TypeError(
                    f"unsupported symbol definition type {type(definition).__name__}"
                )
            if free <= bound:
                self.emit(f"long {name} = {code};", depth)
                self._emitted_symbols[-1].add(name)

    # -- node emission ------------------------------------------------------------
    def emit_node(self, node: Node, depth: int, bound: Set[str]) -> None:
        if isinstance(node, BlockNode):
            for child in node.body:
                self.emit_node(child, depth, bound)
        elif isinstance(node, LoopNode):
            low = _bound_to_c(node.lower, is_lower=True)
            high = _bound_to_c(node.upper, is_lower=False)
            step = f"{node.iterator} += {node.step}" if node.step != 1 else f"{node.iterator}++"
            self.emit(
                f"for (long {node.iterator} = {low}; {node.iterator} <= {high}; {step}) {{",
                depth,
            )
            inner_bound = bound | {node.iterator}
            self._emitted_symbols.append(set())
            self._emit_symbols(inner_bound, depth + 1)
            new_bound = inner_bound | self._emitted_symbols[-1]
            self.emit_node(node.body, depth + 1, new_bound)
            self._emitted_symbols.pop()
            self.emit("}", depth)
        elif isinstance(node, GuardNode):
            conditions = [
                _constraint_to_c(c.expr, c.is_equality) for c in node.constraints
            ]
            self.emit(f"if ({' && '.join(conditions) or '1'}) {{", depth)
            self.emit_node(node.body, depth + 1, bound)
            self.emit("}", depth)
        elif isinstance(node, StatementNode):
            self._emit_statement(node, depth)
        elif isinstance(node, SyncNode):
            self.emit(f"/* sync({node.scope}) */;", depth)
        else:
            raise TypeError(f"cannot emit node of type {type(node).__name__}")

    def _emit_statement(self, node: StatementNode, depth: int) -> None:
        statement = node.statement
        if self.check_domains and statement.domain.constraints:
            conditions = [
                _constraint_to_c(c.expr, c.is_equality)
                for c in statement.domain.constraints
            ]
            self.emit(f"if ({' && '.join(conditions)}) {{", depth)
            self._emit_assignment(statement, depth + 1)
            self.emit("}", depth)
        else:
            self._emit_assignment(statement, depth)

    def _emit_assignment(self, statement, depth: int) -> None:
        lhs = _load_to_c(statement.lhs)
        rhs = _expr_to_c(statement.rhs)
        if statement.reduction in ("+", "*"):
            self.emit(f"{lhs} {statement.reduction}= {rhs};", depth)
        elif statement.reduction in ("min", "max"):
            fn = _CALL_MAP[statement.reduction]
            self.emit(f"{lhs} = {fn}({lhs}, {rhs});", depth)
        else:
            self.emit(f"{lhs} = {rhs};", depth)

    # -- file-scope sections ------------------------------------------------------
    def emit_declarations(self) -> None:
        for name in sorted(self.binding):
            self.emit(f"static const long {name} = {int(self.binding[name])};", 0)
        for array in self.program.arrays.values():
            extents = "".join(f"[{int(extent)}]" for extent in array.shape)
            self.emit(f"static double {array.name}{extents};", 0)
        self.emit("", 0)

    def emit_init(self) -> None:
        # seed is a runtime parameter (argv[3]), never baked into the source:
        # the compile cache keys binaries on the source text
        self.emit("static void init_arrays(unsigned long long seed) {", 0)
        self.emit("unsigned long long s = 0x9E3779B97F4A7C15ULL ^ seed;", 1)
        for array in self.program.arrays.values():
            total = 1
            for extent in array.shape:
                total *= int(extent)
            self.emit("{", 1)
            self.emit(f"double *p = (double *){array.name};", 2)
            if array.is_local:
                # scratchpad buffers start cleared, like fresh allocations
                self.emit(f"for (long q = 0; q < {total}; ++q) p[q] = 0.0;", 2)
            else:
                self.emit(f"for (long q = 0; q < {total}; ++q) {{", 2)
                self.emit("s = s * 6364136223846793005ULL + 1442695040888963407ULL;", 3)
                self.emit("p[q] = (double)((s >> 11) & 0xFFFFFFULL) / 16777216.0;", 3)
                self.emit("}", 2)
            self.emit("}", 1)
        self.emit("}", 0)
        self.emit("", 0)

    def emit_kernel(self) -> None:
        self.emit("static void kernel(void) {", 0)
        bound = set(self.binding)
        self._emit_symbols(bound, 1)
        bound = bound | self._emitted_symbols[-1]
        if not self.program.body.body:
            self.emit(";", 1)
        else:
            self.emit_node(self.program.body, 1, bound)
        self.emit("}", 0)
        self.emit("", 0)

    def emit_main(self, warmup: int, repeat: int, seed: int) -> None:
        self.emit("int main(int argc, char **argv) {", 0)
        self.emit(f"long warmup = argc > 1 ? atol(argv[1]) : {warmup};", 1)
        self.emit(f"long repeat = argc > 2 ? atol(argv[2]) : {repeat};", 1)
        self.emit(
            f"unsigned long long seed = argc > 3 ? strtoull(argv[3], 0, 10) : {seed}ULL;",
            1,
        )
        self.emit("for (long r = 0; r < warmup + repeat; ++r) {", 1)
        self.emit("init_arrays(seed);", 2)
        self.emit("struct timespec t0, t1;", 2)
        self.emit("clock_gettime(CLOCK_MONOTONIC, &t0);", 2)
        self.emit("kernel();", 2)
        self.emit("clock_gettime(CLOCK_MONOTONIC, &t1);", 2)
        self.emit("if (r >= warmup) {", 2)
        self.emit(
            'printf("%lld\\n", (long long)(t1.tv_sec - t0.tv_sec) * 1000000000LL'
            " + (long long)(t1.tv_nsec - t0.tv_nsec));",
            3,
        )
        self.emit("}", 2)
        self.emit("}", 1)
        self.emit("double checksum = 0.0;  /* keep the kernel observable */", 1)
        for array in self.program.arrays.values():
            total = 1
            for extent in array.shape:
                total *= int(extent)
            self.emit("{", 1)
            self.emit(f"double *p = (double *){array.name};", 2)
            self.emit(f"for (long q = 0; q < {total}; ++q) checksum += p[q];", 2)
            self.emit("}", 1)
        self.emit('fprintf(stderr, "checksum %.17g\\n", checksum);', 1)
        self.emit("return 0;", 1)
        self.emit("}", 0)


def emit_c_harness(
    program: Program,
    param_values: Optional[Mapping[str, int]] = None,
    seed: int = 0,
    warmup: int = 1,
    repeat: int = 3,
    check_domains: bool = True,
) -> str:
    """Emit ``program`` as a complete, compilable C timing harness.

    The binary runs ``warmup + repeat`` kernel executions (arrays re-seeded
    before each) and prints one nanosecond wall time per *timed* run on
    stdout; ``argv[1]``/``argv[2]``/``argv[3]`` override warmup/repeat/seed
    without a recompile — the ``seed``/``warmup``/``repeat`` arguments here
    only choose the argv-less *defaults* baked into ``main``.  A caller that
    always emits with the same canonical defaults and passes its real knobs
    via argv (the ``measure-c:`` backend does) therefore gets source that
    depends only on the program and its parameter binding — the compile-cache
    contract.  Parameters are baked from the program's bound values
    (overridden by ``param_values``), matching interpreter semantics.
    """
    binding = program.bound_params(param_values)
    emitter = _HarnessEmitter(program, binding, check_domains)
    emitter.emit(f"/* generated timing harness: {program.name} */", 0)
    emitter.lines.extend(_PRELUDE.splitlines())
    emitter.emit("", 0)
    emitter.emit_declarations()
    emitter.emit_init()
    emitter.emit_kernel()
    emitter.emit_main(warmup, repeat, seed)
    return "\n".join(emitter.lines) + "\n"
