"""Emission of executable Python from loop-structure ASTs.

While the reference interpreter (:mod:`repro.runtime.interpreter`) is the
semantic oracle, it pays Fraction-arithmetic overhead per array access.  For
larger functional checks the code generator can instead emit plain Python
source — nested ``for`` loops indexing numpy arrays — and compile it with
``exec``.  The emitted function has the signature ``fn(arrays, params)`` where
``arrays`` maps array names to numpy ndarrays and ``params`` maps parameter
names to ints; it mutates the arrays in place, exactly like the interpreter.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Set

from repro.ir.ast import (
    BlockNode,
    GuardNode,
    LoopNode,
    Node,
    StatementNode,
    SyncNode,
)
from repro.ir.expressions import AffineValue, BinOp, Call, Const, Expr, Iter, Load
from repro.ir.program import Program
from repro.polyhedral.affine import AffineExpr
from repro.polyhedral.parametric import QuasiAffineBound

_INDENT = "    "


def _frac_to_py(value: Fraction) -> str:
    if value.denominator == 1:
        return str(value.numerator)
    return f"Fraction({value.numerator}, {value.denominator})"


def _affine_to_py(expr: AffineExpr) -> str:
    parts: List[str] = []
    for name in sorted(expr.coefficients):
        coeff = expr.coefficient(name)
        if coeff == 1:
            parts.append(f"{name}")
        else:
            parts.append(f"({_frac_to_py(coeff)})*{name}")
    if expr.constant != 0 or not parts:
        parts.append(f"({_frac_to_py(expr.constant)})")
    return " + ".join(parts)


def _bound_to_py(value, *, is_lower: bool) -> str:
    rounding = "_ceil" if is_lower else "_floor"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, AffineExpr):
        return f"{rounding}({_affine_to_py(value)})"
    if isinstance(value, QuasiAffineBound):
        inner = ", ".join(_affine_to_py(e) for e in value.exprs)
        combiner = "min" if value.kind == "min" else "max"
        if len(value.exprs) == 1:
            return f"{rounding}({inner})"
        return f"{rounding}({combiner}({inner}))"
    raise TypeError(f"unsupported bound type {type(value).__name__}")


def _expr_to_py(expr: Expr) -> str:
    if isinstance(expr, Const):
        return repr(float(expr.value))
    if isinstance(expr, Iter):
        return expr.name
    if isinstance(expr, AffineValue):
        return f"({_affine_to_py(expr.expr)})"
    if isinstance(expr, Load):
        return _load_to_py(expr)
    if isinstance(expr, BinOp):
        return f"({_expr_to_py(expr.lhs)} {expr.op} {_expr_to_py(expr.rhs)})"
    if isinstance(expr, Call):
        args = ", ".join(_expr_to_py(a) for a in expr.args)
        return f"{expr.func}({args})"
    raise TypeError(f"cannot emit expression of type {type(expr).__name__}")


def _load_to_py(load: Load) -> str:
    indices = ", ".join(f"_idx({_affine_to_py(i)})" for i in load.indices)
    return f"{load.array.name}[{indices}]"


class _Emitter:
    def __init__(self, program: Program, check_domains: bool) -> None:
        self.program = program
        self.check_domains = check_domains
        self.lines: List[str] = []
        self.symbol_definitions = dict(program.symbol_definitions or {})
        self._emitted_symbols: List[Set[str]] = [set()]

    # -- helpers ---------------------------------------------------------------
    def emit(self, line: str, depth: int) -> None:
        self.lines.append(f"{_INDENT * depth}{line}")

    def _emit_symbols(self, bound: Set[str], depth: int) -> None:
        """Define derived symbols whose free variables are all in scope."""
        already = set().union(*self._emitted_symbols)
        for name, definition in self.symbol_definitions.items():
            if name in already:
                continue
            if isinstance(definition, QuasiAffineBound):
                free = {v for e in definition.exprs for v in e.variables}
                code = _bound_to_py(definition, is_lower=(definition.kind == "max"))
            elif isinstance(definition, AffineExpr):
                free = set(definition.variables)
                code = f"_idx({_affine_to_py(definition)})"
            else:
                raise TypeError(
                    f"unsupported symbol definition type {type(definition).__name__}"
                )
            if free <= bound:
                self.emit(f"{name} = {code}", depth)
                self._emitted_symbols[-1].add(name)

    # -- node emission ------------------------------------------------------------
    def emit_node(self, node: Node, depth: int, bound: Set[str]) -> None:
        if isinstance(node, BlockNode):
            if not node.body:
                self.emit("pass", depth)
                return
            for child in node.body:
                self.emit_node(child, depth, bound)
        elif isinstance(node, LoopNode):
            low = _bound_to_py(node.lower, is_lower=True)
            high = _bound_to_py(node.upper, is_lower=False)
            step = f", {node.step}" if node.step != 1 else ""
            self.emit(f"for {node.iterator} in range({low}, ({high}) + 1{step}):", depth)
            inner_bound = bound | {node.iterator}
            self._emitted_symbols.append(set())
            self._emit_symbols(inner_bound, depth + 1)
            new_bound = inner_bound | self._emitted_symbols[-1]
            self.emit_node(node.body, depth + 1, new_bound)
            self._emitted_symbols.pop()
        elif isinstance(node, GuardNode):
            conditions = []
            for constraint in node.constraints:
                op = "==" if constraint.is_equality else ">="
                conditions.append(f"({_affine_to_py(constraint.expr)}) {op} 0")
            self.emit(f"if {' and '.join(conditions) or 'True'}:", depth)
            self.emit_node(node.body, depth + 1, bound)
        elif isinstance(node, StatementNode):
            self._emit_statement(node, depth, bound)
        elif isinstance(node, SyncNode):
            self.emit(f"pass  # sync({node.scope})", depth)
        else:
            raise TypeError(f"cannot emit node of type {type(node).__name__}")

    def _emit_statement(self, node: StatementNode, depth: int, bound: Set[str]) -> None:
        statement = node.statement
        if self.check_domains and statement.domain.constraints:
            conditions = []
            for constraint in statement.domain.constraints:
                op = "==" if constraint.is_equality else ">="
                conditions.append(f"({_affine_to_py(constraint.expr)}) {op} 0")
            self.emit(f"if {' and '.join(conditions)}:", depth)
            depth += 1
        lhs = _load_to_py(statement.lhs)
        rhs = _expr_to_py(statement.rhs)
        if statement.reduction in ("+", "*"):
            self.emit(f"{lhs} {statement.reduction}= {rhs}", depth)
        elif statement.reduction in ("min", "max"):
            self.emit(f"{lhs} = {statement.reduction}({lhs}, {rhs})", depth)
        else:
            self.emit(f"{lhs} = {rhs}", depth)


def render_module(
    emitter: "_Emitter",
    program: Program,
    func_name: str,
    prelude: Sequence[str] = (),
) -> str:
    """Drive ``emitter`` over ``program`` into a complete module source.

    Shared by the scalar and the vectorised emitters so the module shape
    (helpers, parameter/array unpacking, symbol scoping) cannot drift apart;
    ``prelude`` prepends extra imports (the vectorised path's numpy).
    """
    for line in prelude:
        emitter.emit(line, 0)
    emitter.emit("from fractions import Fraction", 0)
    emitter.emit("", 0)
    emitter.emit("def _idx(value):", 0)
    emitter.emit("    return int(value)", 0)
    emitter.emit("", 0)
    emitter.emit("def _ceil(value):", 0)
    emitter.emit("    frac = Fraction(value)", 0)
    emitter.emit("    return -((-frac.numerator) // frac.denominator)", 0)
    emitter.emit("", 0)
    emitter.emit("def _floor(value):", 0)
    emitter.emit("    frac = Fraction(value)", 0)
    emitter.emit("    return frac.numerator // frac.denominator", 0)
    emitter.emit("", 0)
    emitter.emit(f"def {func_name}(arrays, params):", 0)
    bound: Set[str] = set()
    for param in program.params:
        emitter.emit(f"{param} = params[{param!r}]", 1)
        bound.add(param)
    for array in program.arrays.values():
        emitter.emit(f"{array.name} = arrays[{array.name!r}]", 1)
    emitter._emit_symbols(bound, 1)
    bound = bound | emitter._emitted_symbols[-1]
    if not program.body.body:
        emitter.emit("pass", 1)
    else:
        emitter.emit_node(program.body, 1, bound)
    return "\n".join(emitter.lines) + "\n"


def emit_python_source(
    program: Program, func_name: str = "kernel", check_domains: bool = True
) -> str:
    """Emit the program as Python source defining ``func_name(arrays, params)``."""
    return render_module(_Emitter(program, check_domains), program, func_name)


def compile_to_python(
    program: Program, check_domains: bool = True
) -> Callable[[Mapping[str, "object"], Mapping[str, int]], None]:
    """Compile the program into an executable Python function.

    The returned callable mutates the provided numpy arrays in place.
    """
    source = emit_python_source(program, "kernel", check_domains)
    namespace: Dict[str, object] = {}
    exec(compile(source, f"<generated:{program.name}>", "exec"), namespace)
    return namespace["kernel"]  # type: ignore[return-value]
