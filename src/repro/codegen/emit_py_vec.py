"""Vectorised (numpy-backed) emission of executable Python.

:func:`repro.codegen.emit_py.emit_python_source` lowers a mapped program to
scalar nested loops — semantically exact, but every innermost iteration pays
Python interpreter dispatch per array access, which dominates the wall time
the ``measure-py:`` backend exists to measure.  This emitter keeps the scalar
structure for the outer nest and rewrites each eligible **innermost** loop as
one numpy expression:

* the iterator becomes ``i = _np.arange(lo, hi + 1, step)``,
* guard/domain constraints that mention the iterator become a boolean mask
  (``i = i[(...) >= 0]``), the rest stay a scalar ``if``,
* an elementwise statement (some lhs index mentions the iterator — affine
  with a nonzero integer coefficient, hence injective) becomes one
  fancy-indexed assignment,
* a reduction whose lhs does *not* mention the iterator becomes
  ``lhs += _np.sum(vectorised rhs)`` (``prod``/``min``/``max`` likewise).

Eligibility is conservative — a loop is vectorised only when the rewrite is
provably equivalent to the sequential loop:

* the loop body (unwrapping blocks and guards, ignoring sync points) is
  exactly one statement, and no derived symbol definition depends on the
  iterator;
* every affine form that mentions the iterator (array indices, constraints,
  affine values) has integer coefficients, so integer numpy arithmetic
  matches the scalar path's exact ``Fraction``-then-truncate semantics;
* the rhs contains no calls, and never reads the lhs array except at the
  lhs's own indices (elementwise case) — anything resembling a loop-carried
  dependence falls back to the scalar loop.

Everything ineligible — and, when numpy is not importable at emit time, the
whole program — falls back to the scalar emitter, so ``measure-py:`` keeps
working on minimal hosts (just slower).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterator, List, Optional, Set, Tuple

from repro.ir.ast import (
    BlockNode,
    GuardNode,
    LoopNode,
    Node,
    StatementNode,
    SyncNode,
)
from repro.ir.expressions import AffineValue, BinOp, Call, Const, Expr, Iter, Load
from repro.ir.program import Program
from repro.polyhedral.affine import AffineExpr
from repro.polyhedral.constraints import Constraint
from repro.polyhedral.parametric import QuasiAffineBound

from repro.codegen.emit_py import (
    _affine_to_py,
    _bound_to_py,
    _Emitter,
    _load_to_py,
    emit_python_source,
    render_module,
)

#: numpy reducers per reduction operator (Case B: scalar lhs)
_REDUCERS = {"+": "sum", "*": "prod", "min": "min", "max": "max"}

#: numpy elementwise combine per min/max reduction (Case A: vector lhs)
_ELEMENTWISE = {"min": "_np.minimum", "max": "_np.maximum"}


def _is_integral(expr: AffineExpr) -> bool:
    """Whether every coefficient and the constant are whole numbers."""
    if Fraction(expr.constant).denominator != 1:
        return False
    return all(
        Fraction(coeff).denominator == 1 for coeff in expr.coefficients.values()
    )


def _subexprs(expr: Expr) -> Iterator[Expr]:
    yield expr
    if isinstance(expr, BinOp):
        yield from _subexprs(expr.lhs)
        yield from _subexprs(expr.rhs)
    elif isinstance(expr, Call):
        for arg in expr.args:
            yield from _subexprs(arg)


def _mentions(expr: Expr, iterator: str) -> bool:
    for item in _subexprs(expr):
        if isinstance(item, Iter) and item.name == iterator:
            return True
        if isinstance(item, AffineValue) and iterator in item.expr.variables:
            return True
        if isinstance(item, Load) and any(
            iterator in index.variables for index in item.indices
        ):
            return True
    return False


def _unwrap_single_statement(
    node: Node,
) -> Optional[Tuple[StatementNode, List[Constraint]]]:
    """The loop body as (one statement, accumulated guards), or ``None``."""
    guards: List[Constraint] = []
    current = node
    while True:
        if isinstance(current, BlockNode):
            real = [c for c in current.body if not isinstance(c, SyncNode)]
            if len(real) != 1:
                return None
            current = real[0]
        elif isinstance(current, GuardNode):
            guards.extend(current.constraints)
            current = current.body
        elif isinstance(current, StatementNode):
            return current, guards
        else:
            return None


class _VectorPlan:
    """One proven-safe innermost-loop rewrite, ready to emit."""

    def __init__(
        self,
        statement_node: StatementNode,
        scalar_constraints: List[Constraint],
        vector_constraints: List[Constraint],
        elementwise: bool,
    ) -> None:
        self.statement_node = statement_node
        self.scalar_constraints = scalar_constraints
        self.vector_constraints = vector_constraints
        self.elementwise = elementwise


class _VecEmitter(_Emitter):
    """The scalar emitter, with eligible innermost loops lowered to numpy."""

    def emit_node(self, node: Node, depth: int, bound: Set[str]) -> None:
        if isinstance(node, LoopNode):
            plan = self._vector_plan(node)
            if plan is not None:
                self._emit_vector_loop(node, plan, depth)
                return
        super().emit_node(node, depth, bound)

    # -- eligibility ---------------------------------------------------------------
    def _vector_plan(self, node: LoopNode) -> Optional[_VectorPlan]:
        iterator = node.iterator
        unwrapped = _unwrap_single_statement(node.body)
        if unwrapped is None:
            return None
        statement_node, guards = unwrapped
        statement = statement_node.statement

        # a derived symbol depending on the iterator would need per-element
        # values — the scalar loop defines it per iteration, so bail
        emitted = set().union(*self._emitted_symbols)
        for name, definition in self.symbol_definitions.items():
            if name in emitted:
                continue
            if isinstance(definition, QuasiAffineBound):
                free = {v for e in definition.exprs for v in e.variables}
            elif isinstance(definition, AffineExpr):
                free = set(definition.variables)
            else:
                return None
            if iterator in free:
                return None

        constraints = list(guards)
        if self.check_domains:
            constraints.extend(statement.domain.constraints)
        scalar_constraints: List[Constraint] = []
        vector_constraints: List[Constraint] = []
        for constraint in constraints:
            if iterator in constraint.expr.variables:
                if not _is_integral(constraint.expr):
                    return None
                vector_constraints.append(constraint)
            else:
                scalar_constraints.append(constraint)

        # every iterator-involving affine must be exact in int arithmetic
        loads = [statement.lhs, *statement.rhs.loads()]
        for load in loads:
            for index in load.indices:
                if iterator in index.variables and not _is_integral(index):
                    return None
        for item in _subexprs(statement.rhs):
            if isinstance(item, Call):
                return None  # min/max/abs on arrays need mapping; stay scalar
            if isinstance(item, AffineValue) and iterator in item.expr.variables:
                if not _is_integral(item.expr):
                    return None

        lhs = statement.lhs
        elementwise = any(iterator in index.variables for index in lhs.indices)
        lhs_rendered = tuple(_affine_to_py(index) for index in lhs.indices)
        if elementwise:
            # injective in the iterator (affine, nonzero integer coefficient),
            # so duplicate-index accumulation loss cannot occur; reading the
            # lhs array is only safe at exactly the written elements
            for load in statement.rhs.loads():
                if load.array.name == lhs.array.name:
                    if tuple(_affine_to_py(i) for i in load.indices) != lhs_rendered:
                        return None
        else:
            if statement.reduction not in _REDUCERS:
                return None  # plain overwrite in a reduced dim: order-dependent
            if not _mentions(statement.rhs, iterator):
                return None  # rhs would collapse to a scalar; keep the loop
            if any(
                load.array.name == lhs.array.name for load in statement.rhs.loads()
            ):
                return None
        return _VectorPlan(statement_node, scalar_constraints, vector_constraints, elementwise)

    # -- emission ------------------------------------------------------------------
    def _vec_load(self, load: Load, iterator: str) -> str:
        parts = []
        for index in load.indices:
            if iterator in index.variables:
                # integral (validated), so no _idx truncation is needed and
                # the expression broadcasts over the iterator array
                parts.append(f"({_affine_to_py(index)})")
            else:
                parts.append(f"_idx({_affine_to_py(index)})")
        return f"{load.array.name}[{', '.join(parts)}]"

    def _vec_expr(self, expr: Expr, iterator: str) -> str:
        if isinstance(expr, Const):
            return repr(float(expr.value))
        if isinstance(expr, Iter):
            return expr.name
        if isinstance(expr, AffineValue):
            return f"({_affine_to_py(expr.expr)})"
        if isinstance(expr, Load):
            return self._vec_load(expr, iterator)
        if isinstance(expr, BinOp):
            lhs = self._vec_expr(expr.lhs, iterator)
            rhs = self._vec_expr(expr.rhs, iterator)
            return f"({lhs} {expr.op} {rhs})"
        raise TypeError(f"cannot vectorise expression of type {type(expr).__name__}")

    def _emit_vector_loop(self, node: LoopNode, plan: _VectorPlan, depth: int) -> None:
        iterator = node.iterator
        low = _bound_to_py(node.lower, is_lower=True)
        high = _bound_to_py(node.upper, is_lower=False)
        self.emit(f"{iterator} = _np.arange({low}, ({high}) + 1, {node.step})", depth)
        if plan.scalar_constraints:
            conditions = [
                f"({_affine_to_py(c.expr)}) {'==' if c.is_equality else '>='} 0"
                for c in plan.scalar_constraints
            ]
            self.emit(f"if {' and '.join(conditions)}:", depth)
            depth += 1
        if plan.vector_constraints:
            mask = " & ".join(
                f"(({_affine_to_py(c.expr)}) {'==' if c.is_equality else '>='} 0)"
                for c in plan.vector_constraints
            )
            self.emit(f"{iterator} = {iterator}[{mask}]", depth)
        self.emit(f"if {iterator}.size:", depth)
        depth += 1

        statement = plan.statement_node.statement
        rhs = self._vec_expr(statement.rhs, iterator)
        if plan.elementwise:
            lhs = self._vec_load(statement.lhs, iterator)
            if statement.reduction in ("+", "*"):
                self.emit(f"{lhs} {statement.reduction}= {rhs}", depth)
            elif statement.reduction in _ELEMENTWISE:
                combine = _ELEMENTWISE[statement.reduction]
                self.emit(f"{lhs} = {combine}({lhs}, {rhs})", depth)
            else:
                self.emit(f"{lhs} = {rhs}", depth)
        else:
            lhs = _load_to_py(statement.lhs)
            reducer = _REDUCERS[statement.reduction]
            reduced = f"float(_np.{reducer}({rhs}))"
            if statement.reduction in ("+", "*"):
                operator = "+" if statement.reduction == "+" else "*"
                self.emit(f"{lhs} {operator}= {reduced}", depth)
            else:
                self.emit(f"{lhs} = {statement.reduction}({lhs}, {reduced})", depth)


def emit_python_source_vectorized(
    program: Program, func_name: str = "kernel", check_domains: bool = True
) -> str:
    """Emit ``program`` with eligible innermost loops lowered to numpy.

    Behaviourally identical to :func:`~repro.codegen.emit_py.
    emit_python_source` (same ``func_name(arrays, params)`` contract, same
    in-place mutation) — only faster where vectorisation proved safe.  When
    numpy is not importable at emit time the scalar source is returned
    verbatim, so the artifact always runs.
    """
    try:
        import numpy  # noqa: F401 — presence probe only
    except ImportError:
        return emit_python_source(program, func_name, check_domains)
    emitter = _VecEmitter(program, check_domains)
    return render_module(
        emitter, program, func_name, prelude=("import numpy as _np",)
    )
