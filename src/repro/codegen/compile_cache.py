"""An on-disk, LRU-bounded cache of compiled measurement binaries.

The ``measure-c:`` backend used to compile every candidate's harness into a
throwaway tempdir — one full ``cc`` invocation per candidate, per request,
per process, even when the emitted source was byte-identical.  Since the
harness reads every timing knob (warmup/repeat/seed) from ``argv`` (see
:func:`repro.codegen.emit_c_exec.emit_c_harness`), the compiled binary is a
pure function of ``(source text, compiler, cflags)`` — exactly the cache key
here.

Layout mirrors the sharded tuning store: ``root/<key[:2]>/<key>`` holds the
executable, with a ``.lock`` sidecar per entry (the ``_locked``/atomic
``os.replace`` idiom from :mod:`repro.autotune.store`), so

* a warm hit is one ``os.stat`` plus an ``os.utime`` touch (the LRU clock),
* concurrent *processes* racing on a cold key serialize on the sidecar and
  the loser finds the winner's binary installed (exactly one ``cc`` run
  fleet-wide per key),
* eviction beyond ``capacity`` drops the least-recently-used binaries.

Reuse is observable: ``repro_compile_cache_total{outcome=hit|miss|evict}``
counts every path through :meth:`CompileCache.get_or_compile`.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
from pathlib import Path
from typing import Callable, List, Optional, Union

from repro.telemetry.metrics import METRICS

from repro.autotune.store import _locked

COMPILE_CACHE_TOTAL = METRICS.counter(
    "repro_compile_cache_total",
    "measure-c binary compile-cache lookups by outcome",
    labels=("outcome",),
)

#: environment override for the default cache root
COMPILE_CACHE_ENV = "REPRO_COMPILE_CACHE"

#: default ceiling on cached binaries before LRU eviction kicks in
DEFAULT_CAPACITY = 256


def default_cache_root() -> Path:
    """``$REPRO_COMPILE_CACHE`` or ``~/.cache/repro/measure-c``."""
    override = os.environ.get(COMPILE_CACHE_ENV)
    if override:
        return Path(override).expanduser()
    return Path.home() / ".cache" / "repro" / "measure-c"


def binary_key(source: str, compiler: str, cflags: str) -> str:
    """Cache key of one compiled harness: source text + toolchain identity."""
    digest = hashlib.sha256()
    for part in (compiler, cflags, source):
        digest.update(part.encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


class CompileCache:
    """Content-addressed store of compiled binaries with LRU eviction."""

    def __init__(
        self,
        root: Union[str, os.PathLike, None] = None,
        capacity: int = DEFAULT_CAPACITY,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"compile-cache capacity must be positive, got {capacity}")
        self.root = Path(root) if root is not None else default_cache_root()
        self.capacity = capacity

    def _paths(self, key: str) -> tuple:
        shard = self.root / key[:2]
        return shard / key, shard / f"{key}.lock"

    def get_or_compile(
        self, key: str, compile_fn: Callable[[Path], None]
    ) -> tuple:
        """The cached binary for ``key``, compiling it on first use.

        ``compile_fn(path)`` must produce an executable at ``path`` (it runs
        under the entry's sidecar lock, so at most one process compiles a
        given key at a time — racing losers find the winner's binary).
        Returns ``(path, outcome)`` with ``outcome`` ``"hit"`` or ``"miss"``.
        """
        binary, lock = self._paths(key)
        if binary.exists():
            self._touch(binary)
            COMPILE_CACHE_TOTAL.inc(outcome="hit")
            return binary, "hit"
        with _locked(lock):
            # double-check: another process may have installed it while we
            # waited on the sidecar
            if binary.exists():
                self._touch(binary)
                COMPILE_CACHE_TOTAL.inc(outcome="hit")
                return binary, "hit"
            binary.parent.mkdir(parents=True, exist_ok=True)
            descriptor, temp_name = tempfile.mkstemp(
                dir=str(binary.parent), prefix=binary.name, suffix=".tmp"
            )
            os.close(descriptor)
            try:
                compile_fn(Path(temp_name))
                os.replace(temp_name, binary)
            except BaseException:
                try:
                    os.unlink(temp_name)
                except OSError:
                    pass
                raise
        COMPILE_CACHE_TOTAL.inc(outcome="miss")
        self._evict()
        return binary, "miss"

    @staticmethod
    def _touch(binary: Path) -> None:
        """Bump the entry's mtime — the LRU recency clock."""
        try:
            os.utime(binary)
        except OSError:
            pass  # read-only mount: reuse still works, recency goes stale

    def entries(self) -> List[Path]:
        """Every cached binary, oldest (least recently used) first."""
        found: List[Path] = []
        if not self.root.exists():
            return found
        for shard in self.root.iterdir():
            if not shard.is_dir():
                continue
            for item in shard.iterdir():
                if item.suffix in (".lock", ".tmp") or not item.is_file():
                    continue
                found.append(item)
        return sorted(found, key=lambda p: (p.stat().st_mtime, p.name))

    def _evict(self) -> int:
        """Drop least-recently-used binaries beyond ``capacity``."""
        entries = self.entries()
        evicted = 0
        for stale in entries[: max(0, len(entries) - self.capacity)]:
            try:
                stale.unlink()
                evicted += 1
                COMPILE_CACHE_TOTAL.inc(outcome="evict")
            except OSError:
                continue  # concurrently evicted or in use elsewhere
            lock = stale.with_name(f"{stale.name}.lock")
            try:
                lock.unlink()
            except OSError:
                pass
        return evicted


def open_compile_cache(
    spec: Optional[str], capacity: int = DEFAULT_CAPACITY
) -> Optional[CompileCache]:
    """Resolve a ``cache=`` URI option: ``off`` disables, a path relocates.

    ``None``/empty selects the default root (:func:`default_cache_root`).
    """
    if spec is not None and spec.strip().lower() == "off":
        return None
    root = spec.strip() if spec and spec.strip() else None
    return CompileCache(root, capacity=capacity)
