"""Scanning unions of polyhedra so that every point is visited exactly once.

The paper relies on CLooG to generate copy loops that "lead to single
load/store of each data element that is read/written even if the accessed
data spaces of references are overlapping" (Section 3.1.3).  We obtain the
same guarantee by decomposing the union into pairwise-disjoint convex pieces
(subtracting earlier members constraint-by-constraint) and scanning each
piece with the single-polyhedron scanner.  The worked example of Fig. 1 —
where the move-in code for array ``A`` consists of two disjoint loop nests —
falls out of this decomposition directly.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.codegen.scan import scan_polyhedron
from repro.ir.ast import BlockNode, Node
from repro.polyhedral.polyhedron import Polyhedron


def subtract(minuend: Polyhedron, subtrahend: Polyhedron) -> List[Polyhedron]:
    """Disjoint convex pieces covering ``minuend \\ subtrahend`` (integer points).

    Classic polyhedral difference: for the subtrahend's inequalities
    ``c_1, ..., c_m``, the pieces are ``minuend ∩ ¬c_1``,
    ``minuend ∩ c_1 ∩ ¬c_2``, ..., where ``¬c`` is the integer negation
    ``-c - 1 >= 0``.  Empty pieces are dropped.
    """
    if minuend.dims != subtrahend.dims:
        raise ValueError("polyhedra must share dimensions for subtraction")
    pieces: List[Polyhedron] = []
    accumulated = []
    inequalities = []
    for constraint in subtrahend.constraints:
        inequalities.extend(constraint.as_pair_of_inequalities())
    for constraint in inequalities:
        piece = minuend.add_constraints(accumulated + [constraint.negate()])
        if not piece.is_empty():
            pieces.append(piece)
        accumulated.append(constraint)
    return pieces


def make_disjoint(polyhedra: Sequence[Polyhedron]) -> List[Polyhedron]:
    """Pairwise-disjoint convex pieces whose union equals the input union.

    The first member is kept whole; every later member contributes only the
    part not already covered by earlier members.
    """
    pieces: List[Polyhedron] = []
    for poly in polyhedra:
        if poly.is_empty():
            continue
        remaining = [poly]
        for earlier in pieces:
            next_remaining: List[Polyhedron] = []
            for part in remaining:
                next_remaining.extend(subtract(part, earlier))
            remaining = next_remaining
            if not remaining:
                break
        pieces.extend(remaining)
    return pieces


def scan_union(
    polyhedra: Sequence[Polyhedron],
    body_factory: Callable[[Polyhedron], Node],
    dim_order: Optional[Sequence[str]] = None,
) -> BlockNode:
    """Loop nests visiting every point of the union exactly once.

    ``body_factory(piece)`` is called for each disjoint piece and its result
    becomes the body of that piece's loop nest; the per-piece polyhedron lets
    the caller attach precise statement domains (used by the interpreter's
    domain checking).
    """
    block = BlockNode()
    for piece in make_disjoint(list(polyhedra)):
        nest = scan_polyhedron(piece, lambda piece=piece: body_factory(piece), dim_order)
        block.append(nest)
    return block
