"""C-like code emission for inspection of transformed programs.

The original system emitted CUDA C compiled by nvcc.  Without GPU hardware in
the loop we keep the emission textual: the rendering shows the multi-level
tiled loop structure, the ``__shared__`` buffer declarations, the copy-in /
copy-out nests and the synchronisation points, which is what the paper's
figures (Fig. 1, Fig. 3) display.

:func:`emit_c` is also registered with the staged compiler as the optional
``emit`` terminal pass (:class:`repro.compiler.EmitCPass`): append ``"emit"``
to a session's pass list — or call
:meth:`repro.compiler.CompilationSession.render_c` — to obtain the mapped
kernel's rendering as a fingerprinted stage artifact, headed by the kernel
name and launch geometry.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.ir.ast import Node
from repro.ir.printer import ast_to_c, program_to_c
from repro.ir.program import Program


def emit_c(target: Union[Program, Node], header: Optional[str] = None) -> str:
    """Render a program or AST fragment as C-like text.

    ``header`` (e.g. the kernel name and launch geometry) is prepended as a
    comment block when provided.
    """
    if isinstance(target, Program):
        body = program_to_c(target)
    elif isinstance(target, Node):
        body = ast_to_c(target)
    else:
        raise TypeError(
            f"emit_c expects a Program or an AST node, got {type(target).__name__}"
        )
    if header:
        comment = "\n".join(f"/* {line} */" for line in header.splitlines())
        return f"{comment}\n{body}"
    return body
