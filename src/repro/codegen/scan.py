"""Scanning a single polyhedron into a loop nest.

``scan_polyhedron(P, order)`` produces nested :class:`~repro.ir.ast.LoopNode`
objects whose bounds are the parametric projections of ``P`` onto successive
prefixes of *order*: the loop for dimension ``d_k`` has bounds that may depend
on parameters and on the outer dimensions ``d_1 .. d_{k-1}`` — precisely the
loop nests CLooG generates for a single domain.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.ir.ast import BlockNode, LoopNode, Node
from repro.polyhedral import fourier_motzkin as fm
from repro.polyhedral.parametric import QuasiAffineBound
from repro.polyhedral.polyhedron import Polyhedron


def loop_bounds_for(
    polyhedron: Polyhedron, dim: str, outer: Sequence[str]
) -> tuple:
    """Bounds of *dim* as quasi-affine expressions of params and *outer* dims."""
    keep = list(polyhedron.params) + [d for d in outer if d != dim]
    lowers, uppers = fm.bounds_for_variable(polyhedron.constraints, dim, keep)
    if not lowers or not uppers:
        raise ValueError(
            f"dimension {dim!r} of {polyhedron!r} is unbounded; cannot generate a loop"
        )
    lower = QuasiAffineBound("max", tuple(expr / coeff for expr, coeff in lowers))
    upper = QuasiAffineBound("min", tuple(expr / coeff for expr, coeff in uppers))
    return _simplify(lower), _simplify(upper)


def _simplify(bound: QuasiAffineBound):
    """Collapse single-candidate bounds to a plain affine expression."""
    if bound.is_single:
        return bound.as_single_expr()
    # When all candidates differ by constants the min/max is decidable
    # statically; pick the right representative.
    exprs = list(bound.exprs)
    reference = exprs[0]
    best = reference
    for expr in exprs[1:]:
        difference = expr - best
        if not difference.is_constant():
            return bound
        if bound.kind == "min" and difference.constant < 0:
            best = expr
        elif bound.kind == "max" and difference.constant > 0:
            best = expr
    return best


def scan_polyhedron(
    polyhedron: Polyhedron,
    body_factory: Callable[[], Node],
    dim_order: Optional[Sequence[str]] = None,
) -> Node:
    """Generate a loop nest scanning *polyhedron*, with *body_factory()* inside.

    ``body_factory`` is called once and its result placed in the innermost
    loop body.  Zero-dimensional polyhedra return the body directly.
    """
    order = list(dim_order) if dim_order is not None else list(polyhedron.dims)
    if set(order) != set(polyhedron.dims):
        raise ValueError(
            f"dim_order {order} must be a permutation of the polyhedron dims "
            f"{polyhedron.dims}"
        )
    body: Node = body_factory()
    # Build loops inside-out.
    for depth in range(len(order) - 1, -1, -1):
        dim = order[depth]
        outer = order[:depth]
        lower, upper = loop_bounds_for(polyhedron, dim, outer)
        inner = body if isinstance(body, BlockNode) else BlockNode([body])
        body = LoopNode(iterator=dim, lower=lower, upper=upper, body=inner)
    return body


def loop_nest_for(
    polyhedron: Polyhedron, dim_order: Optional[Sequence[str]] = None
) -> tuple:
    """Like :func:`scan_polyhedron` but returns ``(outermost, innermost_block)``.

    Useful when the caller wants to fill the innermost body after building the
    nest.
    """
    innermost = BlockNode()
    nest = scan_polyhedron(polyhedron, lambda: innermost, dim_order)
    return nest, innermost
