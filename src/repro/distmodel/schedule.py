"""Overlap-aware phase schedules for distributed mappings.

A distributed execution is priced as an ordered sequence of
:class:`Phase` objects, each carrying its compute cycles, its total
communication cycles, and — the part a naive sum gets wrong — the
*exposed* communication cycles: the portion of communication the schedule
could not hide under compute.  A phase's elapsed time is
``compute + exposed_comm``; for a serial (blocking) phase the exposed
communication is all of it, while a pipelined phase exposes only the fill
of the first panel plus whatever the steady state leaves uncovered
(``max(0, comm_step − compute_step)`` per step).

:class:`PhaseSchedule` aggregates phases into totals, reports the fraction
of *overlappable* communication the schedule actually hid (the quantity
the bench acceptance gates on), and publishes per-phase wall times into
the ``repro_dist_phase_seconds{phase}`` histogram.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Tuple

from repro.machine.spec import GridSpec
from repro.telemetry import METRICS, trace

DIST_PHASE_SECONDS = METRICS.histogram(
    "repro_dist_phase_seconds",
    "modelled wall time of each distributed-schedule phase",
    labels=("phase",),
)


@dataclass(frozen=True)
class Phase:
    """One phase of a distributed schedule, in fabric cycles."""

    name: str
    compute_cycles: float = 0.0
    comm_cycles: float = 0.0
    #: communication cycles not hidden under this phase's compute
    exposed_comm_cycles: float = 0.0
    #: whether this phase's schedule was allowed to overlap comm and compute
    overlapped: bool = False
    #: number of identical pipeline steps folded into this phase
    steps: int = 1
    meta: Mapping[str, Any] = field(default_factory=dict)

    @classmethod
    def serial(
        cls,
        name: str,
        compute_cycles: float = 0.0,
        comm_cycles: float = 0.0,
        **meta: Any,
    ) -> "Phase":
        """A blocking phase: every communication cycle is exposed."""
        return cls(
            name=name,
            compute_cycles=compute_cycles,
            comm_cycles=comm_cycles,
            exposed_comm_cycles=comm_cycles,
            overlapped=False,
            meta=meta,
        )

    @property
    def elapsed_cycles(self) -> float:
        return self.compute_cycles + self.exposed_comm_cycles

    @property
    def hidden_comm_cycles(self) -> float:
        return max(0.0, self.comm_cycles - self.exposed_comm_cycles)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "compute_cycles": self.compute_cycles,
            "comm_cycles": self.comm_cycles,
            "exposed_comm_cycles": self.exposed_comm_cycles,
            "hidden_comm_cycles": self.hidden_comm_cycles,
            "elapsed_cycles": self.elapsed_cycles,
            "overlapped": self.overlapped,
            "steps": self.steps,
            "meta": dict(self.meta),
        }


@dataclass(frozen=True)
class PhaseSchedule:
    """An ordered sequence of phases priced as one distributed execution."""

    phases: Tuple[Phase, ...]

    @property
    def total_cycles(self) -> float:
        return sum(p.elapsed_cycles for p in self.phases)

    @property
    def compute_cycles(self) -> float:
        return sum(p.compute_cycles for p in self.phases)

    @property
    def comm_cycles(self) -> float:
        return sum(p.comm_cycles for p in self.phases)

    @property
    def exposed_comm_cycles(self) -> float:
        return sum(p.exposed_comm_cycles for p in self.phases)

    @property
    def hidden_comm_cycles(self) -> float:
        return sum(p.hidden_comm_cycles for p in self.phases)

    @property
    def overlappable_comm_cycles(self) -> float:
        """Communication in phases whose schedule permits overlap."""
        return sum(p.comm_cycles for p in self.phases if p.overlapped)

    @property
    def hidden_fraction(self) -> float:
        """Fraction of *overlappable* communication hidden under compute.

        This is the acceptance quantity: a pipelined compute phase that
        hides its panel broadcasts scores close to 1.0, a blocking schedule
        (no overlapped phases) scores 0.0.
        """
        overlappable = self.overlappable_comm_cycles
        if overlappable <= 0.0:
            return 0.0
        return self.hidden_comm_cycles / overlappable

    def time_ms(self, grid: GridSpec) -> float:
        return self.total_cycles / grid.cycles_per_us / 1000.0

    def phase_seconds(self, grid: GridSpec) -> Dict[str, float]:
        return {
            p.name: p.elapsed_cycles / grid.cycles_per_us / 1e6 for p in self.phases
        }

    def record(self, grid: GridSpec) -> None:
        """Publish each phase's modelled wall time and annotate the span."""
        seconds = self.phase_seconds(grid)
        for name, value in seconds.items():
            DIST_PHASE_SECONDS.observe(value, phase=name)
        trace.annotate(dist_phases=seconds)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "phases": [p.to_dict() for p in self.phases],
            "total_cycles": self.total_cycles,
            "compute_cycles": self.compute_cycles,
            "comm_cycles": self.comm_cycles,
            "exposed_comm_cycles": self.exposed_comm_cycles,
            "hidden_comm_cycles": self.hidden_comm_cycles,
            "hidden_fraction": self.hidden_fraction,
        }
