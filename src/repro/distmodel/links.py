"""Link-level communication costs for a P×P PE grid behind one host port.

The model prices the three collective shapes the distributed-GEMM schedules
use, with the calibration target being the measured bandwidths of the
pipelined SUMMA experiments (SNIPPETS.md Snippet 3):

* **broadcast** (host → device): the host injects the payload once through
  the host link and the fabric fans it out; cost is the injection time plus
  one hop of latency per fabric row/column crossed.  At the Snippet 3
  configuration (6,272 words onto a 4×4 grid) this lands on ~7,225 cycles,
  i.e. 0.868 words/cycle.
* **gather** (device → host): every PE of the sub-grid drains its result
  through the *same* host port, which serialises the collection; each extra
  concurrent sender adds :attr:`LinkModel.host_contention_penalty` to the
  per-word cost.  At the Snippet 3 configuration (3,136 words from 16 PEs)
  this lands on ~10,535 cycles, i.e. 0.298 words/cycle — the measured
  ~2.9× per-byte asymmetry against the broadcast direction.
* **shift** (PE → neighbouring PE on the fabric): plain bandwidth-plus-
  latency over nearest-neighbour links, used for the per-step panel
  broadcasts inside the compute phase.

All costs are in fabric cycles; :class:`repro.machine.GridSpec` carries the
clock that converts them to wall time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.spec import GridSpec


@dataclass(frozen=True)
class LinkModel:
    """Per-direction link bandwidths and latencies of one grid fabric."""

    #: raw host→device injection bandwidth, words per cycle
    h2d_words_per_cycle: float = 0.9
    #: raw device→host drain bandwidth, words per cycle (before contention)
    d2h_words_per_cycle: float = 0.9
    #: nearest-neighbour fabric link bandwidth, words per cycle
    fabric_words_per_cycle: float = 1.0
    #: latency of one fabric hop, in cycles
    hop_latency_cycles: float = 64.0
    #: fractional per-word slowdown per *extra* concurrent sender on the
    #: device→host path (the host port serialises the collection)
    host_contention_penalty: float = 0.13

    @classmethod
    def from_grid(cls, grid: GridSpec) -> "LinkModel":
        """Build the link model from the calibrated fields of a grid spec."""
        return cls(
            h2d_words_per_cycle=grid.h2d_words_per_cycle,
            d2h_words_per_cycle=grid.d2h_words_per_cycle,
            fabric_words_per_cycle=grid.fabric_words_per_cycle,
            hop_latency_cycles=grid.hop_latency_cycles,
            host_contention_penalty=grid.host_contention_penalty,
        )


def broadcast_cost(link: LinkModel, words: int, grid_p: int) -> float:
    """Cycles to broadcast ``words`` from the host onto a ``grid_p²`` sub-grid.

    The host injects the payload once; the fabric replicates it, so the
    payload crosses the host link exactly once and pays ``grid_p`` hops of
    latency to reach the far edge of the sub-grid.
    """
    if words <= 0:
        return 0.0
    return words / link.h2d_words_per_cycle + link.hop_latency_cycles * grid_p


def gather_cost(link: LinkModel, words: int, grid_p: int) -> float:
    """Cycles to gather ``words`` from every PE of a ``grid_p²`` sub-grid.

    All ``grid_p²`` PEs contend for the single host port; the per-word cost
    scales with the number of *extra* senders, which is what makes the
    device→host direction ~2.9× more expensive per byte than broadcast at
    the Snippet 3 operating point.
    """
    if words <= 0:
        return 0.0
    senders = grid_p * grid_p
    per_word = (1.0 / link.d2h_words_per_cycle) * (
        1.0 + link.host_contention_penalty * (senders - 1)
    )
    return words * per_word + link.hop_latency_cycles * grid_p


def shift_cost(link: LinkModel, words: int, hops: int = 1) -> float:
    """Cycles to move ``words`` across ``hops`` nearest-neighbour links."""
    if words <= 0:
        return 0.0
    return words / link.fabric_words_per_cycle + link.hop_latency_cycles * hops
