"""SUMMA distributed-GEMM mappings priced as phase schedules.

A :class:`SummaMapping` places ``C(m×n) = A(m×k) · B(k×n)`` on a ``p×p``
sub-grid: each PE owns an ``(m/p)×(k/p)`` block of A, a ``(k/p)×(n/p)``
block of B and the ``(m/p)×(n/p)`` block of C it produces.  Execution is
three phases, matching the measured SUMMA runs of SNIPPETS.md Snippet 3:

1. ``distribute`` — host broadcasts A and B onto the grid (H2D);
2. ``compute`` — ``k/Kt`` steps, each step row-broadcasting an
   ``(m/p)×Kt`` panel of A and column-broadcasting a ``Kt×(n/p)`` panel of
   B on the fabric, then running the local rank-Kt update.  Under the
   ``blocking`` schedule every step is panel-then-compute; under
   ``pipelined`` the next step's panels stream in behind the current
   compute (the T22-under-T11 overlap of Snippet 3), so after the first
   panel's fill a step costs ``max(compute, comm)`` and the pipeline depth
   amortises the per-hop latency;
3. ``gather`` — host collects C from all ``p²`` PEs (D2H, contended).

The per-PE footprint prices the pipeline's cost in *memory*: a pipelined
mapping holds ``depth + 1`` panel-buffer sets against blocking's one, which
is what pushes tight, gather-bound mappings (small ``p``, large C tiles)
back to the blocking schedule.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.distmodel.links import LinkModel, broadcast_cost, gather_cost, shift_cost
from repro.distmodel.schedule import Phase, PhaseSchedule
from repro.machine.spec import GridSpec

#: the two broadcast schedules a mapping can choose between
SCHEDULES = ("blocking", "pipelined")


@dataclass(frozen=True)
class SummaMapping:
    """One point of the distributed-GEMM tuning space."""

    #: sub-grid dimension: the mapping uses ``grid_p × grid_p`` PEs
    grid_p: int
    #: C-tile (local register/loop blocking) sizes within a PE's C block
    mt: int
    nt: int
    #: panel width of one SUMMA step (the k-dimension tile)
    kt: int
    #: ``blocking`` or ``pipelined`` panel broadcasts
    schedule: str = "pipelined"
    #: panels in flight under the pipelined schedule (ignored by blocking)
    depth: int = 1

    @property
    def panel_buffers(self) -> int:
        """Panel-buffer sets a PE must hold (A-panel + B-panel per set)."""
        return self.depth + 1 if self.schedule == "pipelined" else 1


def pe_footprint_bytes(m: int, n: int, k: int, mapping: SummaMapping, grid: GridSpec) -> int:
    """Bytes of private memory one PE needs under ``mapping``."""
    p = mapping.grid_p
    a_block = (m // p) * (k // p)
    b_block = (k // p) * (n // p)
    c_block = (m // p) * (n // p)
    buffers = mapping.panel_buffers * mapping.kt * ((m // p) + (n // p))
    return (a_block + b_block + c_block + buffers) * grid.word_bytes


def mapping_infeasible_reason(
    m: int, n: int, k: int, mapping: SummaMapping, grid: GridSpec
) -> Optional[str]:
    """Why ``mapping`` cannot run, or ``None`` when it can.

    Pruning rules: the sub-grid must fit the fabric and divide every
    problem dimension, tiles must divide the per-PE block they tile, the
    pipeline depth must not exceed the step count, and the footprint must
    fit the PE memory.
    """
    p = mapping.grid_p
    if p < 1 or p > grid.grid_p:
        return f"grid {p}x{p} exceeds fabric {grid.grid_p}x{grid.grid_p}"
    if m % p or n % p or k % p:
        return f"grid {p}x{p} does not divide problem {m}x{n}x{k}"
    if mapping.schedule not in SCHEDULES:
        return f"unknown schedule {mapping.schedule!r}"
    if mapping.mt < 1 or (m // p) % mapping.mt:
        return f"Mt={mapping.mt} does not tile the {m // p}-row C block"
    if mapping.nt < 1 or (n // p) % mapping.nt:
        return f"Nt={mapping.nt} does not tile the {n // p}-column C block"
    if mapping.kt < 1 or (k // p) % mapping.kt:
        return f"Kt={mapping.kt} does not tile the {k // p}-deep local panel"
    if mapping.depth < 1:
        return f"pipeline depth {mapping.depth} < 1"
    steps = k // mapping.kt
    if mapping.schedule == "pipelined" and mapping.depth > steps:
        return f"pipeline depth {mapping.depth} exceeds {steps} steps"
    footprint = pe_footprint_bytes(m, n, k, mapping, grid)
    if footprint > grid.pe_memory_bytes:
        return (
            f"per-PE footprint {footprint} B exceeds "
            f"{grid.pe_memory_bytes} B ({mapping.panel_buffers} panel-buffer sets)"
        )
    return None


def gemm_schedule(
    m: int, n: int, k: int, mapping: SummaMapping, grid: GridSpec
) -> PhaseSchedule:
    """Price one SUMMA mapping as a three-phase schedule (cycles).

    Raises :class:`ValueError` for infeasible mappings, carrying the
    pruning reason.
    """
    reason = mapping_infeasible_reason(m, n, k, mapping, grid)
    if reason is not None:
        raise ValueError(f"infeasible distributed mapping: {reason}")
    link = LinkModel.from_grid(grid)
    p = mapping.grid_p
    steps = k // mapping.kt

    distribute = Phase.serial(
        "distribute",
        comm_cycles=broadcast_cost(link, m * k + k * n, p),
        words=m * k + k * n,
    )

    # One compute step: rank-Kt update of the local C block, tiled Mt×Nt.
    macs_per_step = (m // p) * (n // p) * mapping.kt
    subtiles = math.ceil((m // p) / mapping.mt) * math.ceil((n // p) / mapping.nt)
    step_compute = (
        macs_per_step * grid.compute_cycles_per_mac
        + subtiles * grid.loop_overhead_cycles
    )
    # One step's fabric traffic: the A panel crosses the PE row, the B panel
    # the PE column — each travelling up to p hops.
    panel_words = (m // p) * mapping.kt + mapping.kt * (n // p)
    step_comm_blocking = shift_cost(link, panel_words, hops=p)
    total_compute = steps * step_compute

    if mapping.schedule == "pipelined":
        # Depth amortises the hop latency across the panels in flight; the
        # first panel still pays it in full (the fill), and the last step
        # computes with nothing left to prefetch.  This keeps pipelined
        # ≤ blocking at equal parameters for every shape.
        step_comm_pipelined = shift_cost(link, panel_words, hops=p) - (
            link.hop_latency_cycles * p * (1.0 - 1.0 / mapping.depth)
        )
        fill = step_comm_blocking
        exposed = fill + (steps - 1) * max(0.0, step_comm_pipelined - step_compute)
        comm = fill + (steps - 1) * step_comm_pipelined
        compute_phase = Phase(
            name="compute",
            compute_cycles=total_compute,
            comm_cycles=comm,
            exposed_comm_cycles=exposed,
            overlapped=True,
            steps=steps,
            meta={
                "schedule": "pipelined",
                "depth": mapping.depth,
                "fill_cycles": fill,
                "step_compute_cycles": step_compute,
                "step_comm_cycles": step_comm_pipelined,
            },
        )
    else:
        compute_phase = Phase(
            name="compute",
            compute_cycles=total_compute,
            comm_cycles=steps * step_comm_blocking,
            exposed_comm_cycles=steps * step_comm_blocking,
            overlapped=False,
            steps=steps,
            meta={
                "schedule": "blocking",
                "step_compute_cycles": step_compute,
                "step_comm_cycles": step_comm_blocking,
            },
        )

    gather = Phase.serial(
        "gather",
        comm_cycles=gather_cost(link, m * n, p),
        words=m * n,
        senders=p * p,
    )
    return PhaseSchedule(phases=(distribute, compute_phase, gather))
