"""Communication-aware cost model for distributed (multi-PE) mappings.

The single-device cost models in :mod:`repro.machine` price one kernel on
one GPU; this package prices *mappings onto a P×P grid of PEs* in the
style of the pipelined SUMMA GEMM experiments (SNIPPETS.md Snippet 3):

* :mod:`repro.distmodel.links` — :class:`LinkModel` and the collective
  primitives (:func:`broadcast_cost`, :func:`gather_cost`,
  :func:`shift_cost`), calibrated to the measured H2D/D2H asymmetry
  (broadcast ≈ 0.868 words/cycle vs gather ≈ 0.298);
* :mod:`repro.distmodel.schedule` — overlap-aware :class:`Phase` /
  :class:`PhaseSchedule` accounting (elapsed = compute + *exposed* comm),
  publishing ``repro_dist_phase_seconds{phase}``;
* :mod:`repro.distmodel.gemm` — :class:`SummaMapping` (grid size, Mt/Nt/Kt
  tiles, blocking vs pipelined broadcasts, pipeline depth), per-PE
  footprint pruning, and :func:`gemm_schedule`, the pricing function the
  ``model:`` backend uses for the ``distributed-gemm`` kernel family.

The machine side lives in :class:`repro.machine.GridSpec` so grid targets
fingerprint into cache keys exactly like :class:`repro.machine.GPUSpec`.
"""

from repro.distmodel.links import LinkModel, broadcast_cost, gather_cost, shift_cost
from repro.distmodel.schedule import DIST_PHASE_SECONDS, Phase, PhaseSchedule
from repro.distmodel.gemm import (
    SCHEDULES,
    SummaMapping,
    gemm_schedule,
    mapping_infeasible_reason,
    pe_footprint_bytes,
)

__all__ = [
    "LinkModel",
    "broadcast_cost",
    "gather_cost",
    "shift_cost",
    "DIST_PHASE_SECONDS",
    "Phase",
    "PhaseSchedule",
    "SCHEDULES",
    "SummaMapping",
    "gemm_schedule",
    "mapping_infeasible_reason",
    "pe_footprint_bytes",
]
