"""Consistent hashing of tuning fingerprints onto a server fleet.

The ring places ``replicas`` virtual points per node on a 64-bit circle
(SHA-256 of ``"{node}#{i}"``); a fingerprint's *home* is the first virtual
point at or clockwise-after the fingerprint's own hash.  Two properties the
fleet depends on:

* **determinism** — every server derives the same ring from the same member
  list, with no coordination protocol: the home of a fingerprint is a pure
  function of (members, fingerprint), so the home server's in-flight dedup
  map is authoritative fleet-wide.
* **minimal disruption** — removing a node re-homes only the keys it owned;
  the rest of the keyspace keeps its assignment, so warm caches stay warm
  through membership changes.

Fingerprints are already SHA-256 hex strings, but the ring re-hashes them:
ring position must not correlate with whatever structure the fingerprint
scheme has.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Sequence, Tuple

__all__ = ["HashRing"]


def _point(token: str) -> int:
    """A stable 64-bit ring position for a token."""
    return int.from_bytes(
        hashlib.sha256(token.encode("utf-8")).digest()[:8], "big"
    )


class HashRing:
    """A consistent-hash ring over named nodes.

    ``nodes`` is any iterable of node ids (order-insensitive — the ring is a
    pure function of the *set*).  ``replicas`` virtual points per node trade
    ring size for balance; 128 keeps the max/mean node share within ~25% for
    small fleets.
    """

    def __init__(self, nodes: Iterable[str], replicas: int = 128) -> None:
        if replicas < 1:
            raise ValueError(f"replicas must be positive, got {replicas!r}")
        self.replicas = replicas
        self._nodes: List[str] = []
        self._points: List[Tuple[int, str]] = []
        self._positions: List[int] = []
        for node in nodes:
            self.add(node)
        if not self._nodes:
            raise ValueError("a HashRing needs at least one node")

    @property
    def nodes(self) -> List[str]:
        """The member node ids, sorted."""
        return list(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def add(self, node: str) -> None:
        if not isinstance(node, str) or not node:
            raise ValueError(f"node id must be a non-empty string, got {node!r}")
        if node in self._nodes:
            return
        bisect.insort(self._nodes, node)
        for i in range(self.replicas):
            point = (_point(f"{node}#{i}"), node)
            index = bisect.bisect(self._points, point)
            self._points.insert(index, point)
        self._positions = [position for position, _node in self._points]

    def remove(self, node: str) -> None:
        if node not in self._nodes:
            raise KeyError(node)
        if len(self._nodes) == 1:
            raise ValueError("cannot remove the last node of a ring")
        self._nodes.remove(node)
        self._points = [(p, n) for p, n in self._points if n != node]
        self._positions = [position for position, _node in self._points]

    def home(self, key: str) -> str:
        """The node owning ``key`` — first virtual point clockwise of its hash."""
        index = bisect.bisect(self._positions, _point(key)) % len(self._points)
        return self._points[index][1]

    def preference(self, key: str, count: int = 2) -> List[str]:
        """The first ``count`` *distinct* nodes clockwise of ``key``.

        Entry 0 is the home; the rest are the natural replica targets for
        shipping sealed store segments.
        """
        start = bisect.bisect(self._positions, _point(key))
        chosen: List[str] = []
        for offset in range(len(self._points)):
            node = self._points[(start + offset) % len(self._points)][1]
            if node not in chosen:
                chosen.append(node)
                if len(chosen) >= min(count, len(self._nodes)):
                    break
        return chosen

    def shares(self, sample: Sequence[str]) -> Dict[str, float]:
        """Fraction of ``sample`` keys homed on each node (balance probe)."""
        counts: Dict[str, int] = {node: 0 for node in self._nodes}
        for key in sample:
            counts[self.home(key)] += 1
        total = max(1, len(sample))
        return {node: count / total for node, count in counts.items()}
