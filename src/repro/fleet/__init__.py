"""Horizontal scale-out of the tuning service: the *fleet* layer.

One :class:`~repro.service.server.TuningService` process holds exactly-once
tuning only inside its own in-flight dedup map; several servers sharing a
store degrade to file-lock contention and duplicate tuning runs.  This
package restores the exactly-once contract *fleet-wide*:

* :mod:`repro.fleet.ring` — a consistent-hash ring over tuning fingerprints.
  Every fingerprint has exactly one *home* node, so the home server's
  in-flight dedup map is authoritative for it; adding or removing a node
  moves only ~1/N of the keyspace.
* :mod:`repro.fleet.registry` — fleet membership (node id → base URL) plus
  the routing policy: a non-home server either answers ``307`` with the
  home's ``/tune`` URL (*redirect*) or forwards the request itself and
  relays the home's answer (*proxy*).
* :mod:`repro.fleet.queue` — a priority-aware front to the worker pool:
  small warm probes are scheduled ahead of giant cold sweeps instead of
  queueing FIFO behind them.

The store-level replication primitive lives with the stores themselves:
:class:`repro.autotune.store.AppendLogStore` seals rotated segments that can
be shipped between servers and ingested on the other side.
"""

from repro.fleet.queue import PriorityExecutor, PriorityItem, space_cost_estimate
from repro.fleet.registry import FLEET_MODES, FleetRegistry
from repro.fleet.ring import HashRing

__all__ = [
    "FLEET_MODES",
    "FleetRegistry",
    "HashRing",
    "PriorityExecutor",
    "PriorityItem",
    "space_cost_estimate",
]
