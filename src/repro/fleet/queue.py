"""A priority-aware front to the tuning worker pool.

The bare executor-submit path is FIFO: one giant cold sweep submitted first
starves every small warm probe behind it.  :class:`PriorityExecutor` keeps
the pool itself (process or thread) but owns the *queue*: at most
``max_workers`` tasks are in the pool at once, and when a slot frees the
cheapest-highest-priority queued task runs next, not the oldest.

Rank is ``(priority class, estimated cost, arrival)``: an explicit request
class (``high`` < ``normal`` < ``low``) first, the estimated size of the
configuration sweep second (small probes overtake giant sweeps *within* a
class), submission order last — equal work stays FIFO, so nothing starves
forever behind a stream of equal-rank arrivals.

Queue depth per class is published as ``repro_fleet_queue_depth{priority}``.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from dataclasses import dataclass, field
from functools import partial
from heapq import heappop, heappush
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.telemetry import METRICS

__all__ = [
    "PRIORITY_CLASSES",
    "PriorityExecutor",
    "PriorityItem",
    "space_cost_estimate",
]

#: request priority classes, most urgent first (the wire values of
#: ``TuneRequest.priority``)
PRIORITY_CLASSES = ("high", "normal", "low")

QUEUE_DEPTH = METRICS.gauge(
    "repro_fleet_queue_depth",
    "Tuning tasks queued behind the worker pool, by priority class.",
    labels=("priority",),
)


def space_cost_estimate(space_options: Any) -> int:
    """A cheap upper bound on a request's candidate sweep size.

    The product of the space axes (threads x blocks x scratchpad choices x
    tile vectors per geometry) — never a compile, so the scheduler can rank
    a request at submission time.  ``None`` tile limits (exhaustive) rank as
    a large constant: an unbounded sweep should never overtake a bounded one.
    """
    tiles = getattr(space_options, "tile_candidates_per_geometry", None)
    tiles = 64 if tiles is None else max(1, int(tiles))
    return (
        max(1, len(getattr(space_options, "thread_counts", ()) or ()))
        * max(1, len(getattr(space_options, "block_counts", ()) or ()))
        * max(1, len(getattr(space_options, "scratchpad_choices", ()) or ()))
        * tiles
    )


@dataclass(order=True)
class PriorityItem:
    """One queued task; orders by (class rank, cost, arrival)."""

    rank: Tuple[int, int, int]
    fn: Callable[[], Any] = field(compare=False)
    future: Future = field(compare=False)
    #: priority class label, kept for the queue-depth gauge
    label: str = field(compare=False, default="normal")


class PriorityExecutor:
    """Wraps an executor so queued work runs in priority order.

    Duck-compatible with the slice of ``concurrent.futures.Executor`` the
    tuning service uses: ``submit`` returns a real :class:`Future` (so
    ``running()``, ``add_done_callback`` and ``concurrent.futures.wait``
    behave normally) and ``shutdown(cancel_futures=True)`` cancels queued
    tasks.  The inner pool is still what executes — this class only decides
    *which* task gets the next free slot.
    """

    def __init__(self, pool: Any, max_workers: int) -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be positive, got {max_workers!r}")
        self._pool = pool
        self._max_workers = max_workers
        # Reentrant: an inner future that is *already done* when
        # add_done_callback registers runs _finish synchronously on the
        # dispatching thread — i.e. while _dispatch_locked still holds this
        # lock (observed with a broken pool failing futures at submission).
        self._lock = threading.RLock()
        self._heap: List[PriorityItem] = []
        self._running = 0
        self._seq = 0
        self._shutdown = False

    def submit(
        self,
        fn: Callable[[], Any],
        priority: str = "normal",
        cost: int = 0,
    ) -> Future:
        """Queue ``fn`` (a zero-argument callable); returns its future.

        Raises like a shut-down executor would, and propagates the inner
        pool's submission error (e.g. ``BrokenProcessPool``) when the task
        dispatches immediately — the caller's error path stays identical to
        the bare-pool one.
        """
        if priority not in PRIORITY_CLASSES:
            raise ValueError(
                f"priority must be one of {PRIORITY_CLASSES}, got {priority!r}"
            )
        with self._lock:
            if self._shutdown:
                raise RuntimeError("cannot schedule new futures after shutdown")
            self._seq += 1
            item = PriorityItem(
                rank=(PRIORITY_CLASSES.index(priority), max(0, int(cost)), self._seq),
                fn=fn,
                future=Future(),
                label=priority,
            )
            if self._running < self._max_workers:
                self._dispatch_locked(item)
            else:
                heappush(self._heap, item)
                QUEUE_DEPTH.add(1, priority=item.label)
        return item.future

    def _dispatch_locked(self, item: PriorityItem) -> None:
        """Hand one task to the inner pool; caller holds the lock."""
        item.future.set_running_or_notify_cancel()
        try:
            inner = self._pool.submit(item.fn)
        except Exception:
            self._drain_heap_locked()
            raise
        self._running += 1
        inner.add_done_callback(partial(self._finish, item.future))

    def _drain_heap_locked(self) -> None:
        """The inner pool is broken: fail everything still queued, loudly."""
        while self._heap:
            queued = heappop(self._heap)
            QUEUE_DEPTH.add(-1, priority=queued.label)
            queued.future.set_running_or_notify_cancel()
            queued.future.set_exception(
                RuntimeError("worker pool broke before this task was scheduled")
            )

    def _finish(self, outer: Future, inner: Future) -> None:
        with self._lock:
            self._running -= 1
            next_item: Optional[PriorityItem] = None
            if self._heap and not self._shutdown and self._running < self._max_workers:
                next_item = heappop(self._heap)
                QUEUE_DEPTH.add(-1, priority=next_item.label)
        # Transfer the result outside the lock: the outer future's done
        # callbacks (the service's _finish) run synchronously here.
        error = inner.exception()
        if error is not None:
            outer.set_exception(error)
        else:
            outer.set_result(inner.result())
        if next_item is not None:
            with self._lock:
                if self._shutdown:
                    next_item.future.cancel()
                else:
                    try:
                        self._dispatch_locked(next_item)
                    except Exception as dispatch_error:
                        next_item.future.set_exception(dispatch_error)

    def queue_depths(self) -> Dict[str, int]:
        """Currently queued (not yet dispatched) tasks per priority class."""
        with self._lock:
            depths = {label: 0 for label in PRIORITY_CLASSES}
            for item in self._heap:
                depths[item.label] += 1
            return depths

    def shutdown(self, wait: bool = True, cancel_futures: bool = False) -> None:
        with self._lock:
            self._shutdown = True
            queued = list(self._heap) if cancel_futures else []
            if cancel_futures:
                for item in self._heap:
                    QUEUE_DEPTH.add(-1, priority=item.label)
                self._heap.clear()
        for item in queued:
            item.future.cancel()
        self._pool.shutdown(wait=wait, cancel_futures=cancel_futures)
