"""Fleet membership and the ``/tune`` routing policy.

A :class:`FleetRegistry` is what a server knows about its fleet: the member
node ids (their normalised base URLs), which of them is *this* server, and
what to do with a request whose fingerprint is homed elsewhere:

``redirect``
    Answer ``307 Temporary Redirect`` with the home server's ``/tune`` URL.
    Cheapest for the non-home server; the client re-POSTs the identical body
    (307 preserves method and body by definition — the stdlib client in
    :mod:`repro.service.client` handles this, since ``urllib`` refuses to
    follow redirected POSTs on its own).

``proxy``
    Forward the request to the home server over HTTP and relay its response
    verbatim.  One extra hop, but clients never need to know the fleet
    exists — a load balancer can spray ``/tune`` at any member.

Membership is static configuration (the ``serve --peers`` list).  Every
member derives the identical ring from the identical list, so no agreement
protocol is needed; the registry is a pure function of its config, which is
exactly what makes the fleet-wide exactly-once property auditable.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.fleet.ring import HashRing

__all__ = ["FLEET_MODES", "FleetRegistry", "normalize_url"]

#: what a non-home server does with a /tune whose fingerprint lives elsewhere
FLEET_MODES = ("redirect", "proxy")


def normalize_url(url: str) -> str:
    """Canonical node id for a server base URL (scheme defaulted, no slash).

    Every member must normalise peer URLs identically or their rings — and
    therefore their notion of "home" — would disagree.
    """
    if not isinstance(url, str) or not url.strip():
        raise ValueError(f"fleet member URL must be a non-empty string, got {url!r}")
    url = url.strip().rstrip("/")
    if "://" not in url:
        url = "http://" + url
    scheme, _, rest = url.partition("://")
    return f"{scheme.lower()}://{rest}"


class FleetRegistry:
    """This server's view of the fleet: members, self, and routing mode."""

    def __init__(
        self,
        self_url: str,
        peers: Iterable[str],
        mode: str = "redirect",
        replicas: int = 128,
    ) -> None:
        if mode not in FLEET_MODES:
            raise ValueError(f"fleet mode must be one of {FLEET_MODES}, got {mode!r}")
        self.node_id = normalize_url(self_url)
        members = {self.node_id}
        for peer in peers:
            members.add(normalize_url(peer))
        self.mode = mode
        self.ring = HashRing(sorted(members), replicas=replicas)

    @property
    def members(self) -> List[str]:
        return self.ring.nodes

    @property
    def peers(self) -> List[str]:
        """Every member except this server."""
        return [node for node in self.ring.nodes if node != self.node_id]

    def home(self, fingerprint: str) -> str:
        return self.ring.home(fingerprint)

    def is_home(self, fingerprint: str) -> bool:
        return self.home(fingerprint) == self.node_id

    def describe(self) -> Dict[str, Any]:
        """The ``fleet`` section of ``/healthz``."""
        return {
            "node": self.node_id,
            "mode": self.mode,
            "members": self.members,
            "size": len(self.ring),
        }

    # -- proxying ----------------------------------------------------------------------
    def forward_tune(
        self,
        home: str,
        payload: Mapping[str, Any],
        path: str = "/tune",
        timeout: float = 600.0,
    ) -> Tuple[int, Dict[str, Any]]:
        """POST ``payload`` to the home member; ``(status, parsed body)``.

        Used by proxy mode.  The home's HTTP errors relay as-is (its 400 is
        our 400); only an unreachable peer becomes a 502 so the client can
        tell "your request is bad" from "the fleet is degraded".
        """
        body = json.dumps(dict(payload)).encode("utf-8")
        request = urllib.request.Request(
            home + path,
            data=body,
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=timeout) as response:
                return response.status, json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            raw = error.read().decode("utf-8", errors="replace")
            try:
                parsed = json.loads(raw)
            except json.JSONDecodeError:
                parsed = {"error": raw or f"peer returned {error.code}"}
            return error.code, parsed
        except (urllib.error.URLError, OSError, ValueError) as error:
            reason = getattr(error, "reason", error)
            return 502, {"error": f"fleet peer {home} unreachable: {reason}"}

    def poll_members(
        self, timeout: float = 5.0
    ) -> List[Tuple[str, Optional[Dict[str, Any]]]]:
        """Each member's ``/healthz`` payload (``None`` when unreachable)."""
        results: List[Tuple[str, Optional[Dict[str, Any]]]] = []
        for member in self.members:
            try:
                with urllib.request.urlopen(member + "/healthz", timeout=timeout) as resp:
                    results.append((member, json.loads(resp.read().decode("utf-8"))))
            except (urllib.error.URLError, OSError, ValueError):
                results.append((member, None))
        return results
