"""The multi-level tiling transformation (paper Section 4.1, Figs. 2–3).

Given a program whose body is a perfect loop nest, :func:`tile_program`
introduces one new level of tiling loops per :class:`TilingLevelSpec`:

* an **outer** level distributing space-loop tiles across outer-level parallel
  units (GPU thread blocks),
* an optional **memory** level splitting each outer tile into sub-tiles whose
  data footprint fits the scratchpad (added "when the tile in an outer-level
  process is large enough such that it requires more local memory than the
  available amount"),
* an **inner** level distributing the iterations of an atomic unit across the
  inner-level parallel units (threads).

The transformation keeps the original iterators as point loops, rewrites
statement iteration domains to include the tile constraints (so that the
scratchpad framework sees tile-local data spaces parameterised by the tile
origins), and reports the *block boundary* — the loop body around which
copy-in / copy-out code must be placed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.ir.ast import BlockNode, LoopNode, Node, StatementNode
from repro.ir.program import Program
from repro.ir.statements import Statement
from repro.polyhedral.affine import AffineExpr
from repro.polyhedral.constraints import Constraint
from repro.polyhedral.parametric import QuasiAffineBound
from repro.polyhedral.polyhedron import Polyhedron


@dataclass(frozen=True)
class TilingLevelSpec:
    """One level of tiling.

    Attributes
    ----------
    sizes:
        Mapping from original loop iterator to the tile size at this level.
        Loops absent from the mapping are not tiled at this level.
    parallel:
        ``"blocks"`` / ``"threads"`` / ``None`` — parallelism level the new
        tile loops are mapped to.
    suffix:
        Suffix appended to the original iterator name to form the tile
        iterator name (``i`` → ``iT`` for the outer level, ``i_p`` for the
        memory level, ``it`` for the thread level, following Fig. 3).
    """

    sizes: Dict[str, int]
    parallel: Optional[str] = None
    suffix: str = "T"

    def __post_init__(self) -> None:
        for loop, size in self.sizes.items():
            if size <= 0:
                raise ValueError(f"tile size for loop {loop!r} must be positive, got {size}")


@dataclass
class LevelInfo:
    """Metadata about one instantiated tiling level."""

    spec: TilingLevelSpec
    #: original loop name -> (tile iterator name, tile size)
    iterators: Dict[str, Tuple[str, int]] = field(default_factory=dict)
    #: loop nodes created for this level, outermost first
    loops: List[LoopNode] = field(default_factory=list)


@dataclass
class TiledProgram:
    """Result of :func:`tile_program`."""

    program: Program
    levels: List[LevelInfo]
    point_loops: List[LoopNode]
    #: Block node holding everything inside the scratchpad block boundary
    #: (the body of the innermost loop of ``block_level``).
    block_body: BlockNode
    #: Index into ``levels`` after which the computational block begins.
    block_level: int
    #: Parameter context: ranges of all tile iterators (used for hull
    #: resolution by the scratchpad framework).
    context: Polyhedron
    original: Program

    def tile_iterator(self, level: int, loop: str) -> str:
        return self.levels[level].iterators[loop][0]

    def block_loops(self) -> List[LoopNode]:
        """Tile loops enclosing the block boundary, outermost first."""
        result: List[LoopNode] = []
        for level in self.levels[: self.block_level + 1]:
            result.extend(level.loops)
        return result

    def inner_loops(self) -> List[LoopNode]:
        """Loops inside the block boundary (deeper tile levels + point loops)."""
        result: List[LoopNode] = []
        for level in self.levels[self.block_level + 1 :]:
            result.extend(level.loops)
        result.extend(self.point_loops)
        return result


def _extract_perfect_nest(program: Program) -> Tuple[List[LoopNode], BlockNode]:
    """The program body must be a perfect nest: loops containing only one child
    loop each, with statements only at the innermost level."""
    loops: List[LoopNode] = []
    node: Node = program.body
    while True:
        if isinstance(node, BlockNode):
            loop_children = [child for child in node.body if isinstance(child, LoopNode)]
            stmt_children = [child for child in node.body if isinstance(child, StatementNode)]
            if loop_children and stmt_children:
                raise ValueError(
                    "tile_program requires a perfect loop nest; found statements and "
                    "loops at the same level"
                )
            if len(loop_children) == 1 and not stmt_children:
                node = loop_children[0]
                continue
            if not loop_children:
                return loops, node
            raise ValueError(
                "tile_program requires a perfect loop nest; found multiple loops at "
                "the same level"
            )
        if isinstance(node, LoopNode):
            loops.append(node)
            node = node.body
            continue
        raise ValueError(f"unexpected node {type(node).__name__} in a perfect nest")


def tile_program(
    program: Program,
    levels: Sequence[TilingLevelSpec],
    block_level: Optional[int] = None,
) -> TiledProgram:
    """Apply multi-level tiling to a perfect-nest program.

    ``block_level`` indicates after which tiling level the atomic
    computational block begins (default: the last level that is not
    thread-parallel) — copy code generated by the scratchpad framework is
    placed just inside the loops of that level.
    """
    if not levels:
        raise ValueError("at least one tiling level is required")
    nest_loops, innermost = _extract_perfect_nest(program)
    loop_order = [loop.iterator for loop in nest_loops]
    original_bounds = {
        loop.iterator: (loop.lower, loop.upper) for loop in nest_loops
    }
    for spec in levels:
        unknown = [name for name in spec.sizes if name not in loop_order]
        if unknown:
            raise ValueError(f"tiling level references unknown loops {unknown}")

    if block_level is None:
        block_level = _default_block_level(levels)

    transformed = Program(
        name=f"{program.name}_tiled",
        params=tuple(program.params),
        default_params=dict(program.default_params),
        symbol_definitions=dict(program.symbol_definitions),
    )
    for array in program.arrays.values():
        transformed.add_array(array)

    level_infos: List[LevelInfo] = [LevelInfo(spec=spec) for spec in levels]
    context_dims: List[str] = []
    context_constraints: List[Constraint] = []

    # Track, per original loop, the chain of (origin iterator, size, level)
    # created so far; used for the next level's bounds, the point loops and
    # the statement-domain rewriting.
    chains: Dict[str, List[Tuple[str, int, int]]] = {name: [] for name in loop_order}

    def _current_lower(name: str) -> AffineExpr:
        if chains[name]:
            origin, _, _ = chains[name][-1]
            return AffineExpr.var(origin)
        lower = original_bounds[name][0]
        return lower if isinstance(lower, AffineExpr) else AffineExpr.const(lower)

    def _upper_candidates(name: str) -> List[AffineExpr]:
        upper = original_bounds[name][1]
        candidates = [upper if isinstance(upper, AffineExpr) else AffineExpr.const(upper)]
        for origin, size, _ in chains[name]:
            candidates.append(AffineExpr.var(origin) + (size - 1))
        return candidates

    # -- create tile loops level by level -----------------------------------------
    all_tile_loops: List[LoopNode] = []
    block_body: Optional[BlockNode] = None
    for index, spec in enumerate(levels):
        info = level_infos[index]
        for name in loop_order:
            if name not in spec.sizes:
                continue
            size = spec.sizes[name]
            tile_iter = f"{name}{spec.suffix}"
            lower = _current_lower(name)
            upper_candidates = _upper_candidates(name)
            upper = (
                upper_candidates[0]
                if len(upper_candidates) == 1
                else QuasiAffineBound("min", tuple(upper_candidates))
            )
            loop = LoopNode(
                iterator=tile_iter,
                lower=lower,
                upper=upper,
                step=size,
                parallel=spec.parallel,
            )
            info.iterators[name] = (tile_iter, size)
            info.loops.append(loop)
            all_tile_loops.append(loop)

            # Context: tile origin ranges within the original loop bounds and
            # within the parent tile.
            context_dims.append(tile_iter)
            context_constraints.append(
                Constraint.greater_equal(AffineExpr.var(tile_iter), lower)
            )
            for candidate in upper_candidates:
                context_constraints.append(
                    Constraint.less_equal(AffineExpr.var(tile_iter), candidate)
                )
            chains[name].append((tile_iter, size, index))
        if index == block_level:
            block_body = BlockNode()

    # -- point loops -----------------------------------------------------------------
    point_loops: List[LoopNode] = []
    for name in loop_order:
        lower = _current_lower(name)
        candidates = _upper_candidates(name)
        upper = (
            candidates[0]
            if len(candidates) == 1
            else QuasiAffineBound("min", tuple(candidates))
        )
        point_loops.append(LoopNode(iterator=name, lower=lower, upper=upper))

    # -- rewrite statement domains ------------------------------------------------------
    # Only the tile constraints of levels up to the block boundary enter the
    # statement domains: the scratchpad framework must see the data touched by
    # the whole computational block (one memory-level tile), not by a single
    # thread's share of it.
    block_tile_params = tuple(
        iterator
        for level_index, info in enumerate(level_infos)
        if level_index <= block_level
        for iterator, _size in info.iterators.values()
    )
    new_statements: Dict[str, Statement] = {}
    for statement in program.statement_list:
        constraints = list(statement.domain.constraints)
        for name in statement.domain.dims:
            for origin, size, level_index in chains.get(name, ()):
                if level_index > block_level:
                    continue
                var = AffineExpr.var(name)
                origin_var = AffineExpr.var(origin)
                constraints.append(Constraint.greater_equal(var, origin_var))
                constraints.append(Constraint.less_equal(var, origin_var + (size - 1)))
        params = tuple(dict.fromkeys(tuple(statement.domain.params) + block_tile_params))
        domain = Polyhedron(statement.domain.dims, constraints, params)
        new_statements[statement.name] = statement.with_domain(domain)

    # -- assemble the loop structure --------------------------------------------------------
    innermost_block = BlockNode(
        [StatementNode(new_statements[node.statement.name], kind=node.kind)
         for node in innermost.body if isinstance(node, StatementNode)]
    )
    body: Node = innermost_block
    # Nest point loops (innermost last).
    for loop in reversed(point_loops):
        loop.body = body if isinstance(body, BlockNode) else BlockNode([body])
        body = loop
    # Nest tile loops from the innermost level outwards, inserting the block
    # boundary marker at the requested level.
    ordered_tile_loops: List[Tuple[int, LoopNode]] = []
    for index, info in enumerate(level_infos):
        for loop in info.loops:
            ordered_tile_loops.append((index, loop))
    for level_index, loop in reversed(ordered_tile_loops):
        loop.body = body if isinstance(body, BlockNode) else BlockNode([body])
        body = loop
        # The block boundary is the body of the innermost loop of block_level.
        if level_index == block_level and loop is level_infos[block_level].loops[-1]:
            assert block_body is not None
            block_body.body = [l for l in [body]]  # placeholder; replaced below

    # Identify the block body precisely: the body of the innermost loop of the
    # block level (or the whole program body when block_level covers no loops).
    if level_infos[block_level].loops:
        block_body = level_infos[block_level].loops[-1].body
    else:
        block_body = body if isinstance(body, BlockNode) else BlockNode([body])

    transformed.body = body if isinstance(body, BlockNode) else BlockNode([body])
    for statement in new_statements.values():
        transformed.add_statement(statement)

    context = Polyhedron(tuple(context_dims), context_constraints, tuple(program.params))
    tiled = TiledProgram(
        program=transformed,
        levels=level_infos,
        point_loops=point_loops,
        block_body=block_body,
        block_level=block_level,
        context=context,
        original=program,
    )
    transformed.validate()
    return tiled


def _default_block_level(levels: Sequence[TilingLevelSpec]) -> int:
    """Default block boundary: the last level that is not thread-parallel."""
    candidate = 0
    for index, spec in enumerate(levels):
        if spec.parallel != "threads":
            candidate = index
    return candidate
