"""Data-movement cost model — paper Section 4.3.

The cost of the data movement performed by one outer-level parallel process is

    C = Σ_k  N_k · ( P·S  +  V_k·L / P )

where, for each staged buffer ``k``:

* ``N_k`` — number of copy occurrences: the product of the trip counts of the
  intra-tile tiling loops that enclose the copy code (hoisting out of
  redundant loops reduces this, Section 4.2),
* ``V_k`` — volume (elements) moved per occurrence,
* ``P``  — number of inner-level processes (threads) doing the copy,
* ``S``  — synchronisation cost per process per copy occurrence,
* ``L``  — transfer cost per element.

The model is evaluated on the *actual* buffers the scratchpad framework would
allocate for a tile: the constructor builds symbolic tile-shaped iteration
domains (tile origins and tile sizes as parameters), computes the per-buffer
hulls once, and each evaluation simply substitutes concrete tile sizes — so
the same machinery that generates code also prices it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.ir.program import Program
from repro.ir.statements import Statement
from repro.polyhedral.affine import AffineExpr
from repro.polyhedral.constraints import Constraint
from repro.polyhedral.hull import RectangularHull, rectangular_hull
from repro.polyhedral.polyhedron import Polyhedron
from repro.scratchpad.data_space import compute_reference_data_spaces
from repro.scratchpad.partition import partition_overlapping
from repro.scratchpad.reuse import DEFAULT_DELTA, evaluate_reuse

ORIGIN_SUFFIX = "__org"
SIZE_SUFFIX = "__sz"


@dataclass
class MovementDescriptor:
    """Pre-computed geometry of one prospective local buffer."""

    array_name: str
    buffer_name: str
    element_size: int
    hull: RectangularHull
    read_hull: Optional[RectangularHull]
    write_hull: Optional[RectangularHull]
    #: original loop iterators the buffer's accesses actually depend on
    dependent_loops: Set[str] = field(default_factory=set)


class DataMovementCostModel:
    """Evaluates the Section-4.3 cost model for candidate tile sizes."""

    def __init__(
        self,
        program: Program,
        tile_loops: Sequence[str],
        loop_extents: Mapping[str, int],
        threads: int,
        sync_cost: float,
        transfer_cost: float,
        problem_params: Optional[Mapping[str, int]] = None,
        delta: float = DEFAULT_DELTA,
        stage_all: bool = False,
        hoisting: bool = True,
    ) -> None:
        """Build the model.

        Parameters
        ----------
        program:
            The (untiled) program block; its statements define the accesses.
        tile_loops:
            Original loop iterators that the intra-tile (memory-level) tiling
            splits; tile sizes are searched for exactly these loops.
        loop_extents:
            Iteration extent of each tile loop within one outer-level tile
            (the ``N_i`` of the paper's formula).
        threads:
            ``P`` — the number of inner-level processes.
        sync_cost / transfer_cost:
            ``S`` and ``L`` of the cost model (machine-dependent).
        problem_params:
            Values for the program's symbolic parameters.
        stage_all:
            Treat every partition as staged (Cell-like target).
        hoisting:
            Account for Section-4.2 hoisting when counting copy occurrences.
        """
        if threads <= 0:
            raise ValueError("threads (P) must be positive")
        self.program = program
        self.tile_loops = list(tile_loops)
        self.loop_extents = {k: int(v) for k, v in loop_extents.items()}
        for loop in self.tile_loops:
            if loop not in self.loop_extents:
                raise ValueError(f"missing extent for tile loop {loop!r}")
        self.threads = threads
        self.sync_cost = float(sync_cost)
        self.transfer_cost = float(transfer_cost)
        self.problem_params = dict(problem_params or program.default_params)
        self.delta = delta
        self.stage_all = stage_all
        self.hoisting = hoisting
        self.descriptors: List[MovementDescriptor] = []
        self._representative_origins: Dict[str, int] = {}
        self._build()

    # -- construction -------------------------------------------------------------
    def _build(self) -> None:
        statements = [self._tile_domain_statement(s) for s in self.program.statement_list]
        context = self._context()
        data_spaces = compute_reference_data_spaces(statements)
        reuse_binding = dict(self.problem_params)
        reuse_binding.update(self._representative_origins)
        for loop in self.tile_loops:
            reuse_binding.setdefault(f"{loop}{SIZE_SUFFIX}", self.loop_extents[loop])

        for array_name in sorted(data_spaces):
            spaces = data_spaces[array_name]
            for index, partition in enumerate(partition_overlapping(spaces)):
                decision = evaluate_reuse(partition, self.delta, reuse_binding)
                if not (decision.beneficial or self.stage_all):
                    continue
                element_size = partition[0].array.element_size
                hull = rectangular_hull([s.data_space for s in partition], context)
                reads = [s.data_space for s in partition if not s.is_write]
                writes = [s.data_space for s in partition if s.is_write]
                dependent: Set[str] = set()
                for space in partition:
                    for expr in space.function.outputs:
                        for loop in self.tile_loops:
                            if expr.coefficient(loop) != 0:
                                dependent.add(loop)
                self.descriptors.append(
                    MovementDescriptor(
                        array_name=array_name,
                        buffer_name=f"l_{array_name}_{index}",
                        element_size=element_size,
                        hull=hull,
                        read_hull=rectangular_hull(reads, context) if reads else None,
                        write_hull=rectangular_hull(writes, context) if writes else None,
                        dependent_loops=dependent,
                    )
                )

    def _tile_domain_statement(self, statement: Statement) -> Statement:
        """Intersect the statement domain with a symbolic tile box."""
        constraints = list(statement.domain.constraints)
        extra_params: List[str] = []
        for loop in self.tile_loops:
            if loop not in statement.domain.dims:
                continue
            origin = f"{loop}{ORIGIN_SUFFIX}"
            size = f"{loop}{SIZE_SUFFIX}"
            extra_params.extend((origin, size))
            var = AffineExpr.var(loop)
            origin_var = AffineExpr.var(origin)
            size_var = AffineExpr.var(size)
            constraints.append(Constraint.greater_equal(var, origin_var))
            constraints.append(Constraint.less_equal(var, origin_var + size_var - 1))
        params = tuple(dict.fromkeys(tuple(statement.domain.params) + tuple(extra_params)))
        domain = Polyhedron(statement.domain.dims, constraints, params)
        return statement.with_domain(domain)

    def _context(self) -> Polyhedron:
        """Parameter context: origin within loop bounds, sizes at least 1."""
        dims: List[str] = []
        constraints: List[Constraint] = []
        for loop in self.tile_loops:
            origin = f"{loop}{ORIGIN_SUFFIX}"
            size = f"{loop}{SIZE_SUFFIX}"
            dims.extend((origin, size))
            lower, upper = self._original_bounds(loop)
            self._representative_origins[origin] = lower
            constraints.append(Constraint.greater_equal(AffineExpr.var(origin), lower))
            constraints.append(Constraint.less_equal(AffineExpr.var(origin), upper))
            constraints.append(Constraint.greater_equal(AffineExpr.var(size), 1))
        return Polyhedron(dims, constraints, tuple(self.program.params))

    def _original_bounds(self, loop: str) -> Tuple[int, int]:
        """Concrete bounds of an original loop (for representative origins)."""
        from repro.polyhedral.parametric import parametric_bounds

        for statement in self.program.statement_list:
            if loop in statement.domain.dims:
                bound = parametric_bounds(statement.domain, loop)
                binding = dict(self.problem_params)
                low = bound.lower.evaluate_int(binding)
                high = bound.upper.evaluate_int(binding)
                return low, high
        raise ValueError(f"loop {loop!r} does not appear in any statement domain")

    # -- evaluation ------------------------------------------------------------------
    def _binding(self, tile_sizes: Mapping[str, float]) -> Dict[str, float]:
        binding: Dict[str, float] = dict(self.problem_params)
        binding.update(self._representative_origins)
        for loop in self.tile_loops:
            size = float(tile_sizes[loop])
            binding[f"{loop}{SIZE_SUFFIX}"] = size
        return binding

    @staticmethod
    def _hull_volume(hull: Optional[RectangularHull], binding: Mapping[str, float]) -> float:
        if hull is None:
            return 0.0
        volume = 1.0
        for dim in hull.dims:
            lows: List[float] = []
            highs: List[float] = []
            for bounds in hull.member_bounds:
                low = max(float(e.evaluate({k: _to_fraction(v) for k, v in binding.items()}))
                          for e in bounds[dim].lower.exprs)
                high = min(float(e.evaluate({k: _to_fraction(v) for k, v in binding.items()}))
                           for e in bounds[dim].upper.exprs)
                if high >= low:
                    lows.append(low)
                    highs.append(high)
            if not lows:
                return 0.0
            volume *= max(max(highs) - min(lows) + 1.0, 0.0)
        return volume

    def buffer_details(self, tile_sizes: Mapping[str, float]) -> List[Dict[str, float]]:
        """Per-buffer footprint, volumes and occurrence count for given tile sizes."""
        binding = self._binding(tile_sizes)
        details: List[Dict[str, float]] = []
        for descriptor in self.descriptors:
            footprint = self._hull_volume(descriptor.hull, binding)
            volume_in = self._hull_volume(descriptor.read_hull, binding)
            volume_out = self._hull_volume(descriptor.write_hull, binding)
            occurrences = self._occurrences(descriptor, tile_sizes)
            details.append(
                {
                    "buffer": descriptor.buffer_name,
                    "array": descriptor.array_name,
                    "footprint_elements": footprint,
                    "footprint_bytes": footprint * descriptor.element_size,
                    "volume_in": volume_in,
                    "volume_out": volume_out,
                    "occurrences": occurrences,
                }
            )
        return details

    def _occurrences(self, descriptor: MovementDescriptor, tile_sizes: Mapping[str, float]) -> float:
        loops = self.tile_loops
        if self.hoisting:
            loops = [l for l in loops if l in descriptor.dependent_loops]
        count = 1.0
        for loop in loops:
            size = max(float(tile_sizes[loop]), 1.0)
            count *= math.ceil(self.loop_extents[loop] / size)
        return count

    def footprint_bytes(self, tile_sizes: Mapping[str, float]) -> float:
        """Scratchpad bytes needed by one tile (the ``Σ M_i <= M_up`` constraint)."""
        binding = self._binding(tile_sizes)
        return sum(
            self._hull_volume(d.hull, binding) * d.element_size for d in self.descriptors
        )

    def movement_cost(self, tile_sizes: Mapping[str, float]) -> float:
        """The paper's objective ``Σ_k N_k (P·S + V_k·L/P)`` for copy-in and copy-out."""
        total = 0.0
        for entry in self.buffer_details(tile_sizes):
            per_occurrence = 0.0
            if entry["volume_in"] > 0:
                per_occurrence += (
                    self.threads * self.sync_cost
                    + entry["volume_in"] * self.transfer_cost / self.threads
                )
            if entry["volume_out"] > 0:
                per_occurrence += (
                    self.threads * self.sync_cost
                    + entry["volume_out"] * self.transfer_cost / self.threads
                )
            total += entry["occurrences"] * per_occurrence
        return total

    def work_per_tile(self, tile_sizes: Mapping[str, float]) -> float:
        """Product of tile sizes (the ``t_1·...·t_m >= P`` occupancy constraint)."""
        product = 1.0
        for loop in self.tile_loops:
            product *= float(tile_sizes[loop])
        return product


def _to_fraction(value):
    from fractions import Fraction

    if isinstance(value, Fraction):
        return value
    if isinstance(value, int):
        return Fraction(value)
    return Fraction(value).limit_denominator(10**6)
