"""Launch geometry and occupancy (paper Sections 4.1 and 5).

The number of thread blocks that may be resident concurrently on the device is
bounded by the scratchpad usage of each block: with ``M`` bytes of shared
memory per block and ``X`` bytes available per multiprocessor, at most
``X // M`` blocks fit on one multiprocessor (the paper's ``X / M`` bound, with
``2^18 / M`` for the 16-multiprocessor GeForce 8800 GTX).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class LaunchGeometry:
    """How a mapped program is launched on the two-level machine."""

    num_blocks: int
    threads_per_block: int
    shared_memory_per_block_bytes: int = 0

    def __post_init__(self) -> None:
        if self.num_blocks <= 0:
            raise ValueError("num_blocks must be positive")
        if self.threads_per_block <= 0:
            raise ValueError("threads_per_block must be positive")
        if self.shared_memory_per_block_bytes < 0:
            raise ValueError("shared memory per block cannot be negative")

    @property
    def total_threads(self) -> int:
        return self.num_blocks * self.threads_per_block

    def concurrent_blocks(
        self,
        shared_memory_per_multiprocessor: int,
        multiprocessors: int,
        max_blocks_per_multiprocessor: int = 8,
    ) -> int:
        """Blocks resident at once, limited by scratchpad capacity."""
        per_mp = occupancy_limited_blocks(
            self.shared_memory_per_block_bytes,
            shared_memory_per_multiprocessor,
            max_blocks_per_multiprocessor,
        )
        return min(self.num_blocks, per_mp * multiprocessors)


def occupancy_limited_blocks(
    shared_memory_per_block_bytes: int,
    shared_memory_per_multiprocessor: int,
    max_blocks_per_multiprocessor: int = 8,
) -> int:
    """Concurrent blocks per multiprocessor allowed by shared-memory usage."""
    if shared_memory_per_block_bytes <= 0:
        return max_blocks_per_multiprocessor
    if shared_memory_per_block_bytes > shared_memory_per_multiprocessor:
        return 0
    fit = shared_memory_per_multiprocessor // shared_memory_per_block_bytes
    return int(min(max(fit, 0), max_blocks_per_multiprocessor))


def blocks_for_extent(extent: int, tile_size: int) -> int:
    """Number of tiles (thread blocks) covering an iteration extent."""
    if extent <= 0:
        raise ValueError("extent must be positive")
    if tile_size <= 0:
        raise ValueError("tile_size must be positive")
    return -(-extent // tile_size)
