"""Tile-size search under a scratchpad-capacity constraint — paper Section 4.3.

The search minimises the data-movement cost model over real-valued tile sizes
with SLSQP (the scipy relative of the sequential quadratic programming the
paper proposes), subject to

* ``0 < t_i <= N_i`` for every tiled loop,
* ``Σ_i M_i(t) <= M_up`` (the scratchpad capacity available to the process),
* ``t_1 · t_2 · ... · t_m >= P_low`` (enough work to keep the inner-level
  processes busy),

then rounds the relaxed solution to integers: a small neighbourhood of
divisor/power-of-two candidates around the relaxed optimum is evaluated
exactly and the best feasible integer vector is returned.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np
from scipy import optimize

from repro.tiling.cost_model import DataMovementCostModel


@dataclass
class TileSearchProblem:
    """Inputs of the tile-size optimisation."""

    cost_model: DataMovementCostModel
    memory_limit_bytes: float
    min_parallelism: int
    #: optional explicit candidate tile sizes per loop (e.g. powers of two);
    #: derived from the relaxed optimum when omitted.
    candidates: Optional[Dict[str, Sequence[int]]] = None

    def __post_init__(self) -> None:
        if self.memory_limit_bytes <= 0:
            raise ValueError("memory_limit_bytes must be positive")
        if self.min_parallelism <= 0:
            raise ValueError("min_parallelism must be positive")


@dataclass
class TileSearchResult:
    """Outcome of the search."""

    tile_sizes: Dict[str, int]
    cost: float
    footprint_bytes: float
    feasible: bool
    relaxed_solution: Dict[str, float] = field(default_factory=dict)
    evaluated_candidates: int = 0

    def __str__(self) -> str:
        sizes = ", ".join(f"{k}={v}" for k, v in self.tile_sizes.items())
        status = "feasible" if self.feasible else "INFEASIBLE"
        return f"tile sizes [{sizes}] cost={self.cost:.1f} footprint={self.footprint_bytes:.0f}B ({status})"


def solve_relaxed(
    problem: TileSearchProblem,
    initial: Optional[Mapping[str, float]] = None,
) -> Dict[str, float]:
    """The SLSQP relaxation alone: best feasible real-valued tile sizes.

    Exposed separately from :func:`search_tile_sizes` so that the autotuner
    (:mod:`repro.autotune.space`) can seed its configuration space from the
    relaxed optimum and its integer neighbourhood without committing to the
    single rounded vector the one-shot search returns.  Falls back to all-ones
    when no feasible relaxed point is found.
    """
    model = problem.cost_model
    loops = model.tile_loops
    extents = [model.loop_extents[loop] for loop in loops]

    def unpack(vector: np.ndarray) -> Dict[str, float]:
        return {loop: float(max(value, 1.0)) for loop, value in zip(loops, vector)}

    def objective(vector: np.ndarray) -> float:
        return model.movement_cost(unpack(vector))

    def memory_slack(vector: np.ndarray) -> float:
        return problem.memory_limit_bytes - model.footprint_bytes(unpack(vector))

    def work_slack(vector: np.ndarray) -> float:
        return model.work_per_tile(unpack(vector)) - problem.min_parallelism

    bounds = [(1.0, float(extent)) for extent in extents]
    constraints = [
        {"type": "ineq", "fun": memory_slack},
        {"type": "ineq", "fun": work_slack},
    ]

    starts: List[np.ndarray] = []
    if initial is not None:
        starts.append(np.array([float(initial[loop]) for loop in loops]))
    starts.append(np.array([max(extent / 4.0, 1.0) for extent in extents]))
    starts.append(np.array([min(16.0, extent) for extent in extents]))
    starts.append(np.array([float(extent) for extent in extents]))

    best_relaxed: Optional[np.ndarray] = None
    best_relaxed_cost = math.inf
    for start in starts:
        result = optimize.minimize(
            objective,
            start,
            method="SLSQP",
            bounds=bounds,
            constraints=constraints,
            options={"maxiter": 200, "ftol": 1e-6},
        )
        if not np.all(np.isfinite(result.x)):
            continue
        candidate = np.clip(result.x, [b[0] for b in bounds], [b[1] for b in bounds])
        feasible = memory_slack(candidate) >= -1e-6 and work_slack(candidate) >= -1e-6
        cost = objective(candidate)
        if feasible and cost < best_relaxed_cost:
            best_relaxed_cost = cost
            best_relaxed = candidate
    if best_relaxed is None:
        # No feasible relaxed point found; fall back to the smallest tiles.
        best_relaxed = np.array([1.0 for _ in loops])
    return unpack(best_relaxed)


def search_tile_sizes(
    problem: TileSearchProblem,
    initial: Optional[Mapping[str, float]] = None,
) -> TileSearchResult:
    """Run the relaxed SLSQP optimisation followed by integer rounding."""
    model = problem.cost_model
    loops = model.tile_loops
    relaxed = solve_relaxed(problem, initial)
    candidate_sets = candidate_neighbourhood(problem, relaxed)
    best: Optional[Tuple[Dict[str, int], float, float]] = None
    evaluated = 0
    for combination in itertools.product(*[candidate_sets[loop] for loop in loops]):
        sizes = dict(zip(loops, combination))
        evaluated += 1
        footprint = model.footprint_bytes(sizes)
        work = model.work_per_tile(sizes)
        if footprint > problem.memory_limit_bytes or work < problem.min_parallelism:
            continue
        cost = model.movement_cost(sizes)
        if best is None or cost < best[1] or (cost == best[1] and footprint < best[2]):
            best = (sizes, cost, footprint)

    if best is None:
        # Nothing feasible among the integer candidates: report the smallest
        # tile sizes with the infeasibility flagged.
        sizes = {loop: 1 for loop in loops}
        return TileSearchResult(
            tile_sizes=sizes,
            cost=model.movement_cost(sizes),
            footprint_bytes=model.footprint_bytes(sizes),
            feasible=False,
            relaxed_solution=relaxed,
            evaluated_candidates=evaluated,
        )
    sizes, cost, footprint = best
    return TileSearchResult(
        tile_sizes=sizes,
        cost=cost,
        footprint_bytes=footprint,
        feasible=True,
        relaxed_solution=relaxed,
        evaluated_candidates=evaluated,
    )


def candidate_neighbourhood(
    problem: TileSearchProblem, relaxed: Mapping[str, float]
) -> Dict[str, List[int]]:
    """Integer candidates per loop around the relaxed optimum.

    The neighbourhood mixes floor/ceil of the relaxed value, the nearest
    powers of two, their halvings/doublings, and the extremes 1 and the full
    extent; explicit ``problem.candidates`` override the derivation per loop.
    The autotuner enumerates products of these sets as its tile axis.
    """
    model = problem.cost_model
    sets: Dict[str, List[int]] = {}
    for loop in model.tile_loops:
        extent = model.loop_extents[loop]
        if problem.candidates and loop in problem.candidates:
            values = sorted({int(v) for v in problem.candidates[loop] if 1 <= v <= extent})
            sets[loop] = values or [min(extent, 1)]
            continue
        value = relaxed[loop]
        candidates = {
            1,
            extent,
            int(math.floor(value)),
            int(math.ceil(value)),
            _power_of_two_at_most(value),
            _power_of_two_at_least(value, extent),
        }
        candidates |= {c * 2 for c in list(candidates)} | {max(c // 2, 1) for c in candidates}
        sets[loop] = sorted({c for c in candidates if 1 <= c <= extent})
    return sets


def _power_of_two_at_most(value: float) -> int:
    return max(1, 2 ** int(math.floor(math.log2(max(value, 1.0)))))


def _power_of_two_at_least(value: float, cap: int) -> int:
    power = 2 ** int(math.ceil(math.log2(max(value, 1.0))))
    return min(max(power, 1), cap)
