"""Computation mapping by multi-level tiling (paper Section 4).

* :mod:`repro.tiling.bands` — dependence-based identification of fully
  permutable bands, parallel (space) loops and sequential (time) loops; a
  reduced reimplementation of the parts of the Bondhugula et al. framework the
  paper consumes.
* :mod:`repro.tiling.hyperplanes` — legality-checked skewing (used to enable
  tiling / concurrent start for stencils).
* :mod:`repro.tiling.multilevel` — the multi-level tiling transformation that
  produces the Fig. 2 → Fig. 3 loop structure.
* :mod:`repro.tiling.placement` — hoisting of data-movement code out of
  redundant tiling loops (Section 4.2).
* :mod:`repro.tiling.cost_model` — the data-movement cost model
  ``C = N · (P·S + V·L/P)``.
* :mod:`repro.tiling.tile_search` — the constrained tile-size optimisation of
  Section 4.3 (SLSQP over relaxed real tile sizes, then rounding).
* :mod:`repro.tiling.mapping` — launch geometry: thread blocks, threads,
  occupancy limits imposed by scratchpad usage.
"""

from repro.tiling.bands import BandAnalysis, analyze_bands
from repro.tiling.hyperplanes import find_legal_skewing, apply_skewing
from repro.tiling.multilevel import TilingLevelSpec, TiledProgram, tile_program
from repro.tiling.placement import hoist_level_for_buffer, redundant_loops_for_buffer
from repro.tiling.cost_model import DataMovementCostModel, MovementDescriptor
from repro.tiling.tile_search import (
    TileSearchProblem,
    TileSearchResult,
    candidate_neighbourhood,
    search_tile_sizes,
    solve_relaxed,
)
from repro.tiling.mapping import LaunchGeometry, occupancy_limited_blocks

__all__ = [
    "BandAnalysis",
    "analyze_bands",
    "find_legal_skewing",
    "apply_skewing",
    "TilingLevelSpec",
    "TiledProgram",
    "tile_program",
    "hoist_level_for_buffer",
    "redundant_loops_for_buffer",
    "DataMovementCostModel",
    "MovementDescriptor",
    "TileSearchProblem",
    "TileSearchResult",
    "candidate_neighbourhood",
    "search_tile_sizes",
    "solve_relaxed",
    "LaunchGeometry",
    "occupancy_limited_blocks",
]
