"""Permutable bands, space loops and time loops.

The paper relies on the affine-transformation framework of Bondhugula et al.
to find bands of permutable loops and to classify loops as *space*
(communication-free, distributable across parallel units) or *time*
(sequential / pipelined).  This module reimplements the decision procedure the
paper actually consumes, driven purely by the dependence polyhedra:

* a loop is **parallel** when it carries no dependence;
* a band of consecutive loops is **fully permutable** (hence tilable) when no
  dependence carried within the band has a negative distance component along
  any loop of the band;
* within the outermost permutable band, the communication-free loops become
  space loops; when there are none, all but the last band loop are used as
  space loops to obtain pipelined parallelism (the paper's rule).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.ir.program import Program
from repro.polyhedral.dependence import Dependence, DependenceAnalyzer


@dataclass(frozen=True)
class BandAnalysis:
    """Result of the parallelism analysis of a program's loop nest."""

    loop_order: Tuple[str, ...]
    parallel_loops: Tuple[str, ...]
    permutable_band: Tuple[str, ...]
    space_loops: Tuple[str, ...]
    time_loops: Tuple[str, ...]
    carried: Dict[str, int] = field(default_factory=dict)

    @property
    def needs_global_synchronization(self) -> bool:
        """True when a time loop encloses the space loops.

        With an outer sequential (time) loop, all outer-level parallel
        processes must synchronise between time steps — the situation of the
        paper's 1-D Jacobi kernel, as opposed to the synchronisation-free
        MPEG-4 ME kernel.
        """
        if not self.space_loops:
            return False
        first_space = self.loop_order.index(self.space_loops[0])
        return any(self.loop_order.index(t) < first_space for t in self.time_loops)


def analyze_bands(
    program: Program, loop_order: Optional[Sequence[str]] = None
) -> BandAnalysis:
    """Classify the loops of (the common nest of) *program*.

    ``loop_order`` defaults to the iterator order of the deepest statement;
    programs whose statements disagree on the shared outer loops are analysed
    on the common prefix.
    """
    statements = program.statement_list
    if not statements:
        raise ValueError("cannot analyse a program without statements")
    if loop_order is None:
        deepest = max(statements, key=lambda s: len(s.domain.dims))
        loop_order = deepest.domain.dims
    loop_order = tuple(loop_order)

    analyzer = program.dependence_analyzer()
    dependences = analyzer.dependences()
    carried: Dict[str, int] = {loop: 0 for loop in loop_order}
    for dep in dependences:
        loop = dep.carrying_loop
        if loop is not None and loop in carried:
            carried[loop] += 1

    parallel = tuple(loop for loop in loop_order if carried[loop] == 0)
    band = _outermost_permutable_band(loop_order, dependences)
    space, time = _space_time_split(loop_order, band, parallel)
    return BandAnalysis(
        loop_order=loop_order,
        parallel_loops=parallel,
        permutable_band=band,
        space_loops=space,
        time_loops=time,
        carried=carried,
    )


def _outermost_permutable_band(
    loop_order: Tuple[str, ...], dependences: List[Dependence]
) -> Tuple[str, ...]:
    """Longest prefix of the nest forming a fully permutable band."""
    band: List[str] = []
    for loop in loop_order:
        candidate = band + [loop]
        if _band_is_permutable(candidate, dependences):
            band = candidate
        else:
            break
    if band:
        return tuple(band)
    # Fallback: the outermost loop alone always forms a (trivial) band.
    return loop_order[:1]


def _band_is_permutable(band: Sequence[str], dependences: List[Dependence]) -> bool:
    """No dependence carried within the band may have a negative component."""
    band_set = set(band)
    for dep in dependences:
        loop = dep.carrying_loop
        if loop is None or loop not in band_set:
            continue
        for other in band:
            if dep.allows_negative_component(other):
                return False
    return True


def _space_time_split(
    loop_order: Tuple[str, ...],
    band: Tuple[str, ...],
    parallel: Tuple[str, ...],
) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
    """Space loops: communication-free loops of the outermost band.

    If the band has no communication-free loop, all but the last band loop
    become space loops (pipelined parallelism), per the paper's policy.
    """
    parallel_set = set(parallel)
    space = tuple(loop for loop in band if loop in parallel_set)
    if not space and len(band) > 1:
        space = tuple(band[:-1])
    time = tuple(loop for loop in loop_order if loop not in space)
    return space, time
