"""Optimal placement (hoisting) of data-movement code — paper Section 4.2.

A tiling loop is *redundant* for an array reference when the reference's
access function does not depend on the loop's original iterator.  If every
reference of a local buffer shares a redundant loop, the buffer's copy code
can be hoisted above that loop: the staged data is then reused across the
iterations of the redundant loop instead of being re-copied, which reduces the
number of copy occurrences ``N`` in the cost model and enables better tile
sizes.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from repro.ir.ast import LoopNode
from repro.scratchpad.allocation import LocalBufferSpec


def redundant_loops_for_buffer(
    spec: LocalBufferSpec, original_loops: Sequence[str]
) -> Set[str]:
    """Original loop iterators on which no reference of the buffer depends."""
    redundant: Set[str] = set()
    for loop in original_loops:
        depends = False
        for space in spec.partition:
            for expr in space.function.outputs:
                if expr.coefficient(loop) != 0:
                    depends = True
                    break
            if depends:
                break
        if not depends:
            redundant.add(loop)
    return redundant


def hoist_level_for_buffer(
    spec: LocalBufferSpec,
    block_loops: Sequence[Tuple[str, str]],
) -> int:
    """How many innermost block-tiling loops the copy code can be hoisted out of.

    ``block_loops`` lists the tiling loops enclosing the computational block,
    outermost first, as pairs ``(tile iterator, original iterator)``.  The
    copy code may move above a *suffix* of these loops when each of them is
    redundant for every reference of the buffer; the returned integer is the
    length of that suffix (0 = no hoisting, the paper's default placement).
    """
    redundant = redundant_loops_for_buffer(spec, [orig for _, orig in block_loops])
    hoisted = 0
    for _, original in reversed(list(block_loops)):
        if original in redundant:
            hoisted += 1
        else:
            break
    return hoisted


def placement_depths(
    specs: Sequence[LocalBufferSpec],
    block_loops: Sequence[Tuple[str, str]],
    enable_hoisting: bool = True,
) -> Dict[str, int]:
    """Per-buffer placement depth: number of block loops enclosing the copy code.

    With hoisting disabled every buffer sits inside all block loops (the
    paper's default placement at the beginning/end of the tile); with hoisting
    enabled, redundant innermost loops are peeled off per Section 4.2.
    """
    total = len(block_loops)
    depths: Dict[str, int] = {}
    for spec in specs:
        if enable_hoisting:
            depths[spec.local.name] = total - hoist_level_for_buffer(spec, block_loops)
        else:
            depths[spec.local.name] = total
    return depths
