"""The long-lived tuning server: work queue, dedup, shared cache, HTTP API.

Two layers:

* :class:`TuningService` — the transport-agnostic engine.  Incoming requests
  are fingerprinted synchronously; a warm cache entry answers instantly with
  zero compiles, an identical *in-flight* request attaches to the existing
  job (N concurrent submitters, exactly one tuning run), and everything else
  is queued onto a ``ProcessPoolExecutor`` (or thread pool) worker.
* :class:`TuningServer` — a stdlib ``ThreadingHTTPServer`` exposing the
  engine as JSON over HTTP: ``POST /tune``, ``POST /tune/batch``,
  ``GET /status/<job>`` (``?wait=SECONDS`` long-polls until the job
  finishes), ``GET /cache/stats``, ``GET /healthz``, ``GET /kernels``,
  ``GET /history`` (the tuning-history rollup), ``GET /dashboard``
  (the HTML fleet view), ``GET /fleet``, ``POST /shutdown``.

Several servers form a *fleet* (see :mod:`repro.fleet`): a consistent-hash
ring assigns every tuning fingerprint one home server, and a non-home
server either 307-redirects ``/tune`` to the home or proxies it there —
so in-flight dedup (exactly one tuning run for N identical concurrent
submissions) holds across the whole fleet, not just per process.  Worker
scheduling goes through a priority queue: small warm probes overtake giant
cold sweeps instead of queueing FIFO behind them.

Every lifecycle edge (submit, dedup-join, start, cache put, done, error)
emits a structured event through :mod:`repro.telemetry.events`; each
completed job appends one :class:`~repro.telemetry.history.HistoryRecord`
to the service's history store — shipped back from process workers
alongside the metrics delta.

Shutdown is graceful: :meth:`TuningService.drain` rejects new submissions
(503) while every accepted job runs to completion — and, with a file-backed
cache, persists — before the pool stops.  The ``serve`` CLI wires SIGTERM to
exactly that.
"""

from __future__ import annotations

import json
import multiprocessing
import threading
import time
import uuid
from concurrent.futures import CancelledError, Future, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import wait as wait_futures
from functools import partial
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple, Union
from urllib.parse import parse_qs, urlparse

from repro.kernels.registry import available_kernels, get_kernel
from repro.machine.spec import GEFORCE_8800_GTX, GPUSpec
from repro.telemetry import METRICS, summarize_spans
from repro.telemetry.events import emit
from repro.telemetry.history import HistoryRecord, HistoryStore, open_history, rollup
from repro.autotune.cache import TuningCache
from repro.autotune.search import EXECUTORS
from repro.fleet.queue import PriorityExecutor, space_cost_estimate
from repro.fleet.registry import FleetRegistry
from repro.service.dashboard import render_dashboard
from repro.service.protocol import JobRecord, TuneRequest
from repro.service.worker import execute_request

#: service-level metrics (the autotune/compiler layers register their own)
JOBS_TOTAL = METRICS.counter(
    "repro_jobs_total",
    "Tuning jobs reaching a terminal state, by outcome.",
    labels=("outcome",),  # cached | tuned | error
)
JOB_SECONDS = METRICS.histogram(
    "repro_job_seconds",
    "Queue+run wall time of worker-executed jobs (monotonic clock).",
)
HTTP_REQUESTS_TOTAL = METRICS.counter(
    "repro_http_requests_total",
    "HTTP requests served, by method and endpoint (path parameters folded).",
    labels=("method", "endpoint"),
)
FLEET_REDIRECTS_TOTAL = METRICS.counter(
    "repro_fleet_redirects_total",
    "Requests routed to their home server, by routing mode.",
    labels=("mode",),  # redirect | proxy | batch-redirect
)

#: ceiling on one long-poll /status wait — clients loop for longer waits, so
#: a handler thread is never parked longer than this
MAX_STATUS_WAIT_S = 30.0


class ServiceUnavailable(RuntimeError):
    """Raised for submissions that arrive while the server is draining."""


class TuningService:
    """Transport-agnostic tuning engine: dedup, shared cache, worker pool.

    ``executor="process"`` uses spawn-started workers (fork from a process
    already running HTTP handler threads can clone a mid-acquire lock and
    deadlock the child), which carries the standard multiprocessing caveat:
    the embedding program's main module must be importable — true for
    ``python -m repro.service``, pytest, and any real script file with an
    ``if __name__ == "__main__"`` guard, but not for a bare REPL/stdin
    script, where ``executor="thread"`` should be used instead.
    """

    def __init__(
        self,
        cache: Union[TuningCache, str, Path, None] = None,
        executor: str = "process",
        max_workers: int = 2,
        spec: GPUSpec = GEFORCE_8800_GTX,
        max_finished_jobs: int = 1024,
        absorb_limit: Optional[int] = None,
        history: Union[HistoryStore, str, Path, None] = None,
        reuse_artifacts: bool = False,
        fleet: Optional[FleetRegistry] = None,
    ) -> None:
        if executor not in EXECUTORS:
            raise ValueError(f"executor must be one of {EXECUTORS}, got {executor!r}")
        if max_workers < 1:
            raise ValueError(f"max_workers must be positive, got {max_workers!r}")
        if max_finished_jobs < 1:
            raise ValueError(f"max_finished_jobs must be positive, got {max_finished_jobs!r}")
        # absorb_limit bounds the cache facade's in-memory overlay of results
        # absorbed from worker processes, keeping a long-lived server's
        # resident memory flat (evicted entries are re-read from the store).
        # None keeps the cache's own bound (the TuningCache default).
        self.cache = cache if isinstance(cache, TuningCache) else TuningCache(cache)
        if absorb_limit is not None:
            self.cache.set_absorb_limit(absorb_limit)
        # Always have a history store so /dashboard and the history rollup
        # work out of the box; without a path it simply stays in memory.
        # (`or` would be wrong here: an empty store is falsy via __len__.)
        opened = open_history(history)
        self.history = opened if opened is not None else HistoryStore()
        self.executor = executor
        self.max_workers = max_workers
        self.spec = spec
        #: finished job records kept for /status before the oldest are evicted
        self.max_finished_jobs = max_finished_jobs
        #: opt-in cross-request analysis-artifact reuse in the workers
        self.reuse_artifacts = reuse_artifacts
        if executor == "process":
            # Workers spawn lazily, at the first submit — i.e. from a process
            # whose HTTP handler threads are already running.  fork() from a
            # multi-threaded process can clone a mid-acquire lock into the
            # child and deadlock it, so use the spawn start method.
            self._pool: Any = ProcessPoolExecutor(
                max_workers=max_workers,
                mp_context=multiprocessing.get_context("spawn"),
            )
        else:
            self._pool = ThreadPoolExecutor(max_workers=max_workers)
        # The priority front: at most max_workers tasks sit in the pool; the
        # rest queue by (priority class, sweep cost, arrival) so small warm
        # probes overtake giant cold sweeps instead of waiting behind them.
        self._queue = PriorityExecutor(self._pool, max_workers)
        #: this server's fleet view (None: a standalone server, no routing)
        self.fleet = fleet
        # Reentrant: a future that completes before submit() releases the lock
        # runs its done-callback (_finish) synchronously on this thread.
        self._lock = threading.RLock()
        #: signalled (notify_all) every time a job reaches a terminal state —
        #: what long-poll /status waits block on
        self._finished_cond = threading.Condition(self._lock)
        self._jobs: Dict[str, JobRecord] = {}
        self._futures: Dict[str, Future] = {}
        #: fingerprint → job id of the one in-flight job covering it
        self._inflight: Dict[str, str] = {}
        self._draining = False
        self.counters = {
            "submitted": 0,
            "deduplicated": 0,
            "cache_hits": 0,
            "tuning_runs": 0,
            "failed": 0,
        }

    # -- submission --------------------------------------------------------------------
    def submit(self, payload: Mapping[str, Any]) -> Tuple[JobRecord, str]:
        """Accept one request; returns ``(job, outcome)``.

        ``outcome`` is ``"created"`` (a new tuning run was queued),
        ``"deduplicated"`` (attached to an identical in-flight job — no new
        work), ``"cached"`` (answered from the warm cache with zero
        compiles), or ``"error"`` (the worker pool refused the job — e.g. a
        broken process pool).  Raises ``ValueError`` for malformed requests
        and :class:`ServiceUnavailable` while draining.
        """
        request = TuneRequest.from_dict(dict(payload))
        resolved = request.resolve(self.spec)  # fingerprint only — no compile
        key = resolved.fingerprint
        with self._lock:
            if self._draining:
                raise ServiceUnavailable("server is draining; not accepting new requests")
            self.counters["submitted"] += 1
            emit(
                "job.submit",
                kernel=request.kernel,
                fingerprint=key[:16],
                backend=request.backend,
            )

            inflight_id = self._inflight.get(key)
            if inflight_id is not None:
                job = self._jobs[inflight_id]
                job.waiters += 1
                self.counters["deduplicated"] += 1
                emit(
                    "job.dedup",
                    job_id=job.id,
                    kernel=request.kernel,
                    fingerprint=key[:16],
                    waiters=job.waiters,
                )
                return job, "deduplicated"

            stored = self.cache.get(key)
            if stored is not None:
                self.counters["cache_hits"] += 1
                job = JobRecord(
                    id=self._new_job_id(),
                    fingerprint=key,
                    request=request.to_dict(),
                    status="done",
                    from_cache=True,
                    compiles=0,
                    stages={},
                    report=dict(stored),
                )
                job.mark_finished()  # duration_s ~ 0: answered at submission
                JOBS_TOTAL.inc(outcome="cached")
                self._jobs[job.id] = job
                best = stored.get("best") or {}
                baseline = stored.get("baseline") or {}
                self.history.append(
                    HistoryRecord(
                        kernel=stored.get("kernel_name", request.kernel),
                        fingerprint=key,
                        spec_name=stored.get("spec_name", self.spec.name),
                        strategy=stored.get("strategy", request.strategy),
                        backend=stored.get("backend", request.backend),
                        cache_hit=True,
                        winner_ms=float(best.get("time_ms", 0.0)),
                        winner_kind=(best.get("measurement") or {}).get("kind", "model"),
                        baseline_ms=baseline.get("time_ms"),
                        evaluations=0,
                        wall_s=job.duration_s or 0.0,
                        seed=int(stored.get("seed", 0)),
                        source="server",
                        job_id=job.id,
                        variant=(
                            f"{resolved.grid.grid_p}x{resolved.grid.grid_p}"
                            f":{resolved.grid.name}"
                            if resolved.grid is not None
                            else ""
                        ),
                    )
                )
                emit(
                    "job.cached",
                    job_id=job.id,
                    kernel=request.kernel,
                    fingerprint=key[:16],
                )
                self._evict_finished_locked()
                return job, "cached"

            job = JobRecord(id=self._new_job_id(), fingerprint=key, request=request.to_dict())
            self._jobs[job.id] = job
            self._inflight[key] = job.id
            # Workers (thread or process) open their own cache instance from
            # the store URI: a fresh open can pick up entries a *different*
            # server sharing the store persisted since our pre-check, their
            # counters stay off this instance's books (one counted lookup per
            # request — the submit-time get above), and _finish absorbs the
            # result back into memory either way.  The URI round-trips every
            # backend (plain .json path, dir: sharded store, log: append log).
            cache_path = self.cache.uri
            task = partial(
                execute_request,
                job.request,
                cache_path=cache_path,
                spec=self.spec,
                job_id=job.id,
                reuse_artifacts=self.reuse_artifacts,
            )
            try:
                future = self._queue.submit(
                    task,
                    priority=request.priority,
                    cost=space_cost_estimate(resolved.space_options),
                )
            except Exception as error:  # e.g. BrokenProcessPool after a worker died
                # Roll back the in-flight registration: the fingerprint must
                # not stay wedged on a job that will never get a future.
                self._inflight.pop(key, None)
                job.error = f"{type(error).__name__}: {error}"
                job.status = "error"
                job.mark_finished()
                JOBS_TOTAL.inc(outcome="error")
                if job.duration_s is not None:
                    JOB_SECONDS.observe(job.duration_s)
                self.counters["failed"] += 1
                emit(
                    "job.error",
                    level="error",
                    job_id=job.id,
                    kernel=request.kernel,
                    error=job.error,
                )
                self._evict_finished_locked()
                return job, "error"
            self._futures[job.id] = future
            future.add_done_callback(partial(self._finish, job.id))
            emit(
                "job.start",
                job_id=job.id,
                kernel=request.kernel,
                fingerprint=key[:16],
            )
            return job, "created"

    def submit_batch(
        self, payloads: Iterable[Mapping[str, Any]]
    ) -> List[Tuple[Optional[JobRecord], str, Optional[str]]]:
        """Accept many requests; per item ``(job, outcome, error)``.

        Items are independent — one malformed request yields an ``invalid``
        outcome for that slot (``job`` ``None``, ``error`` the message) and
        never poisons its neighbours.  Everything lands on the priority
        queue, so within the batch small probes still run before big sweeps.
        """
        results: List[Tuple[Optional[JobRecord], str, Optional[str]]] = []
        for payload in payloads:
            try:
                job, outcome = self.submit(payload)
                results.append((job, outcome, None))
            except ServiceUnavailable:
                raise  # draining rejects the whole batch: nothing partial
            except (ValueError, TypeError) as error:
                results.append((None, "invalid", str(error)))
        return results

    def fingerprint_of(self, payload: Mapping[str, Any]) -> str:
        """The fingerprint a payload would tune under — no submission.

        What fleet routing keys off: cheap (no compile), and raising the
        same ``ValueError`` a submission would, so a non-home server still
        400s malformed requests instead of bouncing them around the ring.
        """
        request = TuneRequest.from_dict(dict(payload))
        return request.resolve(self.spec).fingerprint

    def wait_for_job(
        self, job_id: str, timeout: float
    ) -> Optional[Dict[str, Any]]:
        """Long-poll: the job's snapshot once finished, or at ``timeout``.

        ``None`` for an unknown job.  Parked on a condition the finish path
        signals — zero polling; an evicted-while-waiting job returns
        ``None`` and the client falls back to its recovery path.
        """
        deadline = time.monotonic() + max(0.0, timeout)
        with self._finished_cond:
            while True:
                job = self._jobs.get(job_id)
                if job is None:
                    return None
                if job.finished:
                    break
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._finished_cond.wait(remaining)
            return self.job_payload(job_id)

    def _new_job_id(self) -> str:
        return uuid.uuid4().hex[:12]

    def _evict_finished_locked(self) -> None:
        """Bound memory on a long-lived server: drop the oldest finished jobs.

        Caller holds the lock.  In-flight jobs are never evicted; dict order
        is insertion order, so the survivors are the newest records.
        """
        finished = [job_id for job_id, job in self._jobs.items() if job.finished]
        excess = len(finished) - self.max_finished_jobs
        for job_id in finished[:max(excess, 0)]:
            del self._jobs[job_id]

    def _finish(self, job_id: str, future: Future) -> None:
        with self._lock:
            job = self._jobs[job_id]
            self._inflight.pop(job.fingerprint, None)
            self._futures.pop(job_id, None)
            job.mark_finished()
            try:
                outcome = future.result()
            except (Exception, CancelledError) as error:
                # worker died, unpicklable state, or drained with a hard timeout
                job.error = f"{type(error).__name__}: {error}"
                job.status = "error"
                JOBS_TOTAL.inc(outcome="error")
                # Failed jobs burn queue+run wall time too; leaving them out
                # of the latency histogram would make a flapping fleet look
                # *faster* the more its jobs die.
                if job.duration_s is not None:
                    JOB_SECONDS.observe(job.duration_s)
                self.counters["failed"] += 1
                emit("job.error", level="error", job_id=job.id, error=job.error)
                self._evict_finished_locked()
                self._finished_cond.notify_all()
                return
            # Populate the result fields before flipping status: "done" is the
            # publication point status readers key off.
            job.report = outcome["report"]
            job.compiles = outcome["compiles"]
            job.stages = outcome.get("stages")
            job.from_cache = outcome["from_cache"]
            job.trace = outcome.get("trace")
            if job.trace:
                job.span_summary = summarize_spans(job.trace)
            job.status = "done"
            JOBS_TOTAL.inc(outcome="cached" if outcome["from_cache"] else "tuned")
            if job.duration_s is not None:
                JOB_SECONDS.observe(job.duration_s)
            # A process worker's registry bumps happened in its own process;
            # absorb its shipped delta so /metrics reflects the whole fleet.
            # Thread workers share *this* registry — absorbing their delta
            # would double-count every sample.
            if self.executor == "process" and outcome.get("metrics"):
                METRICS.absorb(outcome["metrics"])
            if outcome["from_cache"]:
                self.counters["cache_hits"] += 1
            else:
                self.counters["tuning_runs"] += 1
            # A process worker persisted through its own TuningCache instance;
            # absorb keeps this instance's warm-hit path and stats() current
            # without a redundant read-merge-write.
            self.cache.absorb(job.fingerprint, outcome["report"])
            emit(
                "cache.put",
                level="debug",
                job_id=job.id,
                fingerprint=job.fingerprint[:16],
            )
            # The worker shipped its history record like the metrics delta;
            # the server owns the store, so this is the single append per job
            # whichever executor ran it.
            history_payload = outcome.get("history")
            if history_payload is not None:
                record = HistoryRecord.from_dict(history_payload)
                record.job_id = job.id
                job.trace_id = record.trace_id
                self.history.append(record)
            emit(
                "job.done",
                job_id=job.id,
                from_cache=outcome["from_cache"],
                duration_s=round(job.duration_s, 3) if job.duration_s else 0.0,
                trace_id=job.trace_id,
            )
            self._evict_finished_locked()
            self._finished_cond.notify_all()

    # -- inspection --------------------------------------------------------------------
    def job(self, job_id: str) -> Optional[JobRecord]:
        with self._lock:
            job = self._jobs.get(job_id)
            if job is not None and not job.finished:
                future = self._futures.get(job_id)
                job.status = "running" if future is not None and future.running() else "queued"
            return job

    def job_payload(self, job_id: str) -> Optional[Dict[str, Any]]:
        """A consistent ``/status`` snapshot, built while holding the lock.

        Handler threads must not serialise a live :class:`JobRecord` outside
        the lock — a job finishing concurrently could be observed half-updated.
        """
        with self._lock:
            job = self.job(job_id)
            return None if job is None else job.to_dict()

    def job_counts(self) -> Dict[str, int]:
        counts = {"queued": 0, "running": 0, "done": 0, "error": 0}
        with self._lock:
            running = {
                job_id for job_id, future in self._futures.items() if future.running()
            }
            for job in self._jobs.values():
                if job.finished:
                    counts[job.status] += 1
                elif job.id in running:
                    counts["running"] += 1
                else:
                    counts["queued"] += 1
        return counts

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    def stats(self) -> Dict[str, Any]:
        """The ``/cache/stats`` payload: cache, server counters, job counts.

        The ``cache`` section carries the persistence backend's identity and
        gauges (``backend``, ``entries``, ``bytes``, plus e.g. ``shards`` for
        the sharded store or ``segments``/``compactions`` for the append
        log) alongside this instance's hit/miss counters — see
        :data:`repro.service.protocol.CACHE_STATS_COMMON_FIELDS`.
        """
        with self._lock:
            counters = dict(self.counters)
        return {
            "cache": self.cache.stats(),
            "server": counters,
            "jobs": self.job_counts(),
            "queue": self._queue.queue_depths(),
        }

    def health(self) -> Dict[str, Any]:
        payload = {
            "status": "draining" if self.draining else "ok",
            "executor": self.executor,
            "workers": self.max_workers,
            "cache_path": self.cache.uri,
            "cache_backend": self.cache.backend,
            "history_path": self.history.uri,
            "jobs": self.job_counts(),
        }
        if self.fleet is not None:
            payload["fleet"] = self.fleet.describe()
        return payload

    def jobs_snapshot(self) -> list:
        """Lightweight (report-free) snapshots of every retained job."""
        with self._lock:
            return [job.to_dict(include_report=False) for job in self._jobs.values()]

    def history_rollup(self) -> Dict[str, Any]:
        """The ``GET /history`` payload: store stats + per-group rollup."""
        records = self.history.records()
        return {"history": self.history.stats(), "rollup": rollup(records)}

    def dashboard_html(self) -> str:
        """The ``GET /dashboard`` page."""
        return render_dashboard(
            self.health(), self.stats(), self.jobs_snapshot(), self.history.records()
        )

    # -- lifecycle ---------------------------------------------------------------------
    def drain(self, timeout: Optional[float] = None) -> None:
        """Stop accepting work and wait until every accepted job finished.

        Queued-but-unstarted jobs still run: the pool keeps consuming its
        queue until :meth:`Executor.shutdown` completes, so every job a client
        was promised a report for produces one (and, with a file-backed cache,
        persists it) before this method returns.  With a ``timeout``, jobs
        still unfinished when it expires are cancelled (their records flip to
        ``error``) so shutdown time stays bounded; already-running work on a
        process pool finishes its current task regardless.
        """
        with self._lock:
            self._draining = True
            pending = list(self._futures.values())
        unfinished = wait_futures(pending, timeout=timeout).not_done if pending else set()
        # Shut down through the priority front so still-queued (undispatched)
        # tasks are cancelled or flushed consistently with the pool.
        if unfinished:
            self._queue.shutdown(wait=False, cancel_futures=True)
        else:
            self._queue.shutdown(wait=True)


class TuningRequestHandler(BaseHTTPRequestHandler):
    """Routes the JSON-over-HTTP API onto a :class:`TuningService`."""

    server_version = "repro-tuning-server/1.0"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> TuningService:
        return self.server.service  # type: ignore[attr-defined]

    def _send_json(self, code: int, payload: Mapping[str, Any]) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, code: int, text: str, content_type: str) -> None:
        body = text.encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _count_request(self, method: str, path: str) -> None:
        # fold path parameters so the label space stays bounded: every
        # /status/<job> is one endpoint, and unknown paths are one bucket
        known = (
            "/tune",
            "/tune/batch",
            "/shutdown",
            "/metrics",
            "/healthz",
            "/cache/stats",
            "/kernels",
            "/dashboard",
            "/history",
            "/fleet",
        )
        if path.startswith("/status/"):
            endpoint = "/status"
        elif path in known:
            endpoint = path
        else:
            endpoint = "other"
        HTTP_REQUESTS_TOTAL.inc(method=method, endpoint=endpoint)

    def _drain_body(self) -> bytes:
        """Read the request body unconditionally.

        Under HTTP/1.1 keep-alive an unread body would be parsed as the next
        request line on the same connection, so every POST path must drain it
        — including 404s and /shutdown, which ignore the content.
        """
        length = int(self.headers.get("Content-Length") or 0)
        return self.rfile.read(length) if length else b""

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = urlparse(self.path).path
        self._count_request("GET", path)
        if path == "/metrics":
            # Prometheus text exposition format 0.0.4 — `curl`-able and
            # scrapeable; everything else on this server speaks JSON.
            self._send_text(
                200, METRICS.render(), "text/plain; version=0.0.4; charset=utf-8"
            )
        elif path == "/healthz":
            self._send_json(200, self.service.health())
        elif path == "/cache/stats":
            self._send_json(200, self.service.stats())
        elif path == "/kernels":
            kernels = [get_kernel(name).describe() for name in available_kernels()]
            self._send_json(200, {"kernels": kernels})
        elif path == "/dashboard":
            self._send_text(
                200, self.service.dashboard_html(), "text/html; charset=utf-8"
            )
        elif path == "/history":
            self._send_json(200, self.service.history_rollup())
        elif path == "/fleet":
            fleet = self.service.fleet
            if fleet is None:
                self._send_json(200, {"fleet": None, "queue": self.service._queue.queue_depths()})
            else:
                self._send_json(
                    200,
                    {
                        "fleet": fleet.describe(),
                        "queue": self.service._queue.queue_depths(),
                    },
                )
        elif path.startswith("/status/"):
            job_id = path[len("/status/"):]
            wait_s = self._wait_seconds()
            if wait_s is None:
                self._send_json(400, {"error": "wait must be a non-negative number"})
                return
            if wait_s > 0:
                payload = self.service.wait_for_job(
                    job_id, min(wait_s, MAX_STATUS_WAIT_S)
                )
            else:
                payload = self.service.job_payload(job_id)
            if payload is None:
                self._send_json(404, {"error": "unknown job"})
            else:
                self._send_json(200, payload)
        else:
            self._send_json(404, {"error": f"unknown endpoint {path!r}"})

    def _wait_seconds(self) -> Optional[float]:
        """The ``?wait=SECONDS`` long-poll parameter (0 when absent).

        ``None`` signals a malformed value — the caller answers 400.
        """
        query = parse_qs(urlparse(self.path).query)
        raw = query.get("wait", ["0"])[-1]
        try:
            wait_s = float(raw)
        except ValueError:
            return None
        return wait_s if wait_s >= 0 else None

    def _route_home(self, payload: Mapping[str, Any]) -> Optional[str]:
        """Fleet routing for one /tune payload.

        ``None``: handle locally (standalone server, or this node is the
        fingerprint's home).  Otherwise the response has been sent — a 307
        pointing at the home (redirect mode) or the home's relayed answer
        (proxy mode) — and the caller must stop.
        """
        fleet = self.service.fleet
        if fleet is None:
            return None
        fingerprint = self.service.fingerprint_of(payload)  # ValueError → 400
        home = fleet.home(fingerprint)
        if home == fleet.node_id:
            return None
        if fleet.mode == "redirect":
            FLEET_REDIRECTS_TOTAL.inc(mode="redirect")
            location = home + "/tune"
            body = json.dumps(
                {"redirect": location, "node": home, "fingerprint": fingerprint}
            ).encode("utf-8")
            # 307 preserves method+body, so the client re-POSTs verbatim.
            self.send_response(307)
            self.send_header("Location", location)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        else:  # proxy
            FLEET_REDIRECTS_TOTAL.inc(mode="proxy")
            status, relayed = fleet.forward_tune(home, payload)
            if isinstance(relayed, dict):
                relayed.setdefault("node", home)
            self._send_json(status, relayed)
        return home

    def _tune_response(self, job: JobRecord, outcome: str) -> Dict[str, Any]:
        response: Dict[str, Any] = {
            "job": job.id,
            "fingerprint": job.fingerprint,
            "status": job.status,
            "outcome": outcome,
        }
        if self.service.fleet is not None:
            response["node"] = self.service.fleet.node_id
        # A job finished at submission (warm hit) carries its full state
        # inline, so the client needs no /status round trip — and cannot
        # lose the answer to finished-job eviction in between.
        if job.finished:
            response["job_state"] = self.service.job_payload(job.id)
        return response

    def _batch_item(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """One /tune/batch slot: routed, submitted, or per-item error.

        Batch items are never answered with 307 — a multi-status redirect
        cannot be expressed in one response — so in redirect mode a non-home
        item comes back as outcome ``redirected`` with the home's URL for the
        client to resubmit; in proxy mode it is forwarded transparently.
        """
        fleet = self.service.fleet
        try:
            if fleet is not None:
                fingerprint = self.service.fingerprint_of(payload)
                home = fleet.home(fingerprint)
                if home != fleet.node_id:
                    if fleet.mode == "redirect":
                        FLEET_REDIRECTS_TOTAL.inc(mode="batch-redirect")
                        return {
                            "outcome": "redirected",
                            "node": home,
                            "redirect": home + "/tune",
                            "fingerprint": fingerprint,
                        }
                    FLEET_REDIRECTS_TOTAL.inc(mode="proxy")
                    status, relayed = fleet.forward_tune(home, payload)
                    if isinstance(relayed, dict):
                        relayed.setdefault("node", home)
                        if status >= 400:
                            relayed.setdefault("outcome", "error")
                        return relayed
                    return {"outcome": "error", "error": f"peer returned {status}"}
            job, outcome = self.service.submit(payload)
        except ServiceUnavailable:
            raise  # 503s the whole batch
        except (ValueError, TypeError) as error:
            return {"outcome": "invalid", "error": str(error)}
        return self._tune_response(job, outcome)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        path = urlparse(self.path).path
        self._count_request("POST", path)
        raw = self._drain_body()
        if path == "/tune":
            try:
                payload = json.loads(raw.decode("utf-8")) if raw else {}
            except (ValueError, UnicodeDecodeError) as error:
                self._send_json(400, {"error": f"invalid JSON body: {error}"})
                return
            if not isinstance(payload, dict):
                self._send_json(400, {"error": "request body must be a JSON object"})
                return
            try:
                if self._route_home(payload) is not None:
                    return  # routed to its home server; response already sent
                job, outcome = self.service.submit(payload)
            except ServiceUnavailable as error:
                self._send_json(503, {"error": str(error)})
                return
            except (ValueError, TypeError) as error:
                self._send_json(400, {"error": str(error)})
                return
            response = self._tune_response(job, outcome)
            self._send_json(200, response)
        elif path == "/tune/batch":
            try:
                payload = json.loads(raw.decode("utf-8")) if raw else {}
            except (ValueError, UnicodeDecodeError) as error:
                self._send_json(400, {"error": f"invalid JSON body: {error}"})
                return
            requests = payload.get("requests") if isinstance(payload, dict) else None
            if not isinstance(requests, list) or not all(
                isinstance(item, dict) for item in requests
            ):
                self._send_json(
                    400,
                    {"error": "body must be {\"requests\": [<TuneRequest>, ...]}"},
                )
                return
            try:
                jobs = [self._batch_item(item) for item in requests]
            except ServiceUnavailable as error:
                self._send_json(503, {"error": str(error)})
                return
            self._send_json(200, {"jobs": jobs})
        elif path == "/shutdown":
            # Only loopback peers may stop the server: anyone who can reach a
            # --host 0.0.0.0 deployment must not be able to deny service.
            if self.client_address[0] not in ("127.0.0.1", "::1"):
                self._send_json(403, {"error": "shutdown is restricted to loopback clients"})
                return
            self._send_json(200, {"status": "draining"})
            threading.Thread(
                target=self.server.tuning_server.stop,  # type: ignore[attr-defined]
                daemon=True,
            ).start()
        else:
            self._send_json(404, {"error": f"unknown endpoint {path!r}"})

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # keep the server quiet; the CLI prints lifecycle events


class TuningServer:
    """A :class:`TuningService` bound to an HTTP address.

    ``port=0`` binds an ephemeral port; the actual address is available as
    :attr:`url` immediately after construction.  Use :meth:`serve_forever` in
    the foreground (the CLI) or :meth:`start` for a background thread (tests,
    examples), and :meth:`stop` for a graceful drain-then-shutdown.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8037,
        cache: Union[TuningCache, str, Path, None] = None,
        executor: str = "process",
        max_workers: int = 2,
        spec: GPUSpec = GEFORCE_8800_GTX,
        absorb_limit: Optional[int] = None,
        history: Union[HistoryStore, str, Path, None] = None,
        reuse_artifacts: bool = False,
        peers: Iterable[str] = (),
        fleet_mode: str = "redirect",
        advertise_url: Optional[str] = None,
    ) -> None:
        self.service = TuningService(
            cache=cache,
            executor=executor,
            max_workers=max_workers,
            spec=spec,
            absorb_limit=absorb_limit,
            history=history,
            reuse_artifacts=reuse_artifacts,
        )
        self._httpd = ThreadingHTTPServer((host, port), TuningRequestHandler)
        self._httpd.daemon_threads = True
        self._httpd.service = self.service  # type: ignore[attr-defined]
        self._httpd.tuning_server = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None
        self._stopped = threading.Event()
        # Fleet membership needs the *bound* address (port may have been 0),
        # so the registry is built after the socket exists.
        if list(peers):
            self.configure_fleet(peers, mode=fleet_mode, advertise_url=advertise_url)

    def configure_fleet(
        self,
        peers: Iterable[str],
        mode: str = "redirect",
        advertise_url: Optional[str] = None,
    ) -> FleetRegistry:
        """Join (or re-form) a fleet; returns the new registry.

        ``advertise_url`` is the URL *peers* reach this server under —
        required when binding 0.0.0.0 or behind a proxy; defaults to the
        bound address.  Callable after ``start()`` too: tests boot two
        ephemeral-port servers first and introduce them to each other next.
        """
        registry = FleetRegistry(advertise_url or self.url, peers, mode=mode)
        self.service.fleet = registry
        return registry

    @property
    def address(self) -> Tuple[str, int]:
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def serve_forever(self) -> None:
        self._httpd.serve_forever()

    def start(self) -> "TuningServer":
        """Serve on a daemon thread; returns self for chaining."""
        self._thread = threading.Thread(target=self.serve_forever, daemon=True)
        self._thread.start()
        return self

    def stop(self, drain_timeout: Optional[float] = None) -> None:
        """Graceful shutdown: drain every accepted job, then stop serving."""
        if self._stopped.is_set():
            return
        self._stopped.set()
        self.service.drain(timeout=drain_timeout)
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
