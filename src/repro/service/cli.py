"""Command-line entry point: ``python -m repro.service``.

Run a tuning server (drains gracefully on SIGTERM/SIGINT)::

    python -m repro.service serve --port 8037 --workers 4 \\
        --cache /tmp/tuning-cache.json

Submit a request (``--wait`` blocks and prints the report) and shut down::

    python -m repro.service submit matmul --size m=256 n=256 k=256 \\
        --url http://127.0.0.1:8037 --wait
    python -m repro.service stats --url http://127.0.0.1:8037
    python -m repro.service shutdown --url http://127.0.0.1:8037

Watch a running fleet (curses-free; polls /healthz + /cache/stats +
/metrics)::

    python -m repro.service top --url http://127.0.0.1:8037 --interval 2

Run several servers as a fleet (a consistent-hash ring homes every tuning
fingerprint on exactly one member) and inspect the ring::

    python -m repro.service serve --port 8037 \\
        --peers http://127.0.0.1:8038 --fleet-mode redirect
    python -m repro.service fleet --url http://127.0.0.1:8037
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading
import time
from typing import Dict, Optional, Sequence

from repro.telemetry import iter_spans, parse_prometheus_text, save_trace
from repro.telemetry.events import LEVELS, configure as configure_events, emit
from repro.autotune.cli import parse_sizes
from repro.autotune.search import EXECUTORS, STRATEGIES
from repro.autotune.session import TuningReport
from repro.fleet import FLEET_MODES
from repro.fleet.queue import PRIORITY_CLASSES
from repro.service.client import ServiceError, TuningClient
from repro.service.protocol import TuneRequest, format_stage_counts, ordered_cache_stats
from repro.service.server import TuningServer

DEFAULT_URL = "http://127.0.0.1:8037"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Long-lived tuning server with a shared cache and "
        "in-flight request deduplication.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    serve = commands.add_parser("serve", help="run a tuning server")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8037, help="0 picks a free port")
    serve.add_argument(
        "--workers", type=int, default=2, help="tuning worker pool size"
    )
    serve.add_argument(
        "--executor",
        default="process",
        choices=EXECUTORS,
        help="worker kind (process escapes the GIL; default: process)",
    )
    serve.add_argument(
        "--cache",
        default=".repro-service-cache.json",
        metavar="STORE",
        help="shared persistent cache store: PATH.json (legacy single file), "
        "dir:DIR (sharded, O(1) puts), or log:FILE (append-only log) "
        "(default: .repro-service-cache.json)",
    )
    serve.add_argument(
        "--absorb-limit",
        type=int,
        default=None,
        help="LRU bound on the in-memory overlay of worker results the "
        "server keeps on top of the store (default: the cache's own bound; "
        "evicted entries are re-read from the store)",
    )
    serve.add_argument(
        "--history",
        default=None,
        metavar="STORE",
        help="persistent tuning-history JSONL file (one HistoryRecord per "
        "completed request; default: in-memory only — /dashboard still "
        "works, but history is lost on restart)",
    )
    serve.add_argument(
        "--reuse-artifacts",
        action="store_true",
        help="share config-invariant compiler artifacts (affine analysis) "
        "across requests with the same program, binding and spec — repeat "
        "requests run analysis zero times (per worker process)",
    )
    serve.add_argument(
        "--peers",
        nargs="*",
        default=[],
        metavar="URL",
        help="other fleet members' base URLs; with at least one peer the "
        "server joins a consistent-hash ring and routes each tuning "
        "fingerprint to its home member",
    )
    serve.add_argument(
        "--fleet-mode",
        default="redirect",
        choices=sorted(FLEET_MODES),
        help="how a non-home server answers /tune: redirect (307 to the "
        "home; default) or proxy (forward and relay the home's answer)",
    )
    serve.add_argument(
        "--advertise-url",
        default=None,
        metavar="URL",
        help="the base URL peers should use to reach this server "
        "(default: http://HOST:PORT from --host/--port)",
    )
    serve.add_argument(
        "--log-json",
        action="store_true",
        help="emit lifecycle events as one JSON object per line instead of "
        "human-readable text",
    )
    serve.add_argument(
        "--log-level",
        default="info",
        choices=sorted(LEVELS, key=LEVELS.get),
        help="event-log threshold (debug narrates every compiler stage and "
        "measurement; default: info)",
    )

    submit = commands.add_parser("submit", help="submit one tuning request")
    submit.add_argument("kernel", help="registered kernel name")
    submit.add_argument("--url", default=DEFAULT_URL)
    submit.add_argument(
        "--size", nargs="*", default=[], metavar="NAME=VALUE",
        help="problem-size overrides, e.g. --size m=256 n=256 k=256",
    )
    submit.add_argument("--strategy", default="pruned", choices=sorted(STRATEGIES))
    submit.add_argument(
        "--backend",
        default="model:",
        metavar="URI",
        help="evaluation backend: model: (default), measure-py:[warmup=..,repeat=..], "
        "measure-c:[cc=..], or hybrid:model>measure-py?top=K",
    )
    submit.add_argument("--seed", type=int, default=0)
    submit.add_argument(
        "--priority",
        default="normal",
        choices=PRIORITY_CLASSES,
        help="queue class behind the worker pool: high jumps the queue, "
        "low yields to everything else (default: normal)",
    )
    submit.add_argument(
        "--eval-workers", type=int, default=1,
        help="parallel evaluation fan-out inside the worker",
    )
    submit.add_argument(
        "--check", action="store_true",
        help="spot-check configurations through the interpreter",
    )
    submit.add_argument(
        "--threads", type=int, nargs="*", default=None,
        help="thread-per-block counts to explore",
    )
    submit.add_argument(
        "--blocks", type=int, nargs="*", default=None,
        help="thread-block counts to explore",
    )
    submit.add_argument(
        "--wait", action="store_true", help="block until the report is ready"
    )
    submit.add_argument(
        "--timeout", type=float, default=600.0, help="--wait timeout in seconds"
    )
    submit.add_argument(
        "--trace", metavar="FILE", default=None,
        help="collect a span trace of the tuning run and save it to FILE "
        "(implies --wait; inspect with 'python -m repro.autotune trace FILE')",
    )

    status = commands.add_parser("status", help="query one job")
    status.add_argument("job", help="job id returned by submit")
    status.add_argument("--url", default=DEFAULT_URL)

    stats = commands.add_parser("stats", help="cache and server statistics")
    stats.add_argument("--url", default=DEFAULT_URL)

    shutdown = commands.add_parser("shutdown", help="drain and stop a server")
    shutdown.add_argument("--url", default=DEFAULT_URL)

    fleet = commands.add_parser(
        "fleet", help="show a server's ring membership and queue depths"
    )
    fleet.add_argument("--url", default=DEFAULT_URL)

    top = commands.add_parser(
        "top", help="curses-free live terminal view of a running server"
    )
    top.add_argument("--url", default=DEFAULT_URL)
    top.add_argument(
        "--interval", type=float, default=2.0, help="refresh period in seconds"
    )
    top.add_argument(
        "--iterations",
        type=int,
        default=0,
        help="number of refreshes before exiting (0 = until interrupted; "
        "1 prints a single snapshot without clearing the screen)",
    )

    return parser


def _serve(args: argparse.Namespace) -> int:
    # Route the process-wide event log (the library default is a quiet
    # warning threshold) to stdout for the server's lifetime: every
    # lifecycle edge the engine emits becomes a log line here.
    configure_events(
        json_mode=args.log_json, level=args.log_level, stream=sys.stdout
    )
    server = TuningServer(
        host=args.host,
        port=args.port,
        cache=args.cache,
        executor=args.executor,
        max_workers=args.workers,
        absorb_limit=args.absorb_limit,
        history=args.history,
        reuse_artifacts=args.reuse_artifacts,
        peers=args.peers,
        fleet_mode=args.fleet_mode,
        advertise_url=args.advertise_url,
    )

    def handle_signal(signum: int, _frame: Optional[object]) -> None:
        name = signal.Signals(signum).name
        emit("server.signal", msg=f"received {name}: draining in-flight jobs...")
        threading.Thread(target=server.stop, daemon=True).start()

    signal.signal(signal.SIGTERM, handle_signal)
    signal.signal(signal.SIGINT, handle_signal)

    emit(
        "server.listening",
        msg=f"repro tuning server listening on {server.url} "
        f"(executor={args.executor}, workers={args.workers}, "
        f"cache={args.cache}, history={args.history or 'memory'}"
        + (f", fleet={1 + len(args.peers)} members" if args.peers else "")
        + ")",
    )
    server.serve_forever()
    emit("server.stopped", msg="server drained and stopped")
    return 0


def _submit(args: argparse.Namespace) -> int:
    space: Dict[str, object] = {}
    if args.threads:
        space["thread_counts"] = list(args.threads)
    if args.blocks:
        space["block_counts"] = list(args.blocks)
    request = TuneRequest(
        kernel=args.kernel,
        sizes=parse_sizes(args.size),
        strategy=args.strategy,
        seed=args.seed,
        eval_workers=args.eval_workers,
        check_correctness=args.check,
        space=space or None,
        backend=args.backend,
        trace=args.trace is not None,
        priority=args.priority,
    )
    client = TuningClient(args.url)
    pending = client.submit(request)
    print(f"job: {pending.job_id}")
    print(f"fingerprint: {pending.fingerprint}")
    print(f"outcome: {pending.outcome}")
    if pending.outcome == "error":
        job = pending.status()
        print(f"error: {job.get('error') or 'submission failed'}", file=sys.stderr)
        return 1
    if not (args.wait or args.trace):
        return 0
    job = pending.job(timeout=args.timeout)
    if job["status"] == "error":
        print(f"error: {job['error']}", file=sys.stderr)
        return 1
    report = TuningReport.from_dict(job["report"], from_cache=bool(job["from_cache"]))
    print(report.summary())
    print(f"backend: {report.backend} (best measured as: {report.best.measurement_kind})")
    print(f"from-cache: {'true' if job['from_cache'] else 'false'}")
    print(f"compiles: {job['compiles']}")
    if job.get("stages"):
        print(f"stages: {format_stage_counts(job['stages'])}")
    if job.get("duration_s") is not None:
        print(f"duration: {job['duration_s']:.3f}s")
    if args.trace:
        spans = job.get("trace")
        if spans:
            save_trace(
                args.trace,
                spans,
                meta={"job": job["job"], "fingerprint": job["fingerprint"]},
            )
            print(f"trace: {len(list(iter_spans(spans)))} spans -> {args.trace}")
        else:
            # e.g. a warm cache hit answered at submission — no worker ran
            print("trace: no spans recorded (answered from cache?)", file=sys.stderr)
    return 0


def _status(args: argparse.Namespace) -> int:
    job = TuningClient(args.url).status(args.job)
    print(f"job: {job['job']}")
    print(f"status: {job['status']}")
    print(f"from-cache: {'true' if job['from_cache'] else 'false'}")
    if job["compiles"] is not None:
        print(f"compiles: {job['compiles']}")
    if job.get("stages"):
        print(f"stages: {format_stage_counts(job['stages'])}")
    if job.get("duration_s") is not None:
        print(f"duration: {job['duration_s']:.3f}s")
    if job.get("span_summary"):
        parts = " ".join(
            f"{kind}={entry['spans']}/{entry['total_ms']:.0f}ms"
            for kind, entry in sorted(job["span_summary"].items())
        )
        print(f"spans: {parts}")
    if job["error"]:
        print(f"error: {job['error']}")
    return 0


def _stats(args: argparse.Namespace) -> int:
    stats = TuningClient(args.url).cache_stats()
    print("cache:")
    # common fields first, then the backend's own gauges (shards, segments,
    # compactions, tombstones, ...) in a stable order
    for key, value in ordered_cache_stats(stats["cache"]):
        print(f"  {key}: {value}")
    for section in ("server", "jobs"):
        print(f"{section}:")
        for key, value in stats[section].items():
            print(f"  {key}: {value}")
    return 0


def _fleet(args: argparse.Namespace) -> int:
    payload = TuningClient(args.url).fleet()
    fleet = payload.get("fleet")
    if not fleet:
        print("fleet: not configured (single server)")
    else:
        print(f"node: {fleet['node']}")
        print(f"mode: {fleet['mode']}")
        print(f"members: {fleet['size']}")
        for member in fleet.get("members", ()):
            marker = "  * " if member == fleet["node"] else "    "
            print(f"{marker}{member}")
    queue = payload.get("queue") or {}
    if queue:
        depths = "  ".join(f"{label}={depth}" for label, depth in queue.items())
        print(f"queued: {depths}")
    return 0


def _shutdown(args: argparse.Namespace) -> int:
    response = TuningClient(args.url).shutdown()
    print(f"status: {response['status']}")
    return 0


def _metric_total(
    samples: Dict[str, Dict[tuple, float]], name: str, **labels: str
) -> float:
    """Sum a parsed metric's samples matching the given label subset."""
    wanted = set(labels.items())
    return sum(
        value
        for key, value in samples.get(name, {}).items()
        if wanted <= set(key)
    )


def _render_top(client: TuningClient) -> str:
    """One frame of the ``top`` view (health + jobs + cache + key metrics)."""
    health = client.healthz()
    stats = client.cache_stats()
    samples = parse_prometheus_text(client.metrics())
    jobs = health.get("jobs", {})
    cache = stats.get("cache", {})
    server = stats.get("server", {})
    lines = [
        f"repro tuning fleet @ {client.url}   {time.strftime('%H:%M:%S')}",
        f"status: {health.get('status', '?')}  "
        f"executor: {health.get('executor', '?')}x{health.get('workers', '?')}  "
        f"history: {health.get('history_path') or 'memory'}",
        "",
        "jobs      "
        + "  ".join(f"{state}={jobs.get(state, 0)}" for state in
                    ("queued", "running", "done", "error")),
        "outcomes  "
        + "  ".join(
            f"{outcome}={_metric_total(samples, 'repro_jobs_total', outcome=outcome):.0f}"
            for outcome in ("cached", "tuned", "error")
        ),
        f"requests  submitted={server.get('submitted', 0)}  "
        f"deduplicated={server.get('deduplicated', 0)}  "
        f"cache_hits={server.get('cache_hits', 0)}  "
        f"tuning_runs={server.get('tuning_runs', 0)}",
        f"cache     backend={cache.get('backend', '?')}  "
        f"entries={cache.get('entries', 0)}  bytes={cache.get('bytes', 0)}",
        f"history   records={_metric_total(samples, 'repro_history_records_total'):.0f}  "
        f"http_requests={_metric_total(samples, 'repro_http_requests_total'):.0f}",
    ]
    return "\n".join(lines)


def _top(args: argparse.Namespace) -> int:
    """Poll ``/healthz`` + ``/cache/stats`` + ``/metrics`` on a cadence."""
    client = TuningClient(args.url)
    iteration = 0
    single_shot = args.iterations == 1
    while True:
        frame = _render_top(client)
        if single_shot:
            print(frame, flush=True)
        else:
            # ANSI clear+home: a live view without curses
            print(f"\x1b[2J\x1b[H{frame}", flush=True)
        iteration += 1
        if args.iterations and iteration >= args.iterations:
            return 0
        try:
            time.sleep(args.interval)
        except KeyboardInterrupt:
            return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "serve": _serve,
        "submit": _submit,
        "status": _status,
        "stats": _stats,
        "shutdown": _shutdown,
        "fleet": _fleet,
        "top": _top,
    }
    try:
        return handlers[args.command](args)
    except (ServiceError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
