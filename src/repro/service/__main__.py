"""``python -m repro.service`` — see :mod:`repro.service.cli`."""

from repro.service.cli import main

# The guard is load-bearing: the server's spawn-based worker processes
# re-import the parent's main module, which must not start a second CLI.
if __name__ == "__main__":
    raise SystemExit(main())
