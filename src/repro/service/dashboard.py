"""Stdlib-rendered HTML for the tuning server's ``GET /dashboard``.

One self-contained page, no JavaScript frameworks, no external assets: a
server header, the cache hit-rate, the recent-job table, and one row per
history group with a unicode sparkline of its winner-time trend (newest
right).  Everything user-controlled is pushed through :func:`html.escape`.
"""

from __future__ import annotations

import html
import time
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.telemetry.history import HistoryRecord, group_records

__all__ = ["render_dashboard", "sparkline"]

_SPARK_BARS = "▁▂▃▄▅▆▇█"

_STYLE = """
body { font-family: ui-monospace, Menlo, Consolas, monospace; margin: 2em;
       background: #101418; color: #d8dee4; }
h1, h2 { font-weight: 600; color: #e8eef4; }
table { border-collapse: collapse; margin: 0.8em 0 1.6em; }
th, td { border: 1px solid #2a3038; padding: 0.3em 0.8em; text-align: left; }
th { background: #1a2027; }
.spark { font-size: 1.1em; letter-spacing: 0.05em; color: #7fd0ff; }
.ok { color: #8fe388; } .error { color: #ff8f8f; } .muted { color: #8a939e; }
"""


def sparkline(values: Sequence[float]) -> str:
    """A unicode bar per value, scaled to the sample's min..max range."""
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi <= lo:
        return _SPARK_BARS[0] * len(values)
    scale = (len(_SPARK_BARS) - 1) / (hi - lo)
    return "".join(_SPARK_BARS[int(round((v - lo) * scale))] for v in values)


def _table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> List[str]:
    """Table markup from pre-rendered (already escaped where needed) cells."""
    out = ["<table>", "<tr>" + "".join(f"<th>{h}</th>" for h in headers) + "</tr>"]
    for row in rows:
        out.append("<tr>" + "".join(f"<td>{cell}</td>" for cell in row) + "</tr>")
    out.append("</table>")
    return out


def _fmt_ms(value: Optional[float]) -> str:
    return "—" if value is None else f"{value:.3f}"


def render_dashboard(
    health: Mapping[str, Any],
    stats: Mapping[str, Any],
    jobs: Sequence[Mapping[str, Any]],
    records: Sequence[HistoryRecord],
    max_jobs: int = 50,
    trend_points: int = 24,
) -> str:
    """The full ``/dashboard`` page as an HTML string."""
    server = stats.get("server", {})
    hits = int(server.get("cache_hits", 0))
    submitted = int(server.get("submitted", 0))
    hit_rate = f"{100.0 * hits / submitted:.1f}%" if submitted else "n/a"
    status = str(health.get("status", "unknown"))
    status_class = "ok" if status == "ok" else "error"

    lines = [
        "<!DOCTYPE html>",
        "<html><head><meta charset='utf-8'>",
        "<title>repro tuning fleet</title>",
        f"<style>{_STYLE}</style>",
        "<meta http-equiv='refresh' content='5'>",
        "</head><body>",
        "<h1>repro tuning fleet</h1>",
        "<p>"
        f"status <span class='{status_class}'>{html.escape(status)}</span>"
        f" · executor {html.escape(str(health.get('executor', '?')))}"
        f"×{html.escape(str(health.get('workers', '?')))}"
        f" · cache {html.escape(str(health.get('cache_backend', '?')))}"
        f" · hit rate {hit_rate}"
        f" · {len(records)} history records"
        f" · rendered {time.strftime('%H:%M:%S')}"
        "</p>",
    ]

    fleet = health.get("fleet")
    if fleet:
        lines.append("<h2>Fleet</h2>")
        node = str(fleet.get("node", "?"))
        members = [str(m) for m in fleet.get("members", ())]
        member_cells = [
            f"<span class='ok'>{html.escape(m)} (this server)</span>"
            if m == node
            else html.escape(m)
            for m in members
        ]
        queue = stats.get("server", {}).get("queue", {}) or {}
        depth_text = "  ".join(
            f"{html.escape(str(label))}={int(depth)}"
            for label, depth in queue.items()
        )
        lines.append(
            "<p>"
            f"mode {html.escape(str(fleet.get('mode', '?')))}"
            f" · {len(members)} member(s)"
            f" · queued {depth_text or 'none'}"
            "</p>"
        )
        lines += _table(["ring member"], [[cell] for cell in member_cells])

    lines.append("<h2>Winner trends</h2>")
    if records:
        trend_rows = []
        for key, group in sorted(group_records(records).items()):
            ordered = sorted(group, key=lambda r: r.ts)
            times = [r.winner_ms for r in ordered][-trend_points:]
            rhos = [r.rho for r in ordered if r.rho is not None]
            trend_rows.append(
                [
                    html.escape(key[0]),
                    html.escape(key[1] or "—"),
                    html.escape(key[2]),
                    html.escape(key[3]),
                    str(len(ordered)),
                    _fmt_ms(min(times)),
                    _fmt_ms(times[-1]),
                    f"{sum(rhos) / len(rhos):.2f}" if rhos else "—",
                    f"<span class='spark'>{sparkline(times)}</span>",
                ]
            )
        lines += _table(
            ["kernel", "variant", "spec", "backend", "runs", "best ms", "last ms",
             "ρ̄", "trend (old → new)"],
            trend_rows,
        )
    else:
        lines.append("<p class='muted'>no history yet — submit a tuning request</p>")

    lines.append("<h2>Recent jobs</h2>")
    if jobs:
        job_rows = []
        for job in list(jobs)[-max_jobs:][::-1]:
            status = str(job.get("status", "?"))
            cls = {"done": "ok", "error": "error"}.get(status, "muted")
            duration = job.get("duration_s")
            job_rows.append(
                [
                    html.escape(str(job.get("job", "?"))),
                    html.escape(str(job.get("request", {}).get("kernel", "?"))),
                    f"<span class='{cls}'>{html.escape(status)}</span>",
                    "yes" if job.get("from_cache") else "no",
                    "—" if duration is None else f"{duration:.3f}",
                    html.escape(str(job.get("error") or "")),
                ]
            )
        lines += _table(
            ["job", "kernel", "status", "cached", "duration s", "error"], job_rows
        )
    else:
        lines.append("<p class='muted'>no jobs yet</p>")

    lines.append("</body></html>")
    return "\n".join(lines)
