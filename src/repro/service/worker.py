"""The function a tuning-server worker executes, usable from any executor.

Module-level and fully picklable, so the server can submit it to a
``ProcessPoolExecutor`` (cold tuning escapes the GIL) or a thread pool (used
by in-process tests, where the shared :data:`COMPILE_COUNTER` stays
observable).  A worker process reopens the shared cache by its store URI
(plain ``.json`` path, ``dir:`` sharded store, or ``log:`` append log); the
backend's file locks make its persistence safe against the other workers.

Beyond the end-to-end ``compiles`` count, the completion payload carries the
staged compiler's per-stage execution counts (``stages``): a healthy
session-backed run shows the config-invariant ``analysis`` stage executing
once while ``tiling``/``scratchpad``/``mapping`` run once per candidate —
the artifact-reuse promise of :mod:`repro.compiler`, observable per job.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional

from repro.compiler import counting_compiles, counting_stage_runs
from repro.machine.spec import GEFORCE_8800_GTX, GPUSpec
from repro.telemetry import METRICS, trace
from repro.autotune.cache import TuningCache
from repro.autotune.session import autotune
from repro.service.protocol import TuneRequest


def execute_request(
    payload: Mapping[str, Any],
    cache_path: Optional[str] = None,
    spec: Optional[GPUSpec] = None,
    job_id: Optional[str] = None,
    reuse_artifacts: bool = False,
) -> Dict[str, Any]:
    """Run one tuning request to completion; returns the job-completion payload.

    Workers (thread *and* process) reopen the shared cache from
    ``cache_path`` — any store URI :class:`TuningCache` accepts — picking up
    entries other servers persisted since the pre-enqueue check; server-side
    warm hits never reach a worker at all.
    The returned ``compiles`` counts the pipeline compiles this request
    performed in the executing process (``stages`` the per-stage pass
    executions): exactly 0 for a warm cache hit, and — because the underlying
    counters are process-global — an upper bound when several *thread*
    workers tune concurrently in one process (process workers are exact,
    having the process to themselves).

    ``reuse_artifacts`` (the server's ``--reuse-artifacts``) opts into the
    executing process's :data:`~repro.compiler.GLOBAL_ARTIFACT_CACHE`:
    repeat requests for one (program, binding, spec) then run affine
    analysis zero times — visible in the returned ``stages`` counts and in
    ``repro_artifact_cache_total`` of the shipped metrics delta.  With
    process workers each worker process keeps its own cache (long-lived pool
    processes warm up once each).
    """
    request = TuneRequest.from_dict(payload)
    # Resolve against the server's machine spec (GPUSpec is a frozen dataclass
    # and pickles to process workers) so the report and its fingerprint match
    # the key the server deduplicated and will absorb under.
    resolved = request.resolve(spec or GEFORCE_8800_GTX)
    cache = TuningCache(cache_path) if cache_path is not None else None
    # Worker-process metrics are invisible to the server's /metrics endpoint,
    # so every completion ships the registry *delta* attributable to this job.
    # The server absorbs it only from process workers: thread workers already
    # mutate the server's own registry, and a concurrent thread job's counts
    # would bleed into this delta anyway (same caveat as ``compiles`` below).
    metrics_baseline = METRICS.snapshot()
    collector = trace.start_trace() if request.trace else None
    try:
        # PassManager hooks were dropped when the evaluator's session pickled
        # over (the __getstate__ contract); autotune's _prepare_request
        # re-attaches trace_pass_hook because the collector installed above
        # is active *before* the session is built.
        with counting_compiles() as compiles, counting_stage_runs() as stage_runs:
            report = autotune(
                resolved.program,
                spec=resolved.spec,
                options=resolved.options,
                strategy=request.strategy,
                max_workers=request.eval_workers,
                cache=cache,
                seed=request.seed,
                space_options=resolved.space_options,
                check_correctness=request.check_correctness,
                check_program=resolved.check_program,
                backend=request.backend,
                artifact_cache=True if reuse_artifacts else None,
                grid=resolved.grid,
            )
    finally:
        if collector is not None:
            trace.stop_trace()
    # The worker never appends to a history store itself: the server owns
    # the store and appends exactly once per job (no double-write when the
    # worker is a thread sharing the server's process).
    record = getattr(report, "history_record", None)
    if record is not None:
        record.source = "worker"
        record.job_id = job_id
    return {
        "fingerprint": report.fingerprint,
        "report": report.to_dict(),
        "from_cache": report.from_cache,
        # a warm hit is zero compiles by construction, whatever concurrent
        # jobs in this process added to the global counters meanwhile
        "compiles": 0 if report.from_cache else compiles.count,
        "stages": {} if report.from_cache else dict(stage_runs.counts),
        # plain dicts end to end — the payload must survive pickling back
        # from a spawn-started process worker
        "trace": collector.to_dicts() if collector is not None else None,
        "metrics": METRICS.delta_since(metrics_baseline),
        "history": record.to_dict() if record is not None else None,
    }
