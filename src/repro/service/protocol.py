"""Wire protocol of the tuning service.

A :class:`TuneRequest` is the JSON body of ``POST /tune``: a *named* kernel
(resolved through :mod:`repro.kernels.registry` — programs never travel over
the wire), its problem sizes, and the tuning knobs of
:func:`repro.autotune.autotune`.  :meth:`TuneRequest.resolve` materialises the
program, options and configuration space and computes the request's cache
fingerprint — the same key :func:`~repro.autotune.session.autotune` stores
reports under, so the server can deduplicate in-flight requests and probe the
shared cache without starting a tuning run.

:class:`JobRecord` is the server-side state of one accepted request, returned
by ``GET /status/<job>``.

The ``cache`` section of ``GET /cache/stats`` always carries
:data:`CACHE_STATS_COMMON_FIELDS`; everything else is a backend-specific
gauge (``shards`` for the sharded store, ``segments``/``compactions``/
``dead_records`` for the append log, ``tombstones`` for the legacy JSON
file).  :func:`ordered_cache_stats` gives clients and CLIs a stable render
order without having to know every backend.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, fields
from typing import Any, Dict, Mapping, Optional

# The stats schema is owned by the store layer (the producer); re-exported
# here because it is also the wire contract of GET /cache/stats.
from repro.autotune.store import CACHE_STATS_COMMON_FIELDS, ordered_cache_stats

__all__ = [
    "CACHE_STATS_COMMON_FIELDS",
    "FINISHED_STATES",
    "JobRecord",
    "ResolvedRequest",
    "TuneRequest",
    "format_stage_counts",
    "ordered_cache_stats",
]


def format_stage_counts(stages: Mapping[str, int]) -> str:
    """Render a per-stage execution-count payload in stage order.

    The compiler's standard stages come first in pipeline order, any extra
    (custom-pass) stages after, sorted — shared by the service CLI and tests
    so job transcripts are stable.
    """
    from repro.compiler import DEFAULT_PASSES

    ordered = [name for name in DEFAULT_PASSES if name in stages]
    ordered += sorted(name for name in stages if name not in DEFAULT_PASSES)
    return " ".join(f"{name}={stages[name]}" for name in ordered)

from repro.core.options import MappingOptions
from repro.ir.program import Program
from repro.kernels.registry import TunableKernel, get_kernel
from repro.machine.spec import GEFORCE_8800_GTX, GPUSpec, GridSpec
from repro.autotune.backends import parse_backend_uri
from repro.autotune.search import STRATEGIES
from repro.autotune.session import tuning_fingerprint
from repro.autotune.space import SpaceOptions

#: keys accepted in a request's ``space`` payload
_SPACE_KEYS = (
    "thread_counts",
    "block_counts",
    "scratchpad_choices",
    "tile_candidates_per_geometry",
)

#: terminal job states
FINISHED_STATES = ("done", "error")


@dataclass
class TuneRequest:
    """One tuning request as it travels over the wire."""

    kernel: str
    sizes: Dict[str, int] = field(default_factory=dict)
    strategy: str = "pruned"
    seed: int = 0
    #: parallel-evaluation fan-out *inside* the worker executing this job
    eval_workers: int = 1
    check_correctness: bool = False
    #: optional :meth:`MappingOptions.to_dict` payload
    options: Optional[Dict[str, Any]] = None
    #: optional subset of :class:`SpaceOptions` fields
    space: Optional[Dict[str, Any]] = None
    #: evaluation-backend URI (``model:``, ``measure-py:...``,
    #: ``measure-c:...``, ``hybrid:model>measure-py?top=K``)
    backend: str = "model:"
    #: collect a span trace of the tuning run (shipped back in the job
    #: payload).  Observability only — deliberately NOT a fingerprint
    #: ingredient: a traced and an untraced request share one cache entry.
    trace: bool = False
    #: scheduling class (``high`` | ``normal`` | ``low``) — decides queue
    #: order behind a busy worker pool, nothing else.  Like ``trace``,
    #: deliberately NOT a fingerprint ingredient: a high- and a low-priority
    #: submission of the same work share one cache entry and one job.
    priority: str = "normal"

    def __post_init__(self) -> None:
        if not isinstance(self.kernel, str) or not self.kernel:
            raise ValueError(f"kernel must be a non-empty string, got {self.kernel!r}")
        if not isinstance(self.sizes, Mapping):
            raise ValueError(f"sizes must be a mapping, got {self.sizes!r}")
        for name, value in self.sizes.items():
            if not isinstance(value, int) or isinstance(value, bool):
                raise ValueError(
                    f"size {name!r} must be an integer, got {value!r}"
                )
        self.sizes = {str(k): int(v) for k, v in self.sizes.items()}
        if self.strategy not in STRATEGIES:
            raise ValueError(
                f"unknown strategy {self.strategy!r}; available: {sorted(STRATEGIES)}"
            )
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ValueError(f"seed must be an integer, got {self.seed!r}")
        if not isinstance(self.check_correctness, bool):
            # a truthy string like "false" must not silently enable checking
            # (and leak into the fingerprint, splitting the cache)
            raise ValueError(
                f"check_correctness must be a boolean, got {self.check_correctness!r}"
            )
        if not isinstance(self.eval_workers, int) or self.eval_workers < 1:
            raise ValueError(f"eval_workers must be a positive integer, got {self.eval_workers!r}")
        if not isinstance(self.trace, bool):
            # a truthy string like "false" must not silently enable tracing
            raise ValueError(f"trace must be a boolean, got {self.trace!r}")
        from repro.fleet.queue import PRIORITY_CLASSES

        if self.priority not in PRIORITY_CLASSES:
            raise ValueError(
                f"priority must be one of {PRIORITY_CLASSES}, got {self.priority!r}"
            )
        # Parse the backend URI eagerly: a typo must 400 at submission, not
        # error a worker.  (Host *availability* — e.g. a missing C toolchain —
        # is deliberately not checked here: the worker raising
        # BackendUnavailable reports it per job.)
        parse_backend_uri(self.backend)
        if self.space is not None:
            unknown = set(self.space) - set(_SPACE_KEYS)
            if unknown:
                raise ValueError(
                    f"unknown space fields {sorted(unknown)}; available: {list(_SPACE_KEYS)}"
                )
            for key in ("thread_counts", "block_counts"):
                values = self.space.get(key)
                if values is None:
                    continue
                # a JSON string would otherwise iterate character-by-character
                if not isinstance(values, (list, tuple)) or not all(
                    isinstance(v, int) and not isinstance(v, bool) for v in values
                ):
                    raise ValueError(f"space.{key} must be a list of integers, got {values!r}")
            choices = self.space.get("scratchpad_choices")
            if choices is not None and (
                not isinstance(choices, (list, tuple))
                or not all(isinstance(v, bool) for v in choices)
            ):
                raise ValueError(
                    f"space.scratchpad_choices must be a list of booleans, got {choices!r}"
                )
            limit = self.space.get("tile_candidates_per_geometry")
            if limit is not None and (not isinstance(limit, int) or isinstance(limit, bool)):
                raise ValueError(
                    f"space.tile_candidates_per_geometry must be an integer, got {limit!r}"
                )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kernel": self.kernel,
            "sizes": dict(self.sizes),
            "strategy": self.strategy,
            "seed": self.seed,
            "eval_workers": self.eval_workers,
            "check_correctness": self.check_correctness,
            "options": dict(self.options) if self.options else None,
            "space": dict(self.space) if self.space else None,
            "backend": self.backend,
            "trace": self.trace,
            "priority": self.priority,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TuneRequest":
        known = {f.name for f in fields(cls)}
        extra = set(payload) - known
        if extra:
            raise ValueError(f"unknown TuneRequest fields: {sorted(extra)}")
        if "kernel" not in payload:
            raise ValueError("a TuneRequest needs at least a 'kernel' name")
        return cls(**{k: v for k, v in payload.items() if v is not None})

    # -- server-side materialisation ---------------------------------------------------
    def space_options(self) -> SpaceOptions:
        """The request's :class:`SpaceOptions` (tuple-coerced from JSON lists)."""
        payload = dict(self.space or {})
        for key in ("thread_counts", "block_counts"):
            if key in payload:
                payload[key] = tuple(int(v) for v in payload[key])
        if "scratchpad_choices" in payload:
            payload["scratchpad_choices"] = tuple(
                bool(v) for v in payload["scratchpad_choices"]
            )
        return SpaceOptions(**payload)

    def mapping_options(self) -> MappingOptions:
        return MappingOptions.from_dict(self.options) if self.options else MappingOptions()

    def resolve(self, spec: GPUSpec = GEFORCE_8800_GTX) -> "ResolvedRequest":
        """Build the program and compute the request's cache fingerprint.

        Cheap — band analysis and loop extents only, never a pipeline
        compile — so the server can fingerprint every incoming request
        synchronously.  Raises ``ValueError`` for unknown kernels, sizes,
        options or space fields.
        """
        try:
            kernel = get_kernel(self.kernel)
        except KeyError as error:
            raise ValueError(error.args[0]) from None
        program = kernel.build(**self.sizes)
        options = self.mapping_options()
        space_options = self.space_options()
        check_program = kernel.build_check() if self.check_correctness else None
        key = tuning_fingerprint(
            program,
            spec=spec,
            options=options,
            strategy=self.strategy,
            seed=self.seed,
            space_options=space_options,
            check_correctness=self.check_correctness,
            check_program=check_program,
            backend=self.backend,
            grid=kernel.grid,
        )
        return ResolvedRequest(
            request=self,
            kernel=kernel,
            program=program,
            options=options,
            space_options=space_options,
            check_program=check_program,
            spec=spec,
            fingerprint=key,
            grid=kernel.grid,
        )


@dataclass
class ResolvedRequest:
    """A :class:`TuneRequest` materialised against the kernel registry."""

    request: TuneRequest
    kernel: TunableKernel
    program: Program
    options: MappingOptions
    space_options: SpaceOptions
    check_program: Optional[Program]
    spec: GPUSpec
    fingerprint: str
    #: PE-grid target of a distributed kernel family (``None`` otherwise)
    grid: Optional["GridSpec"] = None


@dataclass
class JobRecord:
    """Server-side state of one accepted tuning request."""

    id: str
    fingerprint: str
    request: Dict[str, Any]
    status: str = "queued"  # queued | running | done | error
    #: how many /tune submissions this job serves (1 + in-flight duplicates)
    waiters: int = 1
    from_cache: bool = False
    #: pipeline compiles performed by the worker that ran this job
    compiles: Optional[int] = None
    #: per-stage pass executions (repro.compiler) performed by that worker —
    #: ``analysis`` staying at 1 while ``tiling`` counts candidates is the
    #: session-replay reuse promise, observable per job
    stages: Optional[Dict[str, int]] = None
    report: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    created_at: float = field(default_factory=time.time)
    finished_at: Optional[float] = None
    #: monotonic acceptance timestamp — server-local, never serialized.
    #: ``created_at``/``finished_at`` stay wall-clock (human-readable, cross
    #: host), but their difference jumps with NTP slews, so elapsed time is
    #: measured on the monotonic clock instead.
    created_mono: float = field(default_factory=time.monotonic, repr=False)
    #: queue+run wall time in seconds, captured from the monotonic clock the
    #: moment the job reaches a terminal state
    duration_s: Optional[float] = None
    #: span tree of the tuning run (list of Span.to_dict payloads), present
    #: only when the request asked for tracing
    trace: Optional[list] = None
    #: per-span-kind rollup (count + total_ms), cheap enough for /status
    span_summary: Optional[Dict[str, Any]] = None
    #: correlation id of the job's span trace (matches the ``trace_id`` of
    #: the history record this job appended), present only when traced
    trace_id: Optional[str] = None

    @property
    def finished(self) -> bool:
        return self.status in FINISHED_STATES

    def mark_finished(self) -> None:
        """Stamp the terminal timestamps (idempotent — first stamp wins)."""
        if self.finished_at is None:
            self.finished_at = time.time()
        if self.duration_s is None:
            self.duration_s = max(0.0, time.monotonic() - self.created_mono)

    def to_dict(self, include_report: bool = True) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "job": self.id,
            "fingerprint": self.fingerprint,
            "status": self.status,
            "waiters": self.waiters,
            "from_cache": self.from_cache,
            "compiles": self.compiles,
            "stages": dict(self.stages) if self.stages is not None else None,
            "error": self.error,
            "created_at": self.created_at,
            "finished_at": self.finished_at,
            "duration_s": self.duration_s,
            "span_summary": dict(self.span_summary) if self.span_summary else None,
            "trace_id": self.trace_id,
            "request": dict(self.request),
        }
        if include_report:
            payload["report"] = self.report
            payload["trace"] = self.trace
        return payload
