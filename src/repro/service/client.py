"""Client library for the tuning server (stdlib ``urllib`` only).

Blocking and asynchronous usage::

    client = TuningClient("http://127.0.0.1:8037")

    # blocking: submit and wait for the report
    report = client.tune(TuneRequest(kernel="matmul", sizes={"m": 256, "n": 256, "k": 256}))

    # measured tuning: the backend URI travels in the request, the report's
    # best result comes back with measurement-kind provenance
    report = client.tune(
        TuneRequest(kernel="matmul", backend="hybrid:model>measure-py?top=8")
    )
    assert report.best.measurement_kind == "measured-py"

    # asynchronous: fire requests, poll or block on the handles later
    pending = [client.submit(request) for request in requests]
    reports = [p.result(timeout=300) for p in pending]

Identical concurrent submissions are deduplicated *server-side*: every handle
resolves to the same job and the same report, backed by exactly one tuning
run.
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Iterable, List, Mapping, Optional, Union

from repro.autotune.session import TuningReport
from repro.service.protocol import FINISHED_STATES, TuneRequest

DEFAULT_HTTP_TIMEOUT = 30.0
DEFAULT_JOB_TIMEOUT = 600.0

#: per-request ceiling on one long-poll wait; the server caps slightly above
#: this, so each poll returns before the HTTP timeout kicks in
LONG_POLL_CHUNK_S = 25.0

#: fleet 307 hops followed per call before giving up (a hop is *normal* — one
#: redirect to the home server; more than a couple means the rings disagree)
MAX_REDIRECT_HOPS = 4


class _Redirect(Exception):
    """Internal: a 307 pointing the request at its fleet home server."""

    def __init__(self, location: str) -> None:
        super().__init__(location)
        self.location = location


class ServiceError(RuntimeError):
    """An HTTP-level or job-level failure reported by the tuning server."""

    def __init__(
        self,
        message: str,
        status: Optional[int] = None,
        payload: Optional[Mapping[str, Any]] = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.payload = dict(payload) if payload else {}


class PendingTuning:
    """Handle on a submitted job: poll with :meth:`status`, block with :meth:`result`."""

    def __init__(
        self,
        client: "TuningClient",
        job_id: str,
        fingerprint: str,
        outcome: str,
        job_state: Optional[Mapping[str, Any]] = None,
        request: Optional[Mapping[str, Any]] = None,
    ) -> None:
        self.client = client
        self.job_id = job_id
        self.fingerprint = fingerprint
        #: ``"created"`` | ``"deduplicated"`` | ``"cached"`` at submission time
        self.outcome = outcome
        #: the full job payload, present when the job finished at submission
        #: (warm cache hit) — no /status round trip needed then
        self._job_state = dict(job_state) if job_state else None
        #: the original request, kept so an evicted job can be recovered by
        #: re-submission (the server answers from its cache)
        self._request = dict(request) if request else None

    @property
    def deduplicated(self) -> bool:
        return self.outcome == "deduplicated"

    @property
    def cached(self) -> bool:
        return self.outcome == "cached"

    def _recover_evicted(self) -> None:
        """Re-submit once after the server evicted this job, adopting the new job.

        Non-blocking: a completed-and-cached job answers inline at submission;
        a job whose (error) state was genuinely lost becomes a fresh run that
        subsequent polls track under the adopted id.  One attempt only — the
        adopted handle carries no request, so recovery cannot chain.
        """
        retry = self.client.submit(self._request)
        self.job_id = retry.job_id
        self._job_state = retry._job_state
        self._request = None

    def status(self) -> Dict[str, Any]:
        """The job's current server-side state (raw ``/status`` payload).

        A 404 for a job the server evicted (bounded retention under heavy
        traffic) triggers one non-blocking re-submission — cached work answers
        instantly — instead of crashing the polling loop.
        """
        if self._job_state is not None:
            return dict(self._job_state)
        try:
            return self.client.status(self.job_id)
        except ServiceError as error:
            if error.status != 404 or self._request is None:
                raise
            self._recover_evicted()
            return self.status()

    def done(self) -> bool:
        return self.status()["status"] in FINISHED_STATES

    def job(self, timeout: float = DEFAULT_JOB_TIMEOUT) -> Dict[str, Any]:
        """Block until finished; the raw job payload (report, compiles, …).

        If the server evicted this finished job before we polled it (bounded
        job retention under heavy traffic), the request is re-submitted once —
        the report is in the server's cache, so the retry answers warm.
        """
        if self._job_state is not None:
            return dict(self._job_state)
        try:
            job = self.client.wait(self.job_id, timeout=timeout)
        except ServiceError as error:
            if error.status != 404 or self._request is None:
                raise
            self._recover_evicted()
            if self._job_state is not None:
                return dict(self._job_state)
            job = self.client.wait(self.job_id, timeout=timeout)
        self._job_state = dict(job)
        return job

    def result(self, timeout: float = DEFAULT_JOB_TIMEOUT) -> TuningReport:
        """Block until finished; the :class:`TuningReport` (raises on job error)."""
        return _report_from_job(self.job(timeout=timeout))


def _report_from_job(job: Mapping[str, Any]) -> TuningReport:
    if job["status"] == "error":
        raise ServiceError(f"tuning job {job['job']} failed: {job['error']}", payload=job)
    return TuningReport.from_dict(job["report"], from_cache=bool(job["from_cache"]))


class TuningClient:
    """Talks JSON over HTTP to a :class:`repro.service.server.TuningServer`.

    Fleet-aware: a ``307 Temporary Redirect`` from a non-home server is
    followed transparently (``urllib`` refuses to re-POST on its own, so the
    client re-issues the identical body at the ``Location`` target), and a
    handle returned by :meth:`submit` polls the server that actually owns
    the job (the ``node`` field of the ``/tune`` response).

    ``retries`` (off by default) bounds re-attempts after *transient*
    failures — connection errors, 502 from a degraded proxy, 503 while
    draining — with exponential backoff from ``backoff`` seconds plus
    jitter.  Tuning submissions are idempotent server-side (dedup + cache),
    so a retried POST never duplicates work.
    """

    def __init__(
        self,
        url: str,
        timeout: float = DEFAULT_HTTP_TIMEOUT,
        retries: int = 0,
        backoff: float = 0.1,
    ) -> None:
        self.url = url.rstrip("/")
        self.timeout = timeout
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries!r}")
        if backoff <= 0:
            raise ValueError(f"backoff must be positive, got {backoff!r}")
        self.retries = retries
        self.backoff = backoff

    def _peer(self, url: str) -> "TuningClient":
        """A client for another fleet member, inheriting this one's knobs."""
        if url.rstrip("/") == self.url:
            return self
        return TuningClient(
            url, timeout=self.timeout, retries=self.retries, backoff=self.backoff
        )

    # -- transport ---------------------------------------------------------------------
    def _request_once(
        self, method: str, url: str, payload: Optional[Mapping[str, Any]]
    ) -> Dict[str, Any]:
        data = json.dumps(payload).encode("utf-8") if payload is not None else None
        request = urllib.request.Request(
            url,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            if error.code == 307 and error.headers.get("Location"):
                raise _Redirect(error.headers["Location"]) from None
            body = error.read().decode("utf-8", errors="replace")
            try:
                parsed = json.loads(body)
                message = parsed.get("error", body)
            except json.JSONDecodeError:
                parsed, message = {}, body
            raise ServiceError(
                f"{method} {url} failed ({error.code}): {message}",
                status=error.code,
                payload=parsed,
            ) from None
        except urllib.error.URLError as error:
            raise ServiceError(
                f"cannot reach tuning server at {url}: {error.reason}"
            ) from None

    def _call(
        self, method: str, path: str, payload: Optional[Mapping[str, Any]] = None
    ) -> Dict[str, Any]:
        url = self.url + path
        attempts = 0
        hops = 0
        while True:
            try:
                return self._request_once(method, url, payload)
            except _Redirect as redirect:
                # A fleet 307: re-issue the identical request at the home
                # server.  Hops are routing, not failures — they don't burn
                # retry budget, but a bounce loop (disagreeing rings) must
                # not spin forever.
                hops += 1
                if hops > MAX_REDIRECT_HOPS:
                    raise ServiceError(
                        f"{method} {path}: gave up after {hops} fleet redirects "
                        f"(last target {redirect.location})"
                    ) from None
                url = redirect.location
            except ServiceError as error:
                transient = error.status is None or error.status in (502, 503)
                if not transient or attempts >= self.retries:
                    raise
                attempts += 1
                delay = self.backoff * (2 ** (attempts - 1))
                delay *= 0.5 + random.random() / 2  # full jitter: 50-100%
                time.sleep(delay)

    # -- endpoints ---------------------------------------------------------------------
    def healthz(self) -> Dict[str, Any]:
        return self._call("GET", "/healthz")

    def cache_stats(self) -> Dict[str, Any]:
        """The server's ``/cache/stats`` payload.

        The ``cache`` section identifies the persistence backend
        (``backend``: ``json`` | ``sharded`` | ``log`` | ``memory``) and its
        gauges next to the common entry/byte/hit/miss counters — render it
        with :func:`repro.service.protocol.ordered_cache_stats`.
        """
        return self._call("GET", "/cache/stats")

    def cache_backend(self) -> str:
        """The server cache's persistence backend name (one HTTP round trip)."""
        return str(self.cache_stats()["cache"].get("backend", "json"))

    def kernels(self) -> Dict[str, Any]:
        return self._call("GET", "/kernels")

    def metrics(self) -> str:
        """The server's ``/metrics`` page — raw Prometheus text, not JSON.

        Parse with :func:`repro.telemetry.parse_prometheus_text` when the
        values are needed programmatically.
        """
        request = urllib.request.Request(self.url + "/metrics", method="GET")
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return response.read().decode("utf-8")
        except urllib.error.HTTPError as error:
            raise ServiceError(
                f"GET /metrics failed ({error.code})", status=error.code
            ) from None
        except urllib.error.URLError as error:
            raise ServiceError(
                f"cannot reach tuning server at {self.url}: {error.reason}"
            ) from None

    def dashboard(self) -> str:
        """The server's ``/dashboard`` page — raw HTML, not JSON."""
        request = urllib.request.Request(self.url + "/dashboard", method="GET")
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return response.read().decode("utf-8")
        except urllib.error.HTTPError as error:
            raise ServiceError(
                f"GET /dashboard failed ({error.code})", status=error.code
            ) from None
        except urllib.error.URLError as error:
            raise ServiceError(
                f"cannot reach tuning server at {self.url}: {error.reason}"
            ) from None

    def history_rollup(self) -> Dict[str, Any]:
        """The server's ``/history`` payload: store stats + per-group rollup."""
        return self._call("GET", "/history")

    def status(self, job_id: str, wait: Optional[float] = None) -> Dict[str, Any]:
        """The job's state; with ``wait`` the server long-polls.

        ``wait`` seconds > 0 parks the request server-side until the job
        finishes (or the window closes) — one round trip instead of a
        sleep-poll loop.
        """
        path = f"/status/{job_id}"
        if wait is not None and wait > 0:
            path += f"?wait={wait:g}"
        return self._call("GET", path)

    def fleet(self) -> Dict[str, Any]:
        """The server's ``/fleet`` payload: membership + queue depths."""
        return self._call("GET", "/fleet")

    def shutdown(self) -> Dict[str, Any]:
        """Ask the server to drain in-flight jobs and stop."""
        return self._call("POST", "/shutdown")

    # -- tuning ------------------------------------------------------------------------
    def submit(self, request: Union[TuneRequest, Mapping[str, Any]]) -> PendingTuning:
        """Fire one tuning request; returns immediately with a handle.

        In a fleet the job may live on another member (we were redirected or
        proxied there); the handle binds to the owning server's URL — the
        ``node`` field of the response — so its polls go straight home.
        """
        payload = request.to_dict() if isinstance(request, TuneRequest) else dict(request)
        response = self._call("POST", "/tune", payload)
        owner = self._peer(response["node"]) if response.get("node") else self
        return PendingTuning(
            owner,
            response["job"],
            response["fingerprint"],
            response["outcome"],
            job_state=response.get("job_state"),
            request=payload,
        )

    def submit_batch(
        self, requests: Iterable[Union[TuneRequest, Mapping[str, Any]]]
    ) -> List[PendingTuning]:
        """Fire many requests in one ``POST /tune/batch``; handles in order.

        Items the server answered ``redirected`` (redirect-mode fleet, other
        home) are resubmitted individually to their home server, so the
        caller always gets one live handle per request.  A malformed item
        raises — a batch is one unit of intent, not a best-effort spray.
        """
        payloads = [
            item.to_dict() if isinstance(item, TuneRequest) else dict(item)
            for item in requests
        ]
        response = self._call("POST", "/tune/batch", {"requests": payloads})
        jobs = response.get("jobs", [])
        if len(jobs) != len(payloads):
            raise ServiceError(
                f"batch answered {len(jobs)} slots for {len(payloads)} requests",
                payload=response,
            )
        handles: List[PendingTuning] = []
        for payload, item in zip(payloads, jobs):
            outcome = item.get("outcome")
            if outcome == "redirected":
                handles.append(self._peer(item["node"]).submit(payload))
                continue
            if outcome in ("invalid", "error") or "job" not in item:
                raise ServiceError(
                    f"batch item rejected: {item.get('error', item)}", payload=item
                )
            owner = self._peer(item["node"]) if item.get("node") else self
            handles.append(
                PendingTuning(
                    owner,
                    item["job"],
                    item["fingerprint"],
                    outcome,
                    job_state=item.get("job_state"),
                    request=payload,
                )
            )
        return handles

    def wait(
        self,
        job_id: str,
        timeout: float = DEFAULT_JOB_TIMEOUT,
        poll_interval: float = 0.05,
    ) -> Dict[str, Any]:
        """Block until the job finishes; the raw job payload.

        Long-polls ``/status/<job>?wait=...`` so a completed job costs one
        round trip (two for jobs outliving one poll window) instead of a
        20Hz polling loop; ``poll_interval`` only paces the rare degenerate
        case of a server answering a long-poll immediately.
        """
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            job = self.status(
                job_id, wait=max(0.0, min(remaining, LONG_POLL_CHUNK_S))
            )
            if job["status"] in FINISHED_STATES:
                return job
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} did not finish within {timeout:.0f}s "
                    f"(last status: {job['status']})"
                )
            time.sleep(poll_interval)

    def tune(
        self,
        request: Union[TuneRequest, Mapping[str, Any]],
        timeout: float = DEFAULT_JOB_TIMEOUT,
    ) -> TuningReport:
        """Blocking submit-and-wait; the finished :class:`TuningReport`."""
        return self.submit(request).result(timeout=timeout)
