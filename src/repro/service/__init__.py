"""The tuning *service*: the autotuner served as a long-lived multi-process server.

The paper's empirical loop only pays off when results are shared — the same
(kernel, machine, options) request should be compiled once, ever, across all
clients.  This package wraps :func:`repro.autotune.autotune` in exactly that
contract:

* :mod:`repro.service.protocol` — the JSON wire format (:class:`TuneRequest`
  resolved against the kernel registry, :class:`JobRecord` job state);
* :mod:`repro.service.worker` — the picklable per-job entry point run on the
  worker pool;
* :mod:`repro.service.server` — :class:`TuningService` (priority queue over
  a ``ProcessPoolExecutor``, one shared file-locked :class:`TuningCache`,
  fingerprint-keyed in-flight deduplication: N concurrent identical requests
  trigger exactly one tuning run) and :class:`TuningServer` (the JSON-over-
  HTTP surface: ``/tune``, ``/tune/batch``, ``/status/<job>`` with
  ``?wait=`` long-polling, ``/cache/stats``, ``/healthz``, ``/kernels``,
  ``/fleet``, ``/shutdown``), with graceful drain on SIGTERM;
* :mod:`repro.service.client` — blocking (:meth:`TuningClient.tune`) and
  asynchronous (:meth:`TuningClient.submit` → :class:`PendingTuning`) client
  that follows fleet redirects and optionally retries transient failures;
* :mod:`repro.service.cli` — ``python -m repro.service`` (serve / submit /
  status / stats / fleet / shutdown).

Several servers become a *fleet* via :mod:`repro.fleet`: a consistent-hash
ring assigns each tuning fingerprint exactly one home server (``serve
--peers ...``), so the home's in-flight dedup map is authoritative and
exactly-once tuning holds fleet-wide.
"""

from repro.service.client import PendingTuning, ServiceError, TuningClient
from repro.service.protocol import (
    JobRecord,
    ResolvedRequest,
    TuneRequest,
    format_stage_counts,
)
from repro.service.server import ServiceUnavailable, TuningServer, TuningService
from repro.service.worker import execute_request

__all__ = [
    "JobRecord",
    "PendingTuning",
    "ResolvedRequest",
    "ServiceError",
    "ServiceUnavailable",
    "TuneRequest",
    "TuningClient",
    "TuningServer",
    "TuningService",
    "execute_request",
    "format_stage_counts",
]
