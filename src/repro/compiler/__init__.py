"""Staged compilation API: passes, stage artifacts, sessions, replay.

The paper's toolchain is explicitly staged — affine analysis → multi-level
tiling → scratchpad data movement → mapping — and this package exposes those
stages as first-class, cacheable artifacts instead of one monolithic
``compile()``:

* :class:`Pass` — one named stage (``analysis``, ``tiling``, ``scratchpad``,
  ``mapping``, plus the optional ``emit`` terminal pass) declaring its
  upstream inputs and the option fields it reads;
* :class:`StageArtifact` — an immutable, fingerprintable per-stage result;
* :class:`PassManager` — ordered pass registry with per-pass timing and
  instrumentation hooks;
* :class:`CompilationSession` — compile once, then
  ``session.replay(from_stage="tiling", config=...)`` re-runs only the
  config-dependent stages against the frozen analysis artifacts — the
  autotuner's hot path (affine analysis once per request, not once per
  candidate).

The legacy ``repro.core.MappingPipeline`` entry points are deprecation shims
over this package.

Quickstart::

    from repro.compiler import CompilationSession
    from repro.kernels import build_matmul_program

    session = CompilationSession(build_matmul_program(128, 128, 128))
    mapped = session.compile()              # full pipeline, artifacts cached
    fast = session.replay(config=best)      # analysis reused, tiling on re-run
    print(session.stage_report())           # per-stage timings + fingerprints
"""

from repro.compiler.artifact_cache import (
    GLOBAL_ARTIFACT_CACHE,
    ArtifactCache,
)
from repro.compiler.artifacts import (
    AnalysisArtifact,
    MappedKernel,
    ScratchpadArtifact,
    StageArtifact,
    TilingArtifact,
)
from repro.compiler.instrument import (
    COMPILE_COUNTER,
    STAGE_COUNTER,
    CompileCount,
    CompileCounter,
    StageCounter,
    StageRunCount,
    counting_compiles,
    counting_stage_runs,
    record_pass_execution,
)
from repro.compiler.manager import PassManager, PassTiming
from repro.compiler.passes import (
    DEFAULT_PASSES,
    PASS_REGISTRY,
    TERMINAL_PASSES,
    AnalysisPass,
    EmitCPass,
    LowerPyPass,
    LowerPyVecPass,
    MappingPass,
    Pass,
    PassContext,
    ScratchpadPass,
    TilingPass,
    loop_extents,
    register_pass,
    resolve_pass_names,
    split_across,
)
from repro.compiler.session import CompilationSession

__all__ = [
    "AnalysisArtifact",
    "AnalysisPass",
    "ArtifactCache",
    "COMPILE_COUNTER",
    "CompilationSession",
    "CompileCount",
    "CompileCounter",
    "DEFAULT_PASSES",
    "EmitCPass",
    "GLOBAL_ARTIFACT_CACHE",
    "LowerPyPass",
    "LowerPyVecPass",
    "MappedKernel",
    "MappingPass",
    "PASS_REGISTRY",
    "TERMINAL_PASSES",
    "Pass",
    "PassContext",
    "PassManager",
    "PassTiming",
    "STAGE_COUNTER",
    "ScratchpadArtifact",
    "ScratchpadPass",
    "StageArtifact",
    "StageCounter",
    "StageRunCount",
    "TilingArtifact",
    "TilingPass",
    "counting_compiles",
    "counting_stage_runs",
    "loop_extents",
    "record_pass_execution",
    "register_pass",
    "resolve_pass_names",
    "split_across",
]
