"""Immutable, fingerprintable per-stage compilation results.

Every pass of the staged compiler produces a :class:`StageArtifact`: the
stage's value (one of the payload classes below, or the final
:class:`MappedKernel`) tagged with a content fingerprint.  Fingerprints are
pure functions of the session inputs (program text, parameter binding,
machine spec) and the option fields the stage reads, so

* two sessions compiling the same program agree on every fingerprint,
* replaying a configuration can *prove* which upstream artifacts stay valid
  (a stage whose fingerprint is unchanged under the new options need not
  re-run), and
* ``inspect-stages`` can show cache identity without hashing payloads.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.ir.program import Program
from repro.machine.gpu import BlockWorkload
from repro.scratchpad.manager import ScratchpadPlan
from repro.tiling.bands import BandAnalysis
from repro.tiling.mapping import LaunchGeometry
from repro.tiling.multilevel import TiledProgram, TilingLevelSpec, tile_program
from repro.tiling.tile_search import TileSearchResult


@dataclass(frozen=True)
class StageArtifact:
    """One stage's frozen result: ``value`` tagged with identity metadata."""

    stage: str
    fingerprint: str
    value: Any

    @property
    def short_fingerprint(self) -> str:
        return self.fingerprint[:12]


@dataclass(frozen=True)
class AnalysisArtifact:
    """Config-invariant affine analysis of one (program, binding) pair.

    Everything here depends only on the program and its bound parameters —
    never on :class:`~repro.core.options.MappingOptions` — which is what makes
    it safe to reuse across every configuration a tuning request evaluates.
    """

    program: Program
    binding: Mapping[str, int]
    analysis: BandAnalysis
    extents: Mapping[str, int]
    lowers: Mapping[str, int]
    space_loops: Tuple[str, ...]


@dataclass
class TilingArtifact:
    """The multi-level tiling decision and its materialised loop structure.

    The scratchpad stage splices copy code into ``tiled.program`` *in place*,
    so a tiled program can only feed one downstream consumer.
    :meth:`take_tiled` hands out the pristine program exactly once and
    re-materialises (cheap, deterministic — no polyhedral analysis) for every
    later consumer, which is what makes ``replay(from_stage="scratchpad")``
    sound.
    """

    program: Program
    levels: List[TilingLevelSpec]
    block_level: int
    outer_tiles: Dict[str, int]
    mem_tiles: Dict[str, int]
    thread_tiles: Dict[str, int]
    search: Optional[TileSearchResult] = None
    _tiled: Optional[TiledProgram] = None
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def take_tiled(self) -> TiledProgram:
        """The tiled program, safe to mutate — pristine once, then rebuilt."""
        with self._lock:
            if self._tiled is not None:
                tiled, self._tiled = self._tiled, None
                return tiled
        return tile_program(self.program, self.levels, block_level=self.block_level)

    # Pickles as part of a session shipped to process-pool workers; the lock
    # is process-local state.
    def __getstate__(self) -> Dict[str, Any]:
        state = dict(self.__dict__)
        state["_lock"] = None
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()


@dataclass(frozen=True)
class ScratchpadArtifact:
    """The scratchpad data-movement plan applied to one tiled program."""

    tiled: TiledProgram
    plan: Optional[ScratchpadPlan]

    @property
    def program(self) -> Program:
        return self.tiled.program


@dataclass
class MappedKernel:
    """Everything the compiler produces for one kernel configuration."""

    original: Program
    analysis: BandAnalysis
    tiled: Optional[TiledProgram]
    plan: Optional[ScratchpadPlan]
    #: final executable program (tiled structure, remapped accesses, copy code)
    program: Program
    geometry: LaunchGeometry
    workload: BlockWorkload
    global_sync_rounds: int
    tile_sizes: Dict[str, int]
    outer_tile_sizes: Dict[str, int]
    tile_search: Optional[TileSearchResult] = None
    param_binding: Dict[str, int] = field(default_factory=dict)

    @property
    def uses_scratchpad(self) -> bool:
        return self.plan is not None and bool(self.plan.buffers)
