"""The compiler's stages as first-class, registered passes.

The paper's toolchain is explicitly staged, and the pass list mirrors it:

1. ``analysis`` — parallelism detection (bands, space/time loops) and loop
   extents — Section 4.1.  Config-invariant: depends only on the program and
   its bound parameters.
2. ``tiling`` — outer-level tiling across thread blocks, memory-constrained
   intra-tile tiling (tile sizes either given or found by the Section-4.3
   search), and inner-level tiling across threads — Figs. 2–3.
3. ``scratchpad`` — scratchpad data management for the tile body — Section 3
   — with copy code placed at the block boundary and synchronisation points
   inserted.
4. ``mapping`` — launch geometry and the per-block workload descriptor for
   the analytical machine models (the stand-in for running CUDA on the
   8800 GTX).
5. ``emit`` *(optional terminal pass, not in the default list)* — renders the
   mapped program as C-like text via :func:`repro.codegen.emit_c`.
6. ``lower-py`` *(optional terminal pass)* — lowers the mapped program to
   executable Python source via :func:`repro.codegen.emit_py.
   emit_python_source`; the ``measure-py:`` evaluation backend executes and
   times this artifact instead of pricing the model.

Each :class:`Pass` declares which upstream stages it consumes (``inputs``)
and which :class:`~repro.core.options.MappingOptions` fields it reads
(``option_fields``); the latter is what lets
:class:`~repro.compiler.session.CompilationSession` prove that a replayed
configuration leaves an upstream artifact valid.  New passes register through
:func:`register_pass` and are resolved by name, with typos rejected early by
:func:`resolve_pass_names`.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Type

from repro.core.options import MappingOptions
from repro.ir.ast import StatementNode, SyncNode
from repro.ir.printer import program_to_c
from repro.ir.program import Program
from repro.ir.statements import Statement
from repro.machine.gpu import BlockWorkload
from repro.machine.memory import MemoryModel
from repro.machine.spec import GPUSpec
from repro.polyhedral.parametric import parametric_bounds
from repro.scratchpad.manager import ScratchpadManager, ScratchpadOptions, ScratchpadPlan
from repro.scratchpad.remap import build_remap_table, remap_statement
from repro.tiling.bands import analyze_bands
from repro.tiling.cost_model import DataMovementCostModel
from repro.tiling.mapping import LaunchGeometry, blocks_for_extent
from repro.tiling.multilevel import TiledProgram, TilingLevelSpec, tile_program
from repro.tiling.placement import placement_depths
from repro.tiling.tile_search import TileSearchProblem, TileSearchResult, search_tile_sizes

from repro.compiler.artifacts import (
    AnalysisArtifact,
    MappedKernel,
    ScratchpadArtifact,
    StageArtifact,
    TilingArtifact,
)
from repro.compiler.instrument import COMPILE_COUNTER


# -- shared helpers (used by the passes and by repro.autotune.space) -------------------
def loop_extents(
    program: Program, binding: Mapping[str, int]
) -> Tuple[Dict[str, int], Dict[str, int]]:
    """Concrete extent and lower bound of every loop of the (deepest) nest.

    Shared by the compiler and the autotuner's configuration space so both
    derive launch geometry from identical extents.
    """
    extents: Dict[str, int] = {}
    lowers: Dict[str, int] = {}
    for statement in program.statement_list:
        for loop in statement.domain.dims:
            if loop in extents:
                continue
            bound = parametric_bounds(statement.domain, loop)
            low = bound.lower.evaluate_int(binding)
            high = bound.upper.evaluate_int(binding)
            extents[loop] = max(high - low + 1, 1)
            lowers[loop] = low
    return extents, lowers


def split_across(
    total: int, loops: Sequence[str], weights: Mapping[str, int]
) -> Dict[str, int]:
    """Split a process count across loops, proportionally to their extents."""
    counts = {loop: 1 for loop in loops}
    remaining = total
    if len(loops) == 1:
        counts[loops[0]] = total
        return counts
    # Repeatedly double the count of the loop with the largest per-count extent.
    while remaining > 1:
        best = max(loops, key=lambda l: weights[l] / counts[l])
        if counts[best] * 2 > total:
            break
        counts[best] *= 2
        product = 1
        for loop in loops:
            product *= counts[loop]
        if product >= total:
            break
        remaining = total // product
    return counts


def _access_counts(statement: Statement) -> Tuple[float, float]:
    """(global, shared) accesses per dynamic instance of a statement."""
    global_count = 0.0
    shared_count = 0.0
    loads = statement.read_loads() + [statement.write_load()]
    for load in loads:
        if load.array.is_local:
            shared_count += 1
        else:
            global_count += 1
    return global_count, shared_count


# -- pass context -------------------------------------------------------------------
@dataclass
class PassContext:
    """Everything a pass may read: session inputs plus upstream artifacts."""

    program: Program
    spec: GPUSpec
    options: MappingOptions
    param_values: Optional[Mapping[str, int]]
    memory: MemoryModel
    #: session-identity hash (program text + binding + machine spec)
    base_fingerprint: str
    artifacts: Dict[str, StageArtifact] = field(default_factory=dict)

    def value(self, stage: str) -> Any:
        """The upstream artifact value a pass declared in its ``inputs``."""
        try:
            return self.artifacts[stage].value
        except KeyError:
            raise RuntimeError(
                f"pass requires the {stage!r} artifact but it has not been run"
            ) from None


def base_fingerprint(
    program: Program, spec: GPUSpec, param_values: Optional[Mapping[str, int]]
) -> str:
    """Session identity: hashes the rendered program, binding and machine."""
    import dataclasses as _dataclasses

    binding = program.bound_params(param_values)
    payload = {
        "program": program_to_c(program),
        "params": {k: binding[k] for k in sorted(binding)},
        "spec": _dataclasses.asdict(spec),
    }
    rendered = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(rendered.encode("utf-8")).hexdigest()


# -- pass interface -----------------------------------------------------------------
class Pass:
    """One stage of the compiler: a named, fingerprintable unit of work."""

    #: stage name (unique within a pass list)
    name: str = "base"
    #: upstream stages whose artifacts :meth:`run` consumes
    inputs: Tuple[str, ...] = ()
    #: :class:`MappingOptions` fields this pass reads — the fingerprint
    #: ingredient that decides whether a cached artifact survives a replay
    option_fields: Tuple[str, ...] = ()

    @property
    def config_dependent(self) -> bool:
        """Whether any mapping option can change this pass's output."""
        return bool(self.option_fields)

    def fingerprint(self, ctx: PassContext, upstream: Sequence[str]) -> str:
        """Artifact identity under ``ctx.options`` — computable without running."""
        options = ctx.options.to_dict()
        payload = {
            "stage": self.name,
            "base": ctx.base_fingerprint,
            "options": {name: options[name] for name in self.option_fields},
            "upstream": list(upstream),
        }
        rendered = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(rendered.encode("utf-8")).hexdigest()

    def run(self, ctx: PassContext) -> Any:
        raise NotImplementedError


class AnalysisPass(Pass):
    """Affine analysis: bands, space/time loops, loop extents (Section 4.1).

    Config-invariant (``option_fields`` is empty): its artifact survives
    every replay, which is what lets a tuning request analyse once and
    evaluate hundreds of configurations.
    """

    name = "analysis"

    def run(self, ctx: PassContext) -> AnalysisArtifact:
        binding = ctx.program.bound_params(ctx.param_values)
        analysis = analyze_bands(ctx.program)
        extents, lowers = loop_extents(ctx.program, binding)
        space_loops = tuple(analysis.space_loops) or (analysis.loop_order[0],)
        return AnalysisArtifact(
            program=ctx.program,
            binding=binding,
            analysis=analysis,
            extents=extents,
            lowers=lowers,
            space_loops=space_loops,
        )


class TilingPass(Pass):
    """Multi-level tiling: block/memory/thread levels (Section 4, Figs. 2–3)."""

    name = "tiling"
    inputs = ("analysis",)
    option_fields = (
        "num_blocks",
        "threads_per_block",
        "tile_sizes",
        "delta",
        "target",
        "hoisting",
    )

    def run(self, ctx: PassContext) -> TilingArtifact:
        art: AnalysisArtifact = ctx.value("analysis")
        options = ctx.options
        extents = art.extents
        space_loops = list(art.space_loops)

        block_counts = split_across(options.num_blocks, space_loops, extents)
        outer_tiles = {
            loop: max(1, math.ceil(extents[loop] / block_counts[loop]))
            for loop in space_loops
        }

        search_result: Optional[TileSearchResult] = None
        if options.tile_sizes is not None:
            mem_tiles = {
                loop: min(int(size), extents[loop])
                for loop, size in options.tile_sizes.items()
                if loop in extents
            }
        else:
            mem_tiles, search_result = self._search_tiles(ctx, art, outer_tiles)
        for loop in art.analysis.loop_order:
            mem_tiles.setdefault(loop, min(outer_tiles.get(loop, extents[loop]), extents[loop]))

        thread_counts = split_across(options.threads_per_block, space_loops, mem_tiles)
        thread_tiles = {
            loop: max(1, math.ceil(mem_tiles[loop] / thread_counts[loop]))
            for loop in space_loops
        }

        levels = [
            TilingLevelSpec(sizes=dict(outer_tiles), parallel="blocks", suffix="T"),
            TilingLevelSpec(sizes=dict(mem_tiles), parallel=None, suffix="p"),
            TilingLevelSpec(sizes=dict(thread_tiles), parallel="threads", suffix="t"),
        ]
        tiled = tile_program(ctx.program, levels, block_level=1)
        return TilingArtifact(
            program=ctx.program,
            levels=levels,
            block_level=1,
            outer_tiles=outer_tiles,
            mem_tiles=mem_tiles,
            thread_tiles=thread_tiles,
            search=search_result,
            _tiled=tiled,
        )

    @staticmethod
    def _search_tiles(
        ctx: PassContext,
        art: AnalysisArtifact,
        outer_tiles: Mapping[str, int],
    ) -> Tuple[Dict[str, int], TileSearchResult]:
        """Run the Section-4.3 search for the memory-level tile sizes."""
        options = ctx.options
        extents = {
            loop: outer_tiles.get(loop, art.extents[loop])
            for loop in art.analysis.loop_order
        }
        model = DataMovementCostModel(
            program=ctx.program,
            tile_loops=list(art.analysis.loop_order),
            loop_extents=extents,
            threads=options.threads_per_block,
            sync_cost=ctx.spec.block_sync_cycles,
            transfer_cost=ctx.spec.dma_cycles_per_element,
            problem_params=dict(art.binding),
            delta=options.delta,
            stage_all=options.target == "cell",
            hoisting=options.hoisting,
        )
        blocks_per_mp = 1
        if art.analysis.needs_global_synchronization:
            blocks_per_mp = max(
                1, math.ceil(options.num_blocks / ctx.spec.multiprocessors)
            )
        memory_limit = ctx.memory.memory_limit_per_block(blocks_per_mp)
        problem = TileSearchProblem(
            cost_model=model,
            memory_limit_bytes=float(memory_limit),
            min_parallelism=options.threads_per_block,
        )
        result = search_tile_sizes(problem)
        return dict(result.tile_sizes), result


class ScratchpadPass(Pass):
    """Scratchpad data management spliced into the tile body (Section 3)."""

    name = "scratchpad"
    inputs = ("analysis", "tiling")
    option_fields = ("use_scratchpad", "delta", "target", "liveness")

    def run(self, ctx: PassContext) -> ScratchpadArtifact:
        art: AnalysisArtifact = ctx.value("analysis")
        tiling: TilingArtifact = ctx.value("tiling")
        tiled = tiling.take_tiled()
        plan: Optional[ScratchpadPlan] = None
        if ctx.options.use_scratchpad:
            plan = self._apply(ctx, art, tiled)
        return ScratchpadArtifact(tiled=tiled, plan=plan)

    @staticmethod
    def _apply(
        ctx: PassContext, art: AnalysisArtifact, tiled: TiledProgram
    ) -> ScratchpadPlan:
        """Plan buffers for the tile body and splice copy code into the block."""
        options = ctx.options
        representative = dict(art.binding)
        for level in tiled.levels:
            for original, (iterator, _size) in level.iterators.items():
                representative[iterator] = art.lowers.get(original, 0)
        manager = ScratchpadManager(
            ScratchpadOptions(
                delta=options.delta,
                target=options.target,
                context=tiled.context,
                param_binding=representative,
                liveness=options.liveness,
            )
        )
        program = tiled.program
        plan = manager.plan(program)
        if not plan.buffers:
            return plan

        table = build_remap_table(plan.specs())
        remapped: Dict[str, Statement] = {}
        for statement in list(program.statements.values()):
            remapped[statement.name] = remap_statement(statement, table)
        for node in program.body.walk():
            if isinstance(node, StatementNode) and node.statement.name in remapped:
                node.statement = remapped[node.statement.name]
        program.statements.update(remapped)

        new_block: List = []
        for entry in plan.buffers:
            if entry.movement.has_copy_in():
                new_block.extend(entry.movement.copy_in.body)
                for statement in entry.movement.copy_in_statements:
                    program.add_statement(statement)
        if new_block:
            new_block.append(SyncNode(scope="threads"))
        new_block.extend(tiled.block_body.body)
        copy_out_nodes: List = []
        for entry in plan.buffers:
            if entry.movement.has_copy_out():
                copy_out_nodes.extend(entry.movement.copy_out.body)
                for statement in entry.movement.copy_out_statements:
                    program.add_statement(statement)
        if copy_out_nodes:
            new_block.append(SyncNode(scope="threads"))
            new_block.extend(copy_out_nodes)
        tiled.block_body.body = new_block

        for spec in plan.specs():
            program.add_array(spec.local)
            program.symbol_definitions.update(spec.offset_definitions)
        program.name = f"{program.name}_spm"
        program.validate()
        return plan


class MappingPass(Pass):
    """Launch geometry + per-block workload extraction for the machine models.

    Producing a :class:`MappedKernel` is what "one compile" means, so the
    process-wide :data:`~repro.compiler.instrument.COMPILE_COUNTER` is bumped
    here — every path that runs this pass (session compile, replay, artifact
    access) counts exactly once, and cached results count zero.
    """

    name = "mapping"
    inputs = ("analysis", "tiling", "scratchpad")
    option_fields = ("num_blocks", "threads_per_block", "hoisting", "use_scratchpad")

    def run(self, ctx: PassContext) -> MappedKernel:
        COMPILE_COUNTER.increment()
        art: AnalysisArtifact = ctx.value("analysis")
        tiling: TilingArtifact = ctx.value("tiling")
        staged: ScratchpadArtifact = ctx.value("scratchpad")
        options = ctx.options
        plan = staged.plan

        geometry = LaunchGeometry(
            num_blocks=options.num_blocks,
            threads_per_block=options.threads_per_block,
            shared_memory_per_block_bytes=plan.total_footprint_bytes() if plan else 0,
        )
        workload, rounds = self._build_workload(ctx, art, tiling, plan)
        return MappedKernel(
            original=ctx.program,
            analysis=art.analysis,
            tiled=staged.tiled,
            plan=plan,
            program=staged.program,
            geometry=geometry,
            workload=workload,
            global_sync_rounds=rounds,
            tile_sizes=dict(tiling.mem_tiles),
            outer_tile_sizes=dict(tiling.outer_tiles),
            tile_search=tiling.search,
            param_binding=dict(art.binding),
        )

    @staticmethod
    def _build_workload(
        ctx: PassContext,
        art: AnalysisArtifact,
        tiling: TilingArtifact,
        plan: Optional[ScratchpadPlan],
    ) -> Tuple[BlockWorkload, int]:
        options = ctx.options
        program = ctx.program
        analysis = art.analysis
        extents, lowers = art.extents, art.lowers
        outer_tiles, mem_tiles = tiling.outer_tiles, tiling.mem_tiles

        total_instances = 0.0
        weighted_global = 0.0
        weighted_shared = 0.0
        table = build_remap_table(plan.specs()) if plan else {}
        for statement in program.statement_list:
            instances = 1.0
            for loop in statement.domain.dims:
                instances *= extents[loop]
            total_instances += instances
            target = remap_statement(statement, table) if table else statement
            global_accesses, shared_accesses = _access_counts(target)
            weighted_global += instances * global_accesses
            weighted_shared += instances * shared_accesses
        if total_instances == 0:
            raise ValueError("program has no statement instances")
        global_per_instance = weighted_global / total_instances
        shared_per_instance = weighted_shared / total_instances
        instances_per_block = total_instances / options.num_blocks

        element_size = next(iter(program.arrays.values())).element_size
        copy_in = copy_out = occurrences_total = 0.0
        if plan is not None and plan.buffers:
            representative = dict(art.binding)
            representative.update(
                {f"{loop}T": lowers[loop] for loop in outer_tiles}
            )
            for loop in analysis.loop_order:
                representative.setdefault(f"{loop}p", lowers[loop])
                representative.setdefault(f"{loop}t", lowers[loop])
            block_loops = [
                (f"{loop}p", loop) for loop in analysis.loop_order if loop in mem_tiles
            ]
            depths = placement_depths(
                plan.specs(), block_loops, enable_hoisting=options.hoisting
            )
            for entry in plan.buffers:
                spec_loops = block_loops[: depths[entry.spec.local.name]]
                occurrences = 1.0
                for _tile_iter, original in spec_loops:
                    extent = outer_tiles.get(original, extents[original])
                    occurrences *= math.ceil(extent / mem_tiles[original])
                volume_in = entry.movement.volume_in(representative)
                volume_out = entry.movement.volume_out(representative)
                copy_in += occurrences * volume_in
                copy_out += occurrences * volume_out
                occurrences_total += occurrences * (
                    int(volume_in > 0) + int(volume_out > 0)
                )
            element_size = plan.buffers[0].spec.original.element_size

        workload = BlockWorkload(
            compute_instances=instances_per_block,
            global_accesses_per_instance=global_per_instance,
            shared_accesses_per_instance=shared_per_instance,
            copy_in_elements=copy_in,
            copy_out_elements=copy_out,
            copy_occurrences=occurrences_total,
            element_size=element_size,
        )

        rounds = 1
        if analysis.needs_global_synchronization and analysis.space_loops:
            first_space = analysis.loop_order.index(analysis.space_loops[0])
            for loop in analysis.loop_order[:first_space]:
                if loop in analysis.time_loops:
                    rounds *= blocks_for_extent(extents[loop], mem_tiles[loop])
        return workload, rounds


class EmitCPass(Pass):
    """Optional terminal pass: render the mapped program as C-like text."""

    name = "emit"
    inputs = ("mapping",)
    option_fields = ("num_blocks", "threads_per_block", "use_scratchpad")

    def run(self, ctx: PassContext) -> str:
        from repro.codegen import emit_c

        mapped: MappedKernel = ctx.value("mapping")
        geometry = mapped.geometry
        header = (
            f"kernel {mapped.program.name}\n"
            f"blocks={geometry.num_blocks} threads={geometry.threads_per_block} "
            f"shared={geometry.shared_memory_per_block_bytes}B "
            f"sync_rounds={mapped.global_sync_rounds}"
        )
        return emit_c(mapped.program, header=header)


class LowerPyPass(Pass):
    """Optional terminal pass: lower the mapped program to executable Python.

    The artifact value is plain Python source defining
    ``kernel(arrays, params)`` (see :func:`repro.codegen.emit_py.
    emit_python_source`), which the ``measure-py:`` evaluation backend
    compiles with ``exec`` and *times* on seeded inputs — evaluation by
    executing the emitted artifact, the paper's empirical loop, instead of
    pricing the analytical model.
    """

    name = "lower-py"
    inputs = ("mapping",)
    option_fields = ("num_blocks", "threads_per_block", "use_scratchpad")

    def run(self, ctx: PassContext) -> str:
        from repro.codegen import emit_python_source

        mapped: MappedKernel = ctx.value("mapping")
        return emit_python_source(mapped.program)


class LowerPyVecPass(LowerPyPass):
    """``lower-py`` with eligible innermost loops rewritten to numpy.

    Same artifact contract as :class:`LowerPyPass` (Python source defining
    ``kernel(arrays, params)``), produced by :func:`repro.codegen.
    emit_py_vec.emit_python_source_vectorized` — behaviourally identical but
    several times faster to execute, which is what makes rank-ordering many
    candidates with ``measure-py:`` affordable.  Falls back to the scalar
    source when numpy is absent at lowering time.
    """

    name = "lower-py-vec"

    def run(self, ctx: PassContext) -> str:
        from repro.codegen import emit_python_source_vectorized

        mapped: MappedKernel = ctx.value("mapping")
        return emit_python_source_vectorized(mapped.program)


# -- registry -----------------------------------------------------------------------
#: registered pass factories, keyed by stage name
PASS_REGISTRY: Dict[str, Type[Pass]] = {}

#: stage order of the standard compiler ("emit" and "lower-py" are opt-in)
DEFAULT_PASSES: Tuple[str, ...] = ("analysis", "tiling", "scratchpad", "mapping")

#: terminal passes that may follow "mapping" (opt-in, one artifact each)
TERMINAL_PASSES: Tuple[str, ...] = ("emit", "lower-py", "lower-py-vec")


def register_pass(factory: Type[Pass]) -> Type[Pass]:
    """Register a pass class under its ``name`` (unique)."""
    if factory.name in PASS_REGISTRY:
        raise ValueError(f"pass {factory.name!r} is already registered")
    PASS_REGISTRY[factory.name] = factory
    return factory


for _factory in (
    AnalysisPass,
    TilingPass,
    ScratchpadPass,
    MappingPass,
    EmitCPass,
    LowerPyPass,
    LowerPyVecPass,
):
    register_pass(_factory)


def resolve_pass_names(passes: Sequence[Any]) -> List[Pass]:
    """Materialise a pass list from names and/or instances.

    Unknown names fail *early* with the full registry listed — a typo in a
    stage name must never surface as an obscure error deep inside a pass.
    """
    resolved: List[Pass] = []
    for entry in passes:
        if isinstance(entry, Pass):
            resolved.append(entry)
        elif isinstance(entry, str):
            try:
                resolved.append(PASS_REGISTRY[entry]())
            except KeyError:
                raise ValueError(
                    f"unknown pass {entry!r}; registered passes: "
                    f"{', '.join(sorted(PASS_REGISTRY))}"
                ) from None
        else:
            raise TypeError(
                f"passes must be names or Pass instances, got {type(entry).__name__}"
            )
    seen: Dict[str, int] = {}
    for item in resolved:
        if item.name in seen:
            raise ValueError(f"duplicate pass name {item.name!r} in pass list")
        seen[item.name] = 1
    return resolved
