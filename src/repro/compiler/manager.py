"""Ordered pass execution with per-pass timing and instrumentation hooks.

A :class:`PassManager` owns one ordered pass list (default:
``analysis → tiling → scratchpad → mapping``), runs the passes whose
artifacts a context is missing, and records per-pass run counts and wall
time.  Observers register hooks — called after every pass execution with
``(pass_name, artifact, elapsed_seconds)`` — which is how benchmarks and the
``inspect-stages`` CLI attach without the passes knowing about them.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.compiler.artifacts import StageArtifact
from repro.compiler.instrument import record_pass_execution
from repro.compiler.passes import DEFAULT_PASSES, Pass, PassContext, resolve_pass_names

#: observer signature: (pass name, produced artifact, elapsed seconds)
PassHook = Callable[[str, StageArtifact, float], None]


@dataclass
class PassTiming:
    """Accumulated execution statistics of one pass."""

    stage: str
    runs: int = 0
    total_seconds: float = 0.0

    @property
    def mean_ms(self) -> float:
        return 1e3 * self.total_seconds / self.runs if self.runs else 0.0


class PassManager:
    """Ordered pass registry with timing and pluggable pass lists."""

    def __init__(self, passes: Optional[Sequence[Any]] = None) -> None:
        self.passes: List[Pass] = resolve_pass_names(
            DEFAULT_PASSES if passes is None else passes
        )
        self._hooks: List[PassHook] = []
        self._timings: Dict[str, PassTiming] = {}
        self._lock = threading.Lock()

    # Managers travel inside pickled sessions to process-pool workers; the
    # lock is process-local and hooks are observers of *this* process, so
    # neither crosses the boundary.  CONTRACT: hooks are deliberately
    # DROPPED on pickle — an observer closure (a benchmark's accumulator, a
    # trace collector) must not be shipped to a worker that has no use for
    # it, and often cannot be pickled at all.  Anything that needs pass
    # observations on the far side must re-attach its hook after unpickling:
    # repro.service.worker re-attaches the telemetry pass hook, and
    # ConfigurationEvaluator.__setstate__ does the same when a trace
    # collector is active in the unpickling process.
    def __getstate__(self) -> Dict[str, Any]:
        state = dict(self.__dict__)
        state["_lock"] = None
        state["_hooks"] = []
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    # -- pass list ---------------------------------------------------------------------
    @property
    def stage_names(self) -> List[str]:
        return [p.name for p in self.passes]

    def stage_index(self, stage: str) -> int:
        """Position of ``stage`` in the pass list, with a helpful error."""
        for index, item in enumerate(self.passes):
            if item.name == stage:
                return index
        raise ValueError(
            f"unknown stage {stage!r}; valid stages: {', '.join(self.stage_names)}"
        )

    # -- instrumentation ---------------------------------------------------------------
    def add_hook(self, hook: PassHook) -> None:
        """Call ``hook(name, artifact, elapsed_s)`` after every pass run.

        Idempotent per hook object: re-attaching the same callable (the
        telemetry pass hook, re-attached after unpickling — hooks do not
        survive pickling, see ``__getstate__``) never double-fires it.
        """
        if hook not in self._hooks:
            self._hooks.append(hook)

    def timings(self) -> List[PassTiming]:
        """Per-pass run counts and wall time, in pass order."""
        with self._lock:
            return [
                PassTiming(t.stage, t.runs, t.total_seconds)
                for t in (
                    self._timings.get(name, PassTiming(name))
                    for name in self.stage_names
                )
            ]

    def _record(self, stage: str, elapsed: float) -> None:
        with self._lock:
            timing = self._timings.setdefault(stage, PassTiming(stage))
            timing.runs += 1
            timing.total_seconds += elapsed

    # -- execution ---------------------------------------------------------------------
    def run(
        self,
        ctx: PassContext,
        upto: Optional[str] = None,
        start_index: int = 0,
    ) -> List[str]:
        """Execute the passes the context is missing; returns the names run.

        Passes whose artifact is already present in ``ctx.artifacts`` are
        skipped — that is the whole replay mechanism: seed the context with
        the frozen upstream artifacts and only the rest runs.  ``upto``
        (inclusive) bounds the run; ``start_index`` skips leading passes
        outright (used by replay to avoid even looking at reused stages).
        """
        end_index = len(self.passes) - 1 if upto is None else self.stage_index(upto)
        executed: List[str] = []
        for item in self.passes[start_index : end_index + 1]:
            if item.name in ctx.artifacts:
                continue
            missing = [stage for stage in item.inputs if stage not in ctx.artifacts]
            if missing:
                raise RuntimeError(
                    f"pass {item.name!r} needs artifacts {missing} that are not "
                    "available; run the earlier stages first"
                )
            upstream = [ctx.artifacts[stage].fingerprint for stage in item.inputs]
            started = time.perf_counter()
            value = item.run(ctx)
            elapsed = time.perf_counter() - started
            artifact = StageArtifact(
                stage=item.name,
                fingerprint=item.fingerprint(ctx, upstream),
                value=value,
            )
            ctx.artifacts[item.name] = artifact
            record_pass_execution(item.name, elapsed)
            self._record(item.name, elapsed)
            executed.append(item.name)
            for hook in self._hooks:
                hook(item.name, artifact, elapsed)
        return executed

    def expected_fingerprints(self, ctx: PassContext) -> Dict[str, str]:
        """Each stage's fingerprint under ``ctx.options``, without running.

        Walks the pass list computing fingerprints from the declared option
        fields and upstream chain — the replay validity check compares these
        against the cached artifacts' fingerprints.
        """
        expected: Dict[str, str] = {}
        for item in self.passes:
            upstream = [expected[stage] for stage in item.inputs if stage in expected]
            expected[item.name] = item.fingerprint(ctx, upstream)
        return expected
