"""A cross-request cache of config-invariant stage artifacts.

Within one tuning request, :class:`~repro.compiler.session.
CompilationSession` already guarantees affine analysis runs once however many
candidates replay.  *Across* requests there was no sharing: a service worker
fielding ten requests for the same (program, binding, spec) re-analysed ten
times.  This cache closes that gap — an LRU map from
:attr:`~repro.compiler.session.CompilationSession.base_fingerprint` to the
session's config-invariant artifacts:

* :meth:`ArtifactCache.adopt` — seed a fresh session from the cache (before
  anything triggers analysis), via the session's *validated*
  :meth:`~repro.compiler.session.CompilationSession.install_artifacts`;
* :meth:`ArtifactCache.publish` — harvest what a session ended up freezing.

Sharing is opt-in (``autotune(artifact_cache=...)``, the tuning CLI / service
``--reuse-artifacts`` flag): plenty of tests — and the honest default — want
"analysis ran exactly once *per request*" to stay observable.  Reuse is
measurable either way: ``repro_artifact_cache_total{outcome=hit|miss}``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import TYPE_CHECKING, Dict, List

from repro.telemetry.metrics import METRICS

from repro.compiler.artifacts import StageArtifact

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.compiler.session import CompilationSession

ARTIFACT_CACHE_TOTAL = METRICS.counter(
    "repro_artifact_cache_total",
    "cross-request analysis-artifact adoptions by outcome",
    labels=("outcome",),
)

#: default ceiling on cached session identities before LRU eviction
DEFAULT_CAPACITY = 64


class ArtifactCache:
    """Thread-safe LRU of ``base_fingerprint → {stage: StageArtifact}``."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"artifact-cache capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[str, Dict[str, StageArtifact]]" = OrderedDict()
        self._lock = threading.Lock()

    def adopt(self, session: "CompilationSession") -> List[str]:
        """Seed ``session`` with cached artifacts of its identity.

        Returns the stage names actually installed (empty on a cache miss or
        when the session already has them).  Call this *before* the first
        thing that triggers analysis — adoption after the fact installs
        nothing.
        """
        key = session.base_fingerprint
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                entry = dict(entry)
        if not entry:
            ARTIFACT_CACHE_TOTAL.inc(outcome="miss")
            return []
        installed = session.install_artifacts(entry)
        ARTIFACT_CACHE_TOTAL.inc(outcome="hit" if installed else "miss")
        return installed

    def publish(self, session: "CompilationSession") -> List[str]:
        """Harvest ``session``'s frozen config-invariant artifacts.

        Merging is additive per identity (a session that ran further never
        loses stages another published).  Returns the stage names now cached
        for this identity.
        """
        artifacts = session.config_invariant_artifacts()
        if not artifacts:
            return []
        key = session.base_fingerprint
        with self._lock:
            entry = self._entries.setdefault(key, {})
            entry.update(artifacts)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
            return sorted(entry)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


#: the process-wide instance the ``--reuse-artifacts`` paths share
GLOBAL_ARTIFACT_CACHE = ArtifactCache()
