"""Staged compilation sessions with replay-from-stage.

A :class:`CompilationSession` pins one (program, machine spec, base options,
parameter binding) tuple and runs the pass pipeline over it:

* :meth:`compile` — the full pipeline under the base options (the one-shot
  compile the old ``MappingPipeline.compile`` performed), with every stage
  artifact cached on the session;
* :meth:`replay` — re-run only the config-dependent stages for an explicit
  mapping configuration, *reusing* the frozen upstream artifacts.
  ``session.replay(from_stage="tiling", config=...)`` is the autotuner's hot
  path: affine analysis runs once per session, then hundreds of candidate
  configurations replay from the tiling stage.

Replay is validated, not trusted: each stage artifact carries a fingerprint
derived from the option fields the stage reads, and replay refuses to reuse
an artifact whose fingerprint would change under the requested configuration
(with an error naming the earliest stage to replay from instead).

Sessions are thread-safe — the autotuner's parallel evaluators share one
session, and the first thread to need the analysis artifact computes it while
the others wait.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.core.options import MappingOptions
from repro.ir.program import Program
from repro.machine.memory import MemoryModel
from repro.machine.spec import GEFORCE_8800_GTX, GPUSpec

from repro.compiler.artifacts import AnalysisArtifact, MappedKernel, StageArtifact
from repro.compiler.manager import PassManager, PassTiming
from repro.compiler.passes import EmitCPass, PassContext, base_fingerprint


class CompilationSession:
    """One program compiled as a staged pipeline with cacheable artifacts."""

    def __init__(
        self,
        program: Program,
        spec: GPUSpec = GEFORCE_8800_GTX,
        options: Optional[MappingOptions] = None,
        param_values: Optional[Mapping[str, int]] = None,
        passes: Optional[Sequence[Any]] = None,
        manager: Optional[PassManager] = None,
    ) -> None:
        if manager is not None and passes is not None:
            raise ValueError("pass either a pass list or a PassManager, not both")
        self.program = program
        self.spec = spec
        self.options = options or MappingOptions()
        self.param_values = dict(param_values) if param_values is not None else None
        self.manager = manager or PassManager(passes)
        self.memory = MemoryModel(spec)
        self._artifacts: Dict[str, StageArtifact] = {}
        self._base_fingerprint: Optional[str] = None
        self._lock = threading.Lock()

    # Sessions pickle (minus the lock) so a process-pool evaluator can ship
    # its frozen artifacts to the workers instead of re-analysing there.
    def __getstate__(self) -> Dict[str, Any]:
        state = dict(self.__dict__)
        state["_lock"] = None
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    # -- identity ----------------------------------------------------------------------
    @property
    def base_fingerprint(self) -> str:
        """Session identity: program text + parameter binding + machine spec."""
        if self._base_fingerprint is None:
            self._base_fingerprint = base_fingerprint(
                self.program, self.spec, self.param_values
            )
        return self._base_fingerprint

    @property
    def stage_names(self) -> List[str]:
        return self.manager.stage_names

    def _context(
        self, options: MappingOptions, artifacts: Dict[str, StageArtifact]
    ) -> PassContext:
        return PassContext(
            program=self.program,
            spec=self.spec,
            options=options,
            param_values=self.param_values,
            memory=self.memory,
            base_fingerprint=self.base_fingerprint,
            artifacts=artifacts,
        )

    # -- compilation -------------------------------------------------------------------
    def compile(self) -> MappedKernel:
        """Run the full pipeline under the base options (artifacts cached).

        The first call performs every stage (including the Section-4.3 tile
        search when no explicit tile sizes are given); later calls return the
        cached mapped kernel without re-running anything.
        """
        with self._lock:
            ctx = self._context(self.options, self._artifacts)
            self.manager.run(ctx)
        return self.artifact("mapping").value

    def replay(
        self,
        from_stage: str = "tiling",
        config: Any = None,
        options: Optional[MappingOptions] = None,
    ) -> MappedKernel:
        """Re-run the pipeline from ``from_stage`` for one configuration.

        ``config`` is anything exposing ``num_blocks``, ``threads_per_block``,
        ``use_scratchpad`` and a ``tile_dict`` mapping of explicit tile sizes
        (notably :class:`repro.autotune.space.Configuration`); alternatively
        pass fully-resolved ``options``.  Stages *before* ``from_stage`` are
        reused from the session's frozen artifacts — computed on demand, once
        — after verifying their fingerprints survive the new options.  Because
        the tile sizes are explicit, the Section-4.3 search never runs on a
        config replay, which is what lets the autotuner evaluate many
        configurations cheaply.

        Stops at the ``mapping`` stage: terminal passes (``emit``,
        ``lower-py``) are opt-in per-candidate work — use
        :meth:`replay_artifacts` with an explicit ``upto`` to run them.
        """
        upto = "mapping" if "mapping" in self.manager.stage_names else None
        artifacts = self.replay_artifacts(
            from_stage=from_stage, config=config, options=options, upto=upto
        )
        try:
            return artifacts["mapping"].value
        except KeyError:
            raise ValueError(
                "the session's pass list has no 'mapping' stage to replay"
            ) from None

    def replay_artifacts(
        self,
        from_stage: str = "tiling",
        config: Any = None,
        options: Optional[MappingOptions] = None,
        upto: Optional[str] = None,
    ) -> Dict[str, StageArtifact]:
        """Like :meth:`replay`, returning every artifact the replay produced.

        ``upto`` (inclusive, ``None`` = the whole pass list) extends the
        replay through terminal passes: a session whose pass list ends in
        ``lower-py`` can replay one candidate configuration all the way to its
        executable-Python artifact (``artifacts["lower-py"].value``) — the
        ``measure-py:`` evaluation backend's per-candidate path.  The mapping
        artifact rides along under ``"mapping"``.
        """
        target = self._resolve_options(config, options)
        index = self.manager.stage_index(from_stage)
        with self._lock:
            base_ctx = self._context(self.options, self._artifacts)
            if index > 0:
                self.manager.run(base_ctx, upto=self.manager.passes[index - 1].name)
            reused = {
                item.name: self._artifacts[item.name]
                for item in self.manager.passes[:index]
            }
        self._validate_reuse(target, from_stage, reused)
        ctx = self._context(target, dict(reused))
        self.manager.run(ctx, start_index=index, upto=upto)
        return ctx.artifacts

    def with_passes(self, passes: Sequence[Any]) -> "CompilationSession":
        """A derived session over the same inputs with a different pass list.

        The derived session shares this session's identity (program, spec,
        options, binding) and adopts every already-frozen artifact whose stage
        appears in the new pass list — so a backend that needs an extra
        terminal pass (e.g. ``lower-py``) still reuses the one affine-analysis
        run of the original session instead of re-analysing.  Observer hooks
        carry over too: a traced request sees the derived session's passes
        (``lower-py`` per candidate) next to the original session's.
        """
        derived = CompilationSession(
            self.program,
            spec=self.spec,
            options=self.options,
            param_values=self.param_values,
            passes=passes,
        )
        derived._base_fingerprint = self._base_fingerprint
        stages = set(derived.manager.stage_names)
        with self._lock:
            for name, artifact in self._artifacts.items():
                if name in stages:
                    derived._artifacts[name] = artifact
            for hook in self.manager._hooks:
                derived.manager.add_hook(hook)
        return derived

    def _resolve_options(
        self, config: Any, options: Optional[MappingOptions]
    ) -> MappingOptions:
        if config is not None and options is not None:
            raise ValueError("pass either a configuration or options, not both")
        if config is None:
            return options or self.options
        tile_sizes = (
            config.tile_dict if hasattr(config, "tile_dict") else config.tile_sizes
        )
        return self.options.with_overrides(
            num_blocks=config.num_blocks,
            threads_per_block=config.threads_per_block,
            tile_sizes=dict(tile_sizes) if tile_sizes is not None else None,
            use_scratchpad=config.use_scratchpad,
        )

    def _validate_reuse(
        self,
        target: MappingOptions,
        from_stage: str,
        reused: Mapping[str, StageArtifact],
    ) -> None:
        """Refuse to reuse an artifact the new options would have changed."""
        expected = self.manager.expected_fingerprints(
            self._context(target, dict(reused))
        )
        for stage, artifact in reused.items():
            if expected[stage] != artifact.fingerprint:
                raise ValueError(
                    f"configuration changes the {stage!r} stage, which "
                    f"replay(from_stage={from_stage!r}) would reuse; replay "
                    f"from {stage!r} (or an earlier stage) instead"
                )

    # -- cross-session artifact sharing ------------------------------------------------
    def _invariant_stages(self) -> set:
        return {p.name for p in self.manager.passes if not p.config_dependent}

    def config_invariant_artifacts(self) -> Dict[str, StageArtifact]:
        """Already-frozen artifacts of config-invariant stages (``analysis``).

        These depend only on the session identity (:attr:`base_fingerprint`),
        so another session with the same identity may adopt them via
        :meth:`install_artifacts` — the seam the cross-request
        :class:`~repro.compiler.artifact_cache.ArtifactCache` plugs into.
        Never triggers computation: returns only what this session has run.
        """
        invariant = self._invariant_stages()
        with self._lock:
            return {
                name: artifact
                for name, artifact in self._artifacts.items()
                if name in invariant
            }

    def install_artifacts(self, artifacts: Mapping[str, StageArtifact]) -> List[str]:
        """Adopt config-invariant artifacts frozen by an equivalent session.

        Installation is validated, not trusted: each candidate's fingerprint
        must equal what this session would compute for that stage under its
        base options — a mismatched identity (different program, binding,
        spec, or pass semantics) is silently skipped, as are stages already
        frozen here.  Returns the names actually installed.
        """
        invariant = self._invariant_stages()
        with self._lock:
            expected = self.manager.expected_fingerprints(
                self._context(self.options, {})
            )
            installed: List[str] = []
            for name, artifact in artifacts.items():
                if name not in invariant or name in self._artifacts:
                    continue
                if expected.get(name) != artifact.fingerprint:
                    continue
                self._artifacts[name] = artifact
                installed.append(name)
            return installed

    # -- artifact access ---------------------------------------------------------------
    def artifact(self, stage: str) -> StageArtifact:
        """The cached base-options artifact of ``stage`` (computed on demand)."""
        self.manager.stage_index(stage)  # validates the name
        with self._lock:
            if stage not in self._artifacts:
                ctx = self._context(self.options, self._artifacts)
                self.manager.run(ctx, upto=stage)
            return self._artifacts[stage]

    def analysis(self) -> AnalysisArtifact:
        """The config-invariant affine analysis (bands, extents, binding)."""
        return self.artifact("analysis").value

    def render_c(self) -> str:
        """The mapped program as C-like text (the optional ``emit`` pass)."""
        self.compile()
        if "emit" in self.manager.stage_names:
            return self.artifact("emit").value
        with self._lock:
            ctx = self._context(self.options, self._artifacts)
            artifact = ctx.artifacts.get("emit")
            if artifact is None:
                emitter = EmitCPass()
                value = emitter.run(ctx)
                artifact = StageArtifact(
                    stage="emit",
                    fingerprint=emitter.fingerprint(
                        ctx, [self._artifacts["mapping"].fingerprint]
                    ),
                    value=value,
                )
                self._artifacts["emit"] = artifact
            return artifact.value

    def stage_report(self) -> List[Dict[str, Any]]:
        """Per-stage timings and artifact fingerprints (``inspect-stages``)."""
        timings: Dict[str, PassTiming] = {t.stage: t for t in self.manager.timings()}
        rows: List[Dict[str, Any]] = []
        for item in self.manager.passes:
            timing = timings.get(item.name, PassTiming(item.name))
            artifact = self._artifacts.get(item.name)
            rows.append(
                {
                    "stage": item.name,
                    "config_dependent": item.config_dependent,
                    "runs": timing.runs,
                    "total_ms": 1e3 * timing.total_seconds,
                    "mean_ms": timing.mean_ms,
                    "fingerprint": artifact.short_fingerprint if artifact else None,
                }
            )
        return rows
