"""Process-wide compilation instrumentation.

Two layers of counters, both lock-protected because parallel evaluation
compiles on thread-pool workers:

* :data:`COMPILE_COUNTER` counts *end-to-end* compilations (one per
  :class:`~repro.compiler.session.CompilationSession` run that executes the
  mapping stage).  The autotuner's persistent cache promises that a warm
  request performs zero compiles; this counter is how tests, benchmarks and
  the tuning service verify that promise.
* :data:`STAGE_COUNTER` counts *per-stage* pass executions.  Session replay
  promises that config-invariant stages (affine analysis) run once per
  request rather than once per candidate; the per-stage counts are how that
  promise is verified.

Both live here (not in :mod:`repro.core.pipeline`) so the compiler package
never imports the deprecated pipeline shims; the old import paths keep
working through re-exports.
"""

from __future__ import annotations

import contextlib
import threading
from dataclasses import dataclass, field
from typing import Dict


@dataclass
class CompileCounter:
    """Counts end-to-end pipeline compilations.

    The autotuner's persistent cache promises that a warm request performs
    *zero* pipeline compiles; this process-wide counter is how tests and
    benchmarks verify that promise.  Increments are lock-protected because
    parallel evaluation compiles on thread-pool workers.
    """

    count: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def increment(self) -> None:
        with self._lock:
            self.count += 1

    def reset(self) -> None:
        with self._lock:
            self.count = 0


#: process-wide counter bumped by every end-to-end compile (session or shim)
COMPILE_COUNTER = CompileCounter()


@dataclass
class CompileCount:
    """Result slot of :func:`counting_compiles`."""

    count: int = 0


@contextlib.contextmanager
def counting_compiles():
    """Count the pipeline compiles performed inside the ``with`` block.

    Yields a :class:`CompileCount` whose ``count`` is final once the block
    exits.  The delta is taken from the process-wide :data:`COMPILE_COUNTER`,
    so compiles on *other* threads of this process during the block are
    included — callers wanting an exact per-task figure (the tuning service's
    per-job accounting, the CLI) should not run compiles concurrently in the
    same process, or should treat the figure as an upper bound.
    """
    start = COMPILE_COUNTER.count
    box = CompileCount()
    try:
        yield box
    finally:
        box.count = COMPILE_COUNTER.count - start


@dataclass
class StageCounter:
    """Per-stage pass-execution counts, process-wide and thread-safe."""

    counts: Dict[str, int] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def record(self, stage: str) -> None:
        with self._lock:
            self.counts[stage] = self.counts.get(stage, 0) + 1

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return dict(self.counts)

    def total(self) -> int:
        with self._lock:
            return sum(self.counts.values())

    def reset(self) -> None:
        with self._lock:
            self.counts.clear()


#: process-wide counter bumped once per executed compiler pass, keyed by stage
STAGE_COUNTER = StageCounter()


@dataclass
class StageRunCount:
    """Result slot of :func:`counting_stage_runs`."""

    counts: Dict[str, int] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return sum(self.counts.values())


@contextlib.contextmanager
def counting_stage_runs():
    """Count per-stage pass executions inside the ``with`` block.

    Yields a :class:`StageRunCount` whose ``counts`` maps stage name to the
    number of executions once the block exits.  Like
    :func:`counting_compiles`, the delta is process-global: stages run by
    other threads during the block are included.
    """
    start = STAGE_COUNTER.snapshot()
    box = StageRunCount()
    try:
        yield box
    finally:
        end = STAGE_COUNTER.snapshot()
        deltas = {
            stage: end[stage] - start.get(stage, 0)
            for stage in end
            if end[stage] - start.get(stage, 0)
        }
        box.counts.update(deltas)
