"""Process-wide compilation instrumentation.

Two layers of counters, both lock-protected because parallel evaluation
compiles on thread-pool workers:

* :data:`COMPILE_COUNTER` counts *end-to-end* compilations (one per
  :class:`~repro.compiler.session.CompilationSession` run that executes the
  mapping stage).  The autotuner's persistent cache promises that a warm
  request performs zero compiles; this counter is how tests, benchmarks and
  the tuning service verify that promise.
* :data:`STAGE_COUNTER` counts *per-stage* pass executions.  Session replay
  promises that config-invariant stages (affine analysis) run once per
  request rather than once per candidate; the per-stage counts are how that
  promise is verified.

Both live here (not in :mod:`repro.core.pipeline`) so the compiler package
never imports the deprecated pipeline shims; the old import paths keep
working through re-exports.

Both counters double as **shims over the process-wide metrics registry**
(:data:`repro.telemetry.metrics.METRICS`): every increment also publishes
``repro_compiles_total`` / ``repro_stage_runs_total{stage=...}``, so the
tuning server's ``/metrics`` endpoint sees compiler activity without the
compiler knowing about the server.  The local counts stay independently
resettable — :func:`counting_compiles` / :func:`counting_stage_runs` deltas
are unchanged — while the registry counters only ever grow.
"""

from __future__ import annotations

import contextlib
import threading
from dataclasses import dataclass, field
from typing import Dict

from repro.telemetry.metrics import METRICS

#: registry-backed twins of the legacy counters (labels render in /metrics)
COMPILES_TOTAL = METRICS.counter(
    "repro_compiles_total", "end-to-end pipeline compilations"
)
STAGE_RUNS_TOTAL = METRICS.counter(
    "repro_stage_runs_total", "compiler pass executions", labels=("stage",)
)
PASS_SECONDS = METRICS.histogram(
    "repro_pass_seconds", "per-pass wall time in seconds", labels=("stage",)
)


@dataclass
class CompileCounter:
    """Counts end-to-end pipeline compilations.

    The autotuner's persistent cache promises that a warm request performs
    *zero* pipeline compiles; this process-wide counter is how tests and
    benchmarks verify that promise.  Increments are lock-protected because
    parallel evaluation compiles on thread-pool workers.

    Also a shim over the metrics registry: every :meth:`increment` publishes
    ``repro_compiles_total``.  Prefer the :func:`counting_compiles` delta (or
    the registry) over reading :data:`COMPILE_COUNTER` directly — the raw
    process-global count is a legacy surface kept for the pipeline-era
    callers and includes every other thread's compiles.
    """

    count: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def increment(self) -> None:
        with self._lock:
            self.count += 1
        COMPILES_TOTAL.inc()

    def reset(self) -> None:
        with self._lock:
            self.count = 0


#: process-wide counter bumped by every end-to-end compile (session or shim)
COMPILE_COUNTER = CompileCounter()


@dataclass
class CompileCount:
    """Result slot of :func:`counting_compiles`."""

    count: int = 0


@contextlib.contextmanager
def counting_compiles():
    """Count the pipeline compiles performed inside the ``with`` block.

    Yields a :class:`CompileCount` whose ``count`` is final once the block
    exits.  The delta is taken from the process-wide :data:`COMPILE_COUNTER`,
    so compiles on *other* threads of this process during the block are
    included — callers wanting an exact per-task figure (the tuning service's
    per-job accounting, the CLI) should not run compiles concurrently in the
    same process, or should treat the figure as an upper bound.
    """
    start = COMPILE_COUNTER.count
    box = CompileCount()
    try:
        yield box
    finally:
        box.count = COMPILE_COUNTER.count - start


@dataclass
class StageCounter:
    """Per-stage pass-execution counts, process-wide and thread-safe.

    Shim over the metrics registry like :class:`CompileCounter`: every
    :meth:`record` also publishes ``repro_stage_runs_total{stage=...}``.
    Prefer the :func:`counting_stage_runs` delta (or the registry) over
    reading :data:`STAGE_COUNTER` directly; the raw global is kept for
    legacy callers.
    """

    counts: Dict[str, int] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def record(self, stage: str) -> None:
        with self._lock:
            self.counts[stage] = self.counts.get(stage, 0) + 1
        STAGE_RUNS_TOTAL.inc(stage=stage)

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return dict(self.counts)

    def total(self) -> int:
        with self._lock:
            return sum(self.counts.values())

    def reset(self) -> None:
        with self._lock:
            self.counts.clear()


#: process-wide counter bumped once per executed compiler pass, keyed by stage
STAGE_COUNTER = StageCounter()


def record_pass_execution(stage: str, elapsed_s: float) -> None:
    """One executed pass: bump :data:`STAGE_COUNTER` and observe its wall time.

    The single instrumentation point :meth:`PassManager.run` calls, so the
    legacy per-stage counts and the ``repro_pass_seconds`` histogram can
    never drift apart.
    """
    STAGE_COUNTER.record(stage)
    PASS_SECONDS.observe(elapsed_s, stage=stage)


@dataclass
class StageRunCount:
    """Result slot of :func:`counting_stage_runs`."""

    counts: Dict[str, int] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return sum(self.counts.values())


@contextlib.contextmanager
def counting_stage_runs():
    """Count per-stage pass executions inside the ``with`` block.

    Yields a :class:`StageRunCount` whose ``counts`` maps stage name to the
    number of executions once the block exits.  Like
    :func:`counting_compiles`, the delta is process-global: stages run by
    other threads during the block are included.
    """
    start = STAGE_COUNTER.snapshot()
    box = StageRunCount()
    try:
        yield box
    finally:
        end = STAGE_COUNTER.snapshot()
        deltas = {
            stage: end[stage] - start.get(stage, 0)
            for stage in end
            if end[stage] - start.get(stage, 0)
        }
        box.counts.update(deltas)
