"""Rewriting references to target local buffers (paper Section 3.1.2).

For a reference ``A[F(y)]`` whose data space belongs to a partition with local
buffer ``L`` and offset vector ``g``, the rewritten reference is
``L[F'(y) − g]``.  Because our local buffers keep every dimension of the
original array (possibly with extent 1), ``F' = F`` and the rewrite is a pure
per-dimension translation — exactly the ``LA[i − 10][j + 1 − 11]`` form of the
paper's Fig. 1.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.ir.expressions import Expr, Load
from repro.ir.statements import Statement
from repro.scratchpad.allocation import LocalBufferSpec

#: Key identifying one access of one statement.
RemapKey = Tuple[str, Load, bool]


def build_remap_table(specs: Iterable[LocalBufferSpec]) -> Dict[RemapKey, LocalBufferSpec]:
    """Map (statement name, load, is_write) to the buffer that covers the access."""
    table: Dict[RemapKey, LocalBufferSpec] = {}
    for spec in specs:
        for space in spec.partition:
            key = (space.statement.name, space.load, space.is_write)
            existing = table.get(key)
            if existing is not None and existing is not spec:
                raise ValueError(
                    f"access {space.load} of statement {space.statement.name!r} is "
                    f"claimed by two buffers ({existing.local.name} and {spec.local.name})"
                )
            table[key] = spec
    return table


def remap_load(load: Load, spec: LocalBufferSpec) -> Load:
    """``A[F(y)]`` becomes ``L[F(y) − g]``."""
    if load.array.name != spec.original.name:
        raise ValueError(
            f"load targets array {load.array.name!r}, buffer {spec.local.name!r} "
            f"covers {spec.original.name!r}"
        )
    new_indices = tuple(
        index - offset for index, offset in zip(load.indices, spec.offsets)
    )
    return Load(spec.local, new_indices)


def remap_statement(
    statement: Statement, table: Dict[RemapKey, LocalBufferSpec]
) -> Statement:
    """Rewrite every access of *statement* that has a covering buffer.

    Accesses without an entry in the table (partitions deemed not beneficial,
    or arrays not handled) are left untouched — on GPU-like targets they keep
    reading global memory directly, as the paper prescribes.
    """

    def transform(load: Load) -> Expr:
        for is_write in (False, True):
            spec = table.get((statement.name, load, is_write))
            if spec is not None:
                return remap_load(load, spec)
        return load

    def transform_lhs(load: Load) -> Load:
        spec = table.get((statement.name, load, True)) or table.get(
            (statement.name, load, False)
        )
        if spec is not None:
            return remap_load(load, spec)
        return load

    remapped = statement.map_loads(
        lambda load: transform_lhs(load) if load == statement.lhs else transform(load)
    )
    return remapped


def remap_statements(
    statements: Sequence[Statement], specs: Iterable[LocalBufferSpec]
) -> List[Statement]:
    """Remap a whole block of statements against a set of buffers."""
    table = build_remap_table(specs)
    return [remap_statement(statement, table) for statement in statements]
