"""Reuse-benefit analysis — Algorithm 1 of the paper.

A partition of data spaces is worth staging in scratchpad memory when

* at least one reference exhibits *order-of-magnitude* (non-constant) reuse,
  i.e. the rank of its access matrix is smaller than the dimensionality of its
  iteration space (each element is then touched by a whole subspace of
  iterations), or
* the references exhibit significant *constant* reuse: the summed volume of
  pairwise overlaps of the data spaces exceeds a fraction ``delta`` of the
  total accessed volume.  The paper fixes ``delta`` at 30 %.

On architectures where global memory remains directly accessible during
computation (GPUs), only beneficial partitions are staged; on architectures
where it is not (the Cell), every partition must be staged regardless of the
decision — that policy lives in the manager, not here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from repro.polyhedral.counting import count_integer_points, intersection_point_count
from repro.scratchpad.data_space import ReferenceDataSpace

DEFAULT_DELTA = 0.3


@dataclass(frozen=True)
class ReuseDecision:
    """Outcome of Algorithm 1 for one partition."""

    beneficial: bool
    reason: str
    order_of_magnitude: bool
    overlap_fraction: Optional[float] = None

    def __str__(self) -> str:
        verdict = "beneficial" if self.beneficial else "not beneficial"
        return f"{verdict} ({self.reason})"


def evaluate_reuse(
    partition: Sequence[ReferenceDataSpace],
    delta: float = DEFAULT_DELTA,
    param_binding: Optional[Mapping[str, int]] = None,
) -> ReuseDecision:
    """Algorithm 1: decide whether *partition* should be staged in scratchpad.

    ``param_binding`` supplies parameter values for the constant-reuse volume
    computation; when the data spaces are parametric and no binding is given,
    the constant-reuse test is skipped (treated as "no significant overlap"),
    which is the conservative choice for the GPU policy.
    """
    if not partition:
        raise ValueError("cannot evaluate reuse of an empty partition")
    if not 0 <= delta <= 1:
        raise ValueError(f"delta must be in [0, 1], got {delta}")

    # Step 1: order-of-magnitude reuse (rank deficiency of any access).
    for space in partition:
        if space.has_order_of_magnitude_reuse:
            return ReuseDecision(
                beneficial=True,
                reason=(
                    f"reference {space.array.name}{space.function} has rank "
                    f"{space.rank} < iteration dimensionality {space.iteration_dim}"
                ),
                order_of_magnitude=True,
            )

    # Step 2: constant reuse measured by pairwise overlap volume.
    try:
        total_volume = 0
        overlap_volume = 0
        for index, space in enumerate(partition):
            total_volume += count_integer_points(space.data_space, param_binding)
            for other in partition[index + 1 :]:
                overlap_volume += intersection_point_count(
                    space.data_space, other.data_space, param_binding
                )
    except ValueError:
        return ReuseDecision(
            beneficial=False,
            reason="constant-reuse volumes not computable without parameter values",
            order_of_magnitude=False,
        )

    if total_volume == 0:
        return ReuseDecision(
            beneficial=False,
            reason="partition accesses no data",
            order_of_magnitude=False,
            overlap_fraction=0.0,
        )
    fraction = overlap_volume / total_volume
    if fraction > delta:
        return ReuseDecision(
            beneficial=True,
            reason=f"overlap volume fraction {fraction:.2f} exceeds delta={delta}",
            order_of_magnitude=False,
            overlap_fraction=fraction,
        )
    return ReuseDecision(
        beneficial=False,
        reason=f"overlap volume fraction {fraction:.2f} does not exceed delta={delta}",
        order_of_magnitude=False,
        overlap_fraction=fraction,
    )
