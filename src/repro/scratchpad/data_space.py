"""Per-reference accessed data spaces (paper Section 3.1, first step).

For every array reference ``a[F(i)]`` executed over an iteration domain ``I``
the accessed data space is the image ``F · I`` — a polyhedron over the
array's index space.  All data spaces of one array share canonical dimension
names so later stages (partitioning, hulls, copy-code scanning) can intersect
and unite them directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.ir.arrays import Array
from repro.ir.expressions import Load
from repro.ir.statements import Statement
from repro.polyhedral.affine import AffineFunction
from repro.polyhedral.image import image_of_polyhedron
from repro.polyhedral.polyhedron import Polyhedron


def data_space_dims(array: Array) -> Tuple[str, ...]:
    """Canonical dimension names for an array's data space polyhedra."""
    return tuple(f"{array.name}__d{k}" for k in range(array.ndim))


@dataclass(frozen=True)
class ReferenceDataSpace:
    """One reference of one statement together with its accessed data space."""

    statement: Statement
    load: Load
    is_write: bool
    array: Array
    function: AffineFunction
    data_space: Polyhedron

    @property
    def iteration_dim(self) -> int:
        """Dimensionality of the surrounding iteration space (paper's dim(i))."""
        return len(self.statement.domain.dims)

    @property
    def rank(self) -> int:
        """Rank of the iterator part of the access function (paper's rank(F))."""
        return self.function.rank()

    @property
    def has_order_of_magnitude_reuse(self) -> bool:
        """Condition (1) of the paper: ``rank(F) < dim(i)``."""
        return self.rank < self.iteration_dim

    def __str__(self) -> str:
        kind = "write" if self.is_write else "read"
        return f"{kind} {self.array.name}{self.function} in {self.statement.name}"


def _reference_data_space(statement: Statement, load: Load, is_write: bool) -> ReferenceDataSpace:
    function = AffineFunction(statement.domain.dims, load.indices)
    dims = data_space_dims(load.array)
    data_space = image_of_polyhedron(statement.domain, function, dims)
    return ReferenceDataSpace(
        statement=statement,
        load=load,
        is_write=is_write,
        array=load.array,
        function=function,
        data_space=data_space,
    )


def compute_reference_data_spaces(
    statements: Iterable[Statement],
    arrays: Optional[Sequence[str]] = None,
) -> Dict[str, List[ReferenceDataSpace]]:
    """Data spaces of every reference in the block, grouped by array name.

    ``arrays`` optionally restricts the analysis to the named arrays (the
    manager uses this to skip arrays that are already local buffers).
    Duplicate references (same statement, same access, same direction) are
    collapsed, matching the paper's set-of-data-spaces formulation.
    """
    wanted = set(arrays) if arrays is not None else None
    result: Dict[str, List[ReferenceDataSpace]] = {}
    seen: set = set()
    for statement in statements:
        accesses: List[Tuple[Load, bool]] = [(statement.lhs, True)]
        accesses.extend((load, False) for load in statement.read_loads())
        for load, is_write in accesses:
            if wanted is not None and load.array.name not in wanted:
                continue
            if load.array.is_local:
                continue
            key = (statement.name, load, is_write)
            if key in seen:
                continue
            seen.add(key)
            space = _reference_data_space(statement, load, is_write)
            result.setdefault(load.array.name, []).append(space)
    return result
