"""The scratchpad data-management framework façade (paper Section 3).

:class:`ScratchpadManager` applies the whole Section-3 pipeline to a program
block: it decides which accessed data regions to stage in the scratchpad,
allocates local buffers, rewrites the block's references, and wraps the block
with copy-in / copy-out code.  The result is a new
:class:`~repro.ir.program.Program` that computes exactly the same values as
the input (checked by the test suite via the reference interpreter) while
performing its compute-loop accesses on local buffers.
"""

from __future__ import annotations

import copy as _copy
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.ir.arrays import Array
from repro.ir.ast import (
    BlockNode,
    GuardNode,
    LoopNode,
    Node,
    StatementNode,
    SyncNode,
)
from repro.ir.program import Program
from repro.ir.statements import Statement
from repro.polyhedral.polyhedron import Polyhedron
from repro.scratchpad.allocation import LocalBufferSpec, allocate_local_buffer
from repro.scratchpad.data_space import ReferenceDataSpace, compute_reference_data_spaces
from repro.scratchpad.liveness import CopyClassification, classify_copies
from repro.scratchpad.movement import DataMovementCode, generate_data_movement
from repro.scratchpad.partition import partition_overlapping
from repro.scratchpad.remap import build_remap_table, remap_statement
from repro.scratchpad.reuse import DEFAULT_DELTA, ReuseDecision, evaluate_reuse

TARGET_GPU = "gpu"
TARGET_CELL = "cell"


@dataclass
class ScratchpadOptions:
    """Policy knobs of the data-management framework.

    Attributes
    ----------
    delta:
        Overlap-volume threshold of Algorithm 1 (the paper fixes 30 %).
    target:
        ``"gpu"`` stages only partitions with beneficial reuse (global memory
        remains accessible during compute); ``"cell"`` stages every partition
        (compute may only touch local memory).
    context:
        Optional polyhedron over the block parameters (tile origins, problem
        sizes) used to resolve buffer bounds and extents.
    param_binding:
        Parameter values used for volume estimates (Algorithm 1's constant
        reuse test and copy-volume reporting).
    liveness:
        Enable the Section-3.1.4 copy minimisation (extension; off by default
        to match the paper's implemented system).
    live_out:
        With ``liveness=True``: names of arrays whose values are needed after
        the block.  ``None`` means "all written arrays".
    """

    delta: float = DEFAULT_DELTA
    target: str = TARGET_GPU
    context: Optional[Polyhedron] = None
    param_binding: Optional[Mapping[str, int]] = None
    liveness: bool = False
    live_out: Optional[Sequence[str]] = None
    #: Allocate a single buffer covering all data spaces of each array instead
    #: of one buffer per non-overlapping partition.  The paper's Fig. 1 shows
    #: this variant (one ``LA[19][10]`` even though the accessed regions of
    #: ``A`` fall into two disjoint groups); the algorithm text prescribes
    #: per-partition buffers, which is the default here.
    single_buffer_per_array: bool = False

    def __post_init__(self) -> None:
        if self.target not in (TARGET_GPU, TARGET_CELL):
            raise ValueError(f"target must be 'gpu' or 'cell', got {self.target!r}")


@dataclass
class BufferPlan:
    """One staged partition: buffer, movement code and the reuse decision."""

    spec: LocalBufferSpec
    movement: DataMovementCode
    decision: ReuseDecision

    @property
    def local_array(self) -> Array:
        return self.spec.local


@dataclass
class ScratchpadPlan:
    """Complete staging plan for a program block."""

    buffers: List[BufferPlan] = field(default_factory=list)
    skipped: List[Tuple[str, ReuseDecision]] = field(default_factory=list)
    classification: Optional[CopyClassification] = None

    def specs(self) -> List[LocalBufferSpec]:
        return [plan.spec for plan in self.buffers]

    def total_footprint_bytes(self) -> int:
        """Scratchpad bytes needed when all buffers are live simultaneously."""
        return sum(plan.spec.footprint_bytes() for plan in self.buffers)

    def total_footprint_elements(self) -> int:
        return sum(plan.spec.footprint_elements() for plan in self.buffers)

    def volume_in(self, param_binding: Optional[Mapping[str, int]] = None) -> int:
        return sum(plan.movement.volume_in(param_binding) for plan in self.buffers)

    def volume_out(self, param_binding: Optional[Mapping[str, int]] = None) -> int:
        return sum(plan.movement.volume_out(param_binding) for plan in self.buffers)

    def summary(self) -> str:
        lines = [f"scratchpad plan: {len(self.buffers)} buffer(s)"]
        for plan in self.buffers:
            lines.append(
                f"  {plan.spec} — {plan.spec.footprint_bytes()} bytes, {plan.decision}"
            )
        for array_name, decision in self.skipped:
            lines.append(f"  skipped {array_name}: {decision}")
        return "\n".join(lines)


class ScratchpadManager:
    """Applies automatic scratchpad data management to a program block."""

    def __init__(self, options: Optional[ScratchpadOptions] = None) -> None:
        self.options = options or ScratchpadOptions()

    # -- planning ------------------------------------------------------------------
    def plan(self, program: Program) -> ScratchpadPlan:
        """Run Algorithms 1 and 2 plus movement generation for every array."""
        statements = program.statement_list
        data_spaces = compute_reference_data_spaces(statements)
        param_binding = self.options.param_binding
        if param_binding is None and program.default_params:
            # Fall back to the program's default parameter values for volume
            # estimates and extent computations.
            param_binding = dict(program.default_params)
        classification: Optional[CopyClassification] = None
        if self.options.liveness:
            classification = classify_copies(
                statements, live_out=self.options.live_out, data_spaces=data_spaces
            )

        plan = ScratchpadPlan(classification=classification)
        buffer_counter: Dict[str, int] = {}
        for array_name in sorted(data_spaces):
            spaces = data_spaces[array_name]
            array = spaces[0].array
            if self.options.single_buffer_per_array:
                partitions = [list(spaces)]
            else:
                partitions = partition_overlapping(spaces)
            for partition in partitions:
                decision = evaluate_reuse(
                    partition,
                    delta=self.options.delta,
                    param_binding=param_binding,
                )
                stage = decision.beneficial or self.options.target == TARGET_CELL
                if not stage:
                    plan.skipped.append((array_name, decision))
                    continue
                index = buffer_counter.get(array_name, 0)
                buffer_counter[array_name] = index + 1
                suffix = "" if index == 0 else f"_{index}"
                spec = allocate_local_buffer(
                    array,
                    partition,
                    context=self.options.context,
                    param_binding=param_binding,
                    name=f"l_{array_name}{suffix}",
                )
                generate_in = True
                generate_out = True
                if classification is not None:
                    generate_in = classification.needs_copy_in(array_name)
                    generate_out = classification.needs_copy_out(array_name)
                movement = generate_data_movement(
                    spec,
                    generate_copy_in=generate_in,
                    generate_copy_out=generate_out,
                )
                plan.buffers.append(BufferPlan(spec=spec, movement=movement, decision=decision))
        return plan

    # -- transformation -----------------------------------------------------------------
    def transform(self, program: Program, plan: Optional[ScratchpadPlan] = None) -> Program:
        """Produce the scratchpad-managed version of *program*.

        The transformed program declares the local buffers, performs copy-in,
        runs the original loop structure with accesses redirected to the
        buffers, and performs copy-out.
        """
        if plan is None:
            plan = self.plan(program)
        specs = plan.specs()
        table = build_remap_table(specs)
        remapped: Dict[str, Statement] = {
            statement.name: remap_statement(statement, table)
            for statement in program.statement_list
        }

        transformed = Program(
            name=f"{program.name}_spm",
            params=tuple(program.params),
            default_params=dict(program.default_params),
        )
        for array in program.arrays.values():
            transformed.add_array(array)
        for plan_entry in plan.buffers:
            transformed.add_array(plan_entry.local_array)
        transformed.symbol_definitions.update(program.symbol_definitions)
        for spec in specs:
            transformed.symbol_definitions.update(spec.offset_definitions)

        body = BlockNode()
        for plan_entry in plan.buffers:
            if plan_entry.movement.has_copy_in():
                body.extend(_copy_block(plan_entry.movement.copy_in).body)
                for statement in plan_entry.movement.copy_in_statements:
                    transformed.add_statement(statement)
        body.append(_clone_with_statements(program.body, remapped))
        for statement in remapped.values():
            transformed.add_statement(statement)
        for plan_entry in plan.buffers:
            if plan_entry.movement.has_copy_out():
                body.extend(_copy_block(plan_entry.movement.copy_out).body)
                for statement in plan_entry.movement.copy_out_statements:
                    transformed.add_statement(statement)
        transformed.body = body
        transformed.validate()
        return transformed

    def apply(self, program: Program) -> Tuple[Program, ScratchpadPlan]:
        """Plan and transform in one call, returning both results."""
        plan = self.plan(program)
        return self.transform(program, plan), plan


def _copy_block(node: BlockNode) -> BlockNode:
    return _copy.deepcopy(node)


def _clone_with_statements(node: Node, mapping: Mapping[str, Statement]) -> Node:
    """Deep-copy an AST, swapping each statement for its remapped version."""
    if isinstance(node, BlockNode):
        return BlockNode([_clone_with_statements(child, mapping) for child in node.body])
    if isinstance(node, LoopNode):
        return LoopNode(
            iterator=node.iterator,
            lower=node.lower,
            upper=node.upper,
            body=_clone_with_statements(node.body, mapping),
            step=node.step,
            parallel=node.parallel,
        )
    if isinstance(node, GuardNode):
        return GuardNode(
            constraints=node.constraints,
            body=_clone_with_statements(node.body, mapping),
        )
    if isinstance(node, StatementNode):
        replacement = mapping.get(node.statement.name, node.statement)
        return StatementNode(replacement, kind=node.kind)
    if isinstance(node, SyncNode):
        return SyncNode(scope=node.scope)
    raise TypeError(f"cannot clone node of type {type(node).__name__}")
