"""Automatic data management in scratchpad memories (paper Section 3).

Pipeline (one array at a time, over a program block):

1. :mod:`repro.scratchpad.data_space` — compute the data space touched by
   every affine reference (``F · I``).
2. :mod:`repro.scratchpad.partition` — group data spaces into maximal
   non-overlapping partitions (connected components of the overlap graph).
3. :mod:`repro.scratchpad.reuse` — Algorithm 1: decide whether a partition has
   enough reuse to be worth staging in the scratchpad.
4. :mod:`repro.scratchpad.allocation` — Algorithm 2: size a local buffer from
   the per-dimension bounds of the partition's convex/rectangular union.
5. :mod:`repro.scratchpad.remap` — rewrite references to target the local
   buffer (``F'(y) − g``).
6. :mod:`repro.scratchpad.movement` — generate copy-in / copy-out loop nests
   that touch each element exactly once, plus copy-volume bounds.
7. :mod:`repro.scratchpad.liveness` — (extension; the paper leaves it as
   future work) restrict copies to live data using dependence information.

:class:`repro.scratchpad.manager.ScratchpadManager` ties the steps together
and produces a transformed program.
"""

from repro.scratchpad.data_space import ReferenceDataSpace, compute_reference_data_spaces, data_space_dims
from repro.scratchpad.partition import partition_overlapping
from repro.scratchpad.reuse import ReuseDecision, evaluate_reuse
from repro.scratchpad.allocation import LocalBufferSpec, allocate_local_buffer
from repro.scratchpad.remap import build_remap_table, remap_statement
from repro.scratchpad.movement import DataMovementCode, generate_data_movement
from repro.scratchpad.liveness import CopyClassification, classify_copies
from repro.scratchpad.manager import (
    BufferPlan,
    ScratchpadManager,
    ScratchpadOptions,
    ScratchpadPlan,
)

__all__ = [
    "ReferenceDataSpace",
    "compute_reference_data_spaces",
    "data_space_dims",
    "partition_overlapping",
    "ReuseDecision",
    "evaluate_reuse",
    "LocalBufferSpec",
    "allocate_local_buffer",
    "build_remap_table",
    "remap_statement",
    "DataMovementCode",
    "generate_data_movement",
    "CopyClassification",
    "classify_copies",
    "BufferPlan",
    "ScratchpadManager",
    "ScratchpadOptions",
    "ScratchpadPlan",
]
