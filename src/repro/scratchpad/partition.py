"""Partitioning data spaces into maximal non-overlapping groups.

The paper maps this to finding connected components of an undirected graph
whose vertices are the per-reference data spaces and whose edges connect
overlapping data spaces (Section 3.1).  Each resulting partition receives its
own local-memory buffer.
"""

from __future__ import annotations

from typing import List, Sequence

import networkx as nx

from repro.scratchpad.data_space import ReferenceDataSpace


def partition_overlapping(
    spaces: Sequence[ReferenceDataSpace],
) -> List[List[ReferenceDataSpace]]:
    """Maximal groups of mutually connected (overlapping) data spaces.

    Two data spaces are connected when their polyhedra intersect; with
    parametric data spaces (tile-origin parameters) intersection is decided
    rationally over all parameter values, which errs on the side of grouping —
    the same conservative choice PolyLib-based tools make.

    The result is a partition of the input: every space appears in exactly one
    group, groups are returned in order of their first member, and spaces in
    different groups never overlap.
    """
    spaces = list(spaces)
    if not spaces:
        return []
    graph = nx.Graph()
    graph.add_nodes_from(range(len(spaces)))
    for i in range(len(spaces)):
        for j in range(i + 1, len(spaces)):
            if spaces[i].array.name != spaces[j].array.name:
                continue
            if spaces[i].data_space.intersects(spaces[j].data_space):
                graph.add_edge(i, j)
    components = [sorted(component) for component in nx.connected_components(graph)]
    components.sort(key=lambda component: component[0])
    return [[spaces[index] for index in component] for component in components]
