"""Local-memory storage allocation — Algorithm 2 of the paper.

For a partition of data spaces of array ``A`` the local buffer is an
``n``-dimensional array sized ``(ub_1 − lb_1 + 1) × ... × (ub_n − lb_n + 1)``
where ``lb_k`` / ``ub_k`` are the per-dimension bounds of the convex union of
the partition's data spaces, expressed as affine functions of the block
parameters (the paper obtains them with PIP; we use the rectangular hull with
context-aware bound resolution, see :mod:`repro.polyhedral.hull`).

The remap offset ``g = (lb_1, ..., lb_n)`` is the same lower bound; when a
bound cannot be resolved to a single affine expression it is registered as a
*derived symbol* (a quasi-affine ``min``) which the interpreter and the Python
emitter evaluate per block instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Tuple, Union

from repro.ir.arrays import LOCAL_MEMORY, Array
from repro.polyhedral.affine import AffineExpr
from repro.polyhedral.hull import RectangularHull, rectangular_hull
from repro.polyhedral.parametric import QuasiAffineBound
from repro.polyhedral.polyhedron import Polyhedron
from repro.scratchpad.data_space import ReferenceDataSpace, data_space_dims

OffsetLike = Union[AffineExpr, QuasiAffineBound]


@dataclass(frozen=True)
class LocalBufferSpec:
    """A local buffer allocated for one partition of accessed data spaces."""

    original: Array
    local: Array
    partition: Tuple[ReferenceDataSpace, ...]
    hull: RectangularHull
    dims: Tuple[str, ...]
    #: Per-dimension remap offsets as affine expressions.  When the true bound
    #: is a quasi-affine ``min``, the expression refers to a derived symbol
    #: whose definition is recorded in :attr:`offset_definitions`.
    offsets: Tuple[AffineExpr, ...]
    offset_definitions: Dict[str, QuasiAffineBound] = field(default_factory=dict)

    @property
    def extents(self) -> Tuple[int, ...]:
        shape = []
        for extent in self.local.shape:
            if isinstance(extent, AffineExpr):
                raise ValueError(
                    f"buffer {self.local.name} has a symbolic extent {extent}"
                )
            shape.append(extent)
        return tuple(shape)

    def footprint_elements(self) -> int:
        total = 1
        for extent in self.extents:
            total *= extent
        return total

    def footprint_bytes(self) -> int:
        return self.footprint_elements() * self.original.element_size

    def read_spaces(self) -> Tuple[Polyhedron, ...]:
        return tuple(s.data_space for s in self.partition if not s.is_write)

    def write_spaces(self) -> Tuple[Polyhedron, ...]:
        return tuple(s.data_space for s in self.partition if s.is_write)

    def __str__(self) -> str:
        extents = "][".join(str(extent) for extent in self.local.shape)
        offsets = ", ".join(str(offset) for offset in self.offsets)
        return f"{self.local.name}[{extents}] for {self.original.name} (offsets {offsets})"


def allocate_local_buffer(
    array: Array,
    partition: Sequence[ReferenceDataSpace],
    context: Optional[Polyhedron] = None,
    param_binding: Optional[Mapping[str, int]] = None,
    name: Optional[str] = None,
) -> LocalBufferSpec:
    """Algorithm 2 for one partition: size the buffer and compute remap offsets.

    ``context`` constrains the block parameters (tile origins, problem sizes)
    and is used both to resolve bounds to single affine expressions and to
    bound buffer extents statically.  ``param_binding`` is a fallback for
    extents that have no static bound (the extent is then computed for those
    specific parameter values).
    """
    if not partition:
        raise ValueError("cannot allocate a buffer for an empty partition")
    for space in partition:
        if space.array.name != array.name:
            raise ValueError(
                f"partition mixes arrays {space.array.name!r} and {array.name!r}"
            )
    buffer_name = name or f"l_{array.name}"
    dims = data_space_dims(array)
    hull = rectangular_hull([s.data_space for s in partition], context=context)

    offsets: list = []
    offset_definitions: Dict[str, QuasiAffineBound] = {}
    extents: list = []
    for position, dim in enumerate(dims):
        bound = hull.resolved_lower_bound(dim)
        if isinstance(bound, QuasiAffineBound):
            symbol = f"{buffer_name}_lb{position}"
            offset_definitions[symbol] = bound
            offset_expr = AffineExpr.var(symbol)
        else:
            offset_expr = bound
        offsets.append(offset_expr)

        extent = hull.allocation_extent(dim, bound)
        if extent is None:
            if param_binding is None:
                raise ValueError(
                    f"no static extent for dimension {dim!r} of buffer "
                    f"{buffer_name!r}; supply parameter values or a tighter context"
                )
            box = hull.evaluate_box(param_binding)
            low, high = box[dim]
            offset_value = (
                bound.evaluate_int(param_binding)
                if isinstance(bound, QuasiAffineBound)
                else int(bound.evaluate(param_binding))
            )
            extent = max(high - offset_value + 1, 0)
        extents.append(max(int(extent), 1))

    local = Array(
        name=buffer_name,
        shape=tuple(extents),
        dtype=array.dtype,
        memory=LOCAL_MEMORY,
        element_size=array.element_size,
    )
    return LocalBufferSpec(
        original=array,
        local=local,
        partition=tuple(partition),
        hull=hull,
        dims=dims,
        offsets=tuple(offsets),
        offset_definitions=offset_definitions,
    )
