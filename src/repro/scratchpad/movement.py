"""Generation of data-movement (copy-in / copy-out) code — paper Section 3.1.3.

For a local buffer ``L`` created for a partition of data spaces of array
``A``:

* copy-in scans the union of the data spaces accessed by *read* references
  and executes ``L[y − g] = A[y]`` at every point ``y``;
* copy-out scans the union of the data spaces accessed by *write* references
  and executes ``A[y] = L[y − g]``.

The union scanner guarantees each element is loaded/stored exactly once even
when the per-reference data spaces overlap.  The upper bound on the moved
volume — used by the tile-size search — is the sum of the rectangular-hull
footprints of the maximal non-overlapping subsets of the scanned spaces,
exactly the estimate described in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import networkx as nx

from repro.codegen.union_scan import scan_union
from repro.ir.ast import COPY_IN, COPY_OUT, BlockNode, StatementNode
from repro.ir.expressions import Load
from repro.ir.statements import Statement
from repro.polyhedral.affine import AffineExpr
from repro.polyhedral.hull import rectangular_hull
from repro.polyhedral.polyhedron import Polyhedron
from repro.scratchpad.allocation import LocalBufferSpec


@dataclass
class DataMovementCode:
    """Copy code and volume estimates for one local buffer."""

    spec: LocalBufferSpec
    copy_in: BlockNode
    copy_out: BlockNode
    copy_in_statements: List[Statement]
    copy_out_statements: List[Statement]

    def has_copy_in(self) -> bool:
        return bool(self.copy_in.body)

    def has_copy_out(self) -> bool:
        return bool(self.copy_out.body)

    def volume_in(self, param_binding: Optional[Mapping[str, int]] = None) -> int:
        """Upper bound on elements moved into the buffer per block execution.

        Zero when no copy-in code was generated (e.g. suppressed by the
        liveness analysis of Section 3.1.4).
        """
        if not self.has_copy_in():
            return 0
        return _volume_upper_bound(
            self.spec, self.spec.read_spaces(), param_binding
        )

    def volume_out(self, param_binding: Optional[Mapping[str, int]] = None) -> int:
        """Upper bound on elements moved out of the buffer per block execution.

        Zero when no copy-out code was generated.
        """
        if not self.has_copy_out():
            return 0
        return _volume_upper_bound(
            self.spec, self.spec.write_spaces(), param_binding
        )


def _volume_upper_bound(
    spec: LocalBufferSpec,
    spaces: Sequence[Polyhedron],
    param_binding: Optional[Mapping[str, int]],
) -> int:
    """Sum of hull footprints of the maximal non-overlapping subsets of *spaces*."""
    if not spaces:
        return 0
    graph = nx.Graph()
    graph.add_nodes_from(range(len(spaces)))
    for i in range(len(spaces)):
        for j in range(i + 1, len(spaces)):
            if spaces[i].intersects(spaces[j]):
                graph.add_edge(i, j)
    total = 0
    context = spec.hull._context  # same parameter context as the allocation
    for component in nx.connected_components(graph):
        members = [spaces[index] for index in sorted(component)]
        hull = rectangular_hull(members, context=context)
        volume = _static_footprint(hull, param_binding)
        total += volume
    return total


def _static_footprint(hull, param_binding: Optional[Mapping[str, int]]) -> int:
    """Footprint of a hull, preferring static extents, falling back to numeric."""
    total = 1
    for dim in hull.dims:
        bound = hull.resolved_lower_bound(dim)
        extent = hull.allocation_extent(dim, bound)
        if extent is None:
            if param_binding is None:
                raise ValueError(
                    f"cannot bound copy volume along {dim!r} without parameter values"
                )
            extents = hull.extents(param_binding)
            extent = extents[dim]
        total *= max(int(extent), 0)
    return total


def generate_data_movement(
    spec: LocalBufferSpec,
    generate_copy_in: bool = True,
    generate_copy_out: bool = True,
) -> DataMovementCode:
    """Generate copy-in / copy-out loop nests for one local buffer."""
    copy_in_statements: List[Statement] = []
    copy_out_statements: List[Statement] = []

    copy_in = BlockNode()
    if generate_copy_in and spec.read_spaces():
        copy_in = scan_union(
            spec.read_spaces(),
            lambda piece: _copy_node(spec, piece, into_local=True, statements=copy_in_statements),
        )
    copy_out = BlockNode()
    if generate_copy_out and spec.write_spaces():
        copy_out = scan_union(
            spec.write_spaces(),
            lambda piece: _copy_node(spec, piece, into_local=False, statements=copy_out_statements),
        )
    return DataMovementCode(
        spec=spec,
        copy_in=copy_in,
        copy_out=copy_out,
        copy_in_statements=copy_in_statements,
        copy_out_statements=copy_out_statements,
    )


def _copy_node(
    spec: LocalBufferSpec,
    piece: Polyhedron,
    into_local: bool,
    statements: List[Statement],
) -> StatementNode:
    """Build the loop-body statement ``L[y − g] = A[y]`` (or its reverse)."""
    dim_exprs = tuple(AffineExpr.var(dim) for dim in spec.dims)
    local_indices = tuple(
        expr - offset for expr, offset in zip(dim_exprs, spec.offsets)
    )
    local_load = Load(spec.local, local_indices)
    global_load = Load(spec.original, dim_exprs)
    direction = "in" if into_local else "out"
    name = f"copy_{direction}_{spec.local.name}_{len(statements)}"
    params = tuple(
        dict.fromkeys(tuple(piece.params) + tuple(spec.offset_definitions))
    )
    domain = Polyhedron(piece.dims, piece.constraints, params)
    if into_local:
        statement = Statement(name=name, domain=domain, lhs=local_load, rhs=global_load)
    else:
        statement = Statement(name=name, domain=domain, lhs=global_load, rhs=local_load)
    statements.append(statement)
    return StatementNode(statement, kind=COPY_IN if into_local else COPY_OUT)
