"""Dependence-based copy-in / copy-out minimisation (paper Section 3.1.4).

The paper describes — but explicitly leaves as future work — an optimisation
that copies in only data whose producing write lies *outside* the block (plus
pure-input arrays) and copies out only data read *after* the block (plus
pure-output arrays).  This module implements a sound array-granularity version
of that optimisation, used by the manager when ``liveness=True`` and evaluated
by the ``bench_ablation_liveness`` benchmark:

* **copy-in** for an array is skipped when every read of the array inside the
  block is covered by writes of the block that are guaranteed to execute
  before the reads (the reads are not upward exposed);
* **copy-out** for an array is skipped when the caller declares the array dead
  after the block (``live_out`` set).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set

from repro.ir.statements import Statement
from repro.scratchpad.data_space import ReferenceDataSpace, compute_reference_data_spaces


@dataclass(frozen=True)
class CopyClassification:
    """Which arrays need copy-in and copy-out, with human-readable reasons."""

    copy_in_arrays: Set[str]
    copy_out_arrays: Set[str]
    reasons: Dict[str, str] = field(default_factory=dict)

    def needs_copy_in(self, array_name: str) -> bool:
        return array_name in self.copy_in_arrays

    def needs_copy_out(self, array_name: str) -> bool:
        return array_name in self.copy_out_arrays


def classify_copies(
    statements: Sequence[Statement],
    live_out: Optional[Iterable[str]] = None,
    data_spaces: Optional[Mapping[str, List[ReferenceDataSpace]]] = None,
) -> CopyClassification:
    """Classify arrays of a block into copy-in / copy-out sets.

    ``live_out`` lists arrays whose values are used after the block; written
    arrays not in this set are not copied out.  When ``live_out`` is ``None``
    every written array is conservatively treated as live.
    """
    statements = list(statements)
    if data_spaces is None:
        data_spaces = compute_reference_data_spaces(statements)
    live_out_set = set(live_out) if live_out is not None else None

    copy_in: Set[str] = set()
    copy_out: Set[str] = set()
    reasons: Dict[str, str] = {}

    for array_name, spaces in data_spaces.items():
        reads = [s for s in spaces if not s.is_write]
        writes = [s for s in spaces if s.is_write]

        if reads:
            if not writes:
                copy_in.add(array_name)
                reasons[array_name] = "read-only in block (input array)"
            elif _reads_upward_exposed(reads, writes):
                copy_in.add(array_name)
                reasons[array_name] = (
                    "some reads may observe values produced outside the block"
                )
            else:
                reasons[array_name] = (
                    "all reads covered by earlier block-internal writes; copy-in skipped"
                )

        if writes:
            if live_out_set is None or array_name in live_out_set:
                copy_out.add(array_name)
                reasons.setdefault(array_name, "")
                suffix = "written and live after the block"
                reasons[array_name] = (
                    f"{reasons[array_name]}; {suffix}" if reasons[array_name] else suffix
                )
            else:
                suffix = "written but dead after the block; copy-out skipped"
                reasons[array_name] = (
                    f"{reasons.get(array_name, '')}; {suffix}".lstrip("; ")
                )
    return CopyClassification(copy_in, copy_out, reasons)


def _reads_upward_exposed(
    reads: Sequence[ReferenceDataSpace], writes: Sequence[ReferenceDataSpace]
) -> bool:
    """Could any read observe a value not produced earlier inside the block?

    A read is *not* upward exposed when (a) its data space is contained in the
    union of the write data spaces of textually earlier statements, and (b)
    those writes are not enclosed in fewer common loops than the read (so each
    written element is produced before the iteration that reads it).  The
    check is conservative: any doubt keeps the copy-in.
    """
    for read in reads:
        covering = []
        for write in writes:
            if write.statement.textual_position >= read.statement.textual_position:
                continue
            common = 0
            for a, b in zip(write.statement.domain.dims, read.statement.domain.dims):
                if a == b:
                    common += 1
                else:
                    break
            if common > 0:
                # Write and read share surrounding loops, so their instances
                # interleave; element-wise ordering is not guaranteed without a
                # full dependence-level argument — stay conservative.
                continue
            covering.append(write)
        if not covering:
            return True
        if not _covered_by(read, covering):
            return True
    return False


def _covered_by(
    read: ReferenceDataSpace, writes: Sequence[ReferenceDataSpace]
) -> bool:
    """Is the read's data space contained in the union of the writes' spaces?"""
    remaining = [read.data_space]
    from repro.codegen.union_scan import subtract

    for write in writes:
        next_remaining = []
        for piece in remaining:
            next_remaining.extend(subtract(piece, write.data_space))
        remaining = next_remaining
        if not remaining:
            return True
    return not remaining
