"""Images and preimages of polyhedra under affine functions.

``image_of_polyhedron(I, F)`` computes the data space ``F·I`` touched by an
array reference with access function ``F`` executed over iteration domain
``I`` — the central object of the paper's Section 3.  The image is obtained by
introducing the output dimensions, constraining them to equal the access
expressions, and projecting the input dimensions away with Fourier–Motzkin
elimination.  The result is the rational (convex) image; for the affine
references handled by the framework this coincides with the convex hull of the
integer image, which is exactly what PolyLib provided to the original system.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.polyhedral.affine import AffineExpr, AffineFunction
from repro.polyhedral.constraints import Constraint
from repro.polyhedral.polyhedron import Polyhedron
from repro.utils.naming import NameGenerator


def image_of_polyhedron(
    domain: Polyhedron,
    function: AffineFunction,
    output_dims: Optional[Sequence[str]] = None,
) -> Polyhedron:
    """The set ``{ F(x) : x in domain }`` as a polyhedron over *output_dims*."""
    missing = [name for name in function.inputs if name not in domain.dims]
    if missing:
        raise ValueError(
            f"access function inputs {missing} are not dimensions of the domain "
            f"{domain.dims}"
        )
    names = NameGenerator(set(domain.dims) | set(domain.params))
    if output_dims is None:
        output_dims = [names.fresh(f"d{i}") for i in range(function.output_dim)]
    else:
        output_dims = list(output_dims)
        if len(output_dims) != function.output_dim:
            raise ValueError(
                f"expected {function.output_dim} output dimension names, "
                f"got {len(output_dims)}"
            )
        clash = set(output_dims) & (set(domain.dims) | set(domain.params))
        if clash:
            raise ValueError(f"output dims clash with existing names: {sorted(clash)}")

    combined_dims = tuple(domain.dims) + tuple(output_dims)
    constraints = list(domain.constraints)
    for out_name, expr in zip(output_dims, function.outputs):
        constraints.append(Constraint.equals(AffineExpr.var(out_name), expr))
    combined = Polyhedron(combined_dims, constraints, domain.params)
    projected = combined.project_out(domain.dims)
    return Polyhedron(tuple(output_dims), projected.constraints, domain.params)


def preimage_of_polyhedron(
    data_space: Polyhedron,
    function: AffineFunction,
    input_dims: Optional[Sequence[str]] = None,
) -> Polyhedron:
    """The set ``{ x : F(x) in data_space }`` over the function's input dims."""
    if input_dims is None:
        input_dims = list(function.inputs)
    if len(data_space.dims) != function.output_dim:
        raise ValueError(
            "data space dimensionality must equal the access function's output "
            f"dimensionality ({len(data_space.dims)} vs {function.output_dim})"
        )
    substitution = dict(zip(data_space.dims, function.outputs))
    constraints = [c.substitute(substitution) for c in data_space.constraints]
    params = tuple(dict.fromkeys(tuple(data_space.params) + function.parameters))
    return Polyhedron(tuple(input_dims), constraints, params)
