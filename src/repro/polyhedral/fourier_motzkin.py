"""Fourier–Motzkin elimination over exact rational constraints.

This is the workhorse behind projection, emptiness testing, parametric bound
extraction and code generation.  The implementation favours clarity and
exactness: constraint systems in this project are small (loop depths of at
most 6–8 plus a few parameters), so the classical double-description blowup is
not a concern, but we still normalise and deduplicate aggressively after each
elimination step to keep intermediate systems small.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.polyhedral.affine import AffineExpr
from repro.polyhedral.constraints import Constraint


def remove_redundant(constraints: Iterable[Constraint]) -> List[Constraint]:
    """Cheap syntactic redundancy removal.

    * drops constraints that are trivially true,
    * deduplicates normalised constraints,
    * among inequalities sharing the same coefficient vector keeps only the
      tightest one (smallest constant), and
    * keeps a single trivially false constraint if one exists (so emptiness
      remains detectable).
    """
    result: List[Constraint] = []
    seen = set()
    tightest: Dict[Tuple, Constraint] = {}
    falsum: Constraint = None
    for constraint in constraints:
        if constraint.is_trivially_false():
            falsum = constraint
            continue
        if constraint.is_trivially_true():
            continue
        if constraint.is_equality:
            if constraint not in seen:
                seen.add(constraint)
                result.append(constraint)
            continue
        key = tuple(sorted(constraint.expr.coefficients.items()))
        existing = tightest.get(key)
        if existing is None or constraint.expr.constant < existing.expr.constant:
            tightest[key] = constraint
    result.extend(tightest.values())
    if falsum is not None:
        return [falsum]
    return result


def _substitute_equality(
    constraints: Sequence[Constraint], equality: Constraint, name: str
) -> List[Constraint]:
    """Use ``equality`` (which involves *name*) to eliminate *name* everywhere."""
    coeff = equality.coefficient(name)
    # name = -(expr - coeff*name) / coeff
    rest = equality.expr - AffineExpr({name: coeff})
    replacement = rest * (Fraction(-1) / coeff)
    substituted = []
    for constraint in constraints:
        if constraint is equality:
            continue
        if constraint.coefficient(name) != 0:
            substituted.append(constraint.substitute({name: replacement}))
        else:
            substituted.append(constraint)
    return substituted


def eliminate_variable(constraints: Sequence[Constraint], name: str) -> List[Constraint]:
    """Project the constraint system onto the variables other than *name*."""
    constraints = list(constraints)
    # Prefer substitution through an equality: it is exact and cheap.
    for constraint in constraints:
        if constraint.is_equality and constraint.coefficient(name) != 0:
            reduced = _substitute_equality(constraints, constraint, name)
            return remove_redundant(reduced)

    lower: List[Constraint] = []   # positive coefficient on `name`
    upper: List[Constraint] = []   # negative coefficient on `name`
    unrelated: List[Constraint] = []
    for constraint in constraints:
        coeff = constraint.coefficient(name)
        if coeff > 0:
            lower.append(constraint)
        elif coeff < 0:
            upper.append(constraint)
        else:
            unrelated.append(constraint)

    combined: List[Constraint] = list(unrelated)
    for low in lower:
        a = low.coefficient(name)
        for up in upper:
            b = up.coefficient(name)  # b < 0
            # a*name + r1 >= 0  and  b*name + r2 >= 0
            # =>  (-b)*r1 + a*r2 >= 0
            expr = (low.expr - AffineExpr({name: a})) * (-b) + (
                up.expr - AffineExpr({name: b})
            ) * a
            combined.append(Constraint(expr, is_equality=False))
    return remove_redundant(combined)


def eliminate(constraints: Sequence[Constraint], names: Iterable[str]) -> List[Constraint]:
    """Eliminate every variable in *names* from the system.

    Variables are eliminated cheapest-first (fewest lower×upper combinations)
    which in practice keeps intermediate systems near-minimal.
    """
    remaining = list(dict.fromkeys(names))
    system = remove_redundant(constraints)
    while remaining:
        def cost(candidate: str) -> int:
            lows = sum(1 for c in system if c.coefficient(candidate) > 0)
            ups = sum(1 for c in system if c.coefficient(candidate) < 0)
            return lows * ups

        remaining.sort(key=cost)
        name = remaining.pop(0)
        system = eliminate_variable(system, name)
        # Early exit once the system is plainly infeasible.
        if any(c.is_trivially_false() for c in system):
            return [c for c in system if c.is_trivially_false()][:1]
    return system


def is_rationally_infeasible(constraints: Sequence[Constraint]) -> bool:
    """True if the system has no rational solution.

    All variables are eliminated; the system is infeasible exactly when a
    trivially false constant constraint remains.
    """
    variables: List[str] = []
    for constraint in constraints:
        for name in constraint.variables:
            if name not in variables:
                variables.append(name)
    residual = eliminate(constraints, variables)
    return any(c.is_trivially_false() for c in residual)


def bounds_for_variable(
    constraints: Sequence[Constraint], name: str, keep: Iterable[str]
) -> Tuple[List[Tuple[AffineExpr, Fraction]], List[Tuple[AffineExpr, Fraction]]]:
    """Lower/upper bound expressions for *name* in terms of the *keep* variables.

    All variables other than *name* and those in *keep* are eliminated first.
    Each returned entry is a pair ``(expr, coeff)`` meaning
    ``name >= expr / coeff`` (lower bounds) or ``name <= expr / coeff`` (upper
    bounds) with ``coeff > 0``.
    """
    keep_set = set(keep) | {name}
    variables: List[str] = []
    for constraint in constraints:
        for var in constraint.variables:
            if var not in keep_set and var not in variables:
                variables.append(var)
    projected = eliminate(constraints, variables)
    lowers: List[Tuple[AffineExpr, Fraction]] = []
    uppers: List[Tuple[AffineExpr, Fraction]] = []
    for constraint in projected:
        for ineq in constraint.as_pair_of_inequalities():
            coeff = ineq.coefficient(name)
            if coeff == 0:
                continue
            rest = ineq.expr - AffineExpr({name: coeff})
            if coeff > 0:
                # coeff*name + rest >= 0  =>  name >= -rest/coeff
                lowers.append((-rest, coeff))
            else:
                # coeff*name + rest >= 0  =>  name <= rest/(-coeff)
                uppers.append((rest, -coeff))
    return lowers, uppers
