"""Integer-point enumeration and counting for bounded polyhedra.

The paper needs point counting in two places: estimating the *volume* of data
spaces and of their pairwise overlaps (Algorithm 1's constant-reuse test), and
estimating copy volumes (Section 3.1.3).  PolyLib/Ehrhart machinery is
replaced by direct enumeration — the sets involved per computational block are
tile-sized, so enumeration is cheap — plus closed-form bounding-box products
for the symbolic case.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from repro.polyhedral import fourier_motzkin as fm
from repro.polyhedral.polyhedron import Polyhedron
from repro.utils.frac import fraction_ceil, fraction_floor

Number = Union[int, Fraction]


def enumerate_integer_points(
    polyhedron: Polyhedron,
    param_binding: Optional[Mapping[str, Number]] = None,
    dim_order: Optional[Sequence[str]] = None,
) -> Iterator[Dict[str, int]]:
    """Yield every integer point of a bounded, fully specialised polyhedron.

    Points are produced in lexicographic order of *dim_order* (default: the
    polyhedron's own dimension order).
    """
    poly = polyhedron.specialize(param_binding or {})
    if poly.params:
        raise ValueError(
            f"all parameters must be bound to enumerate points; unbound: {poly.params}"
        )
    order = list(dim_order) if dim_order is not None else list(poly.dims)
    if set(order) != set(poly.dims):
        raise ValueError("dim_order must be a permutation of the polyhedron dims")
    if any(c.is_trivially_false() for c in poly.constraints):
        return
    yield from _enumerate(list(poly.constraints), order, {})


def _enumerate(
    constraints: List, order: List[str], partial: Dict[str, int]
) -> Iterator[Dict[str, int]]:
    if not order:
        yield dict(partial)
        return
    name = order[0]
    current = [c.substitute(partial) for c in constraints]
    if any(c.is_trivially_false() for c in current):
        return
    lowers, uppers = fm.bounds_for_variable(current, name, [])
    lower_values = [expr.constant / coeff for expr, coeff in lowers if expr.is_constant()]
    upper_values = [expr.constant / coeff for expr, coeff in uppers if expr.is_constant()]
    if not lower_values or not upper_values:
        # Either genuinely unbounded, or the remaining system is infeasible
        # (projection collapsed to a contradiction) — the latter simply has no
        # points to enumerate.
        if fm.is_rationally_infeasible(current):
            return
        raise ValueError(f"dimension '{name}' is unbounded; cannot enumerate")
    low = fraction_ceil(max(lower_values))
    high = fraction_floor(min(upper_values))
    for value in range(low, high + 1):
        partial[name] = value
        yield from _enumerate(constraints, order[1:], partial)
    partial.pop(name, None)


def count_integer_points(
    polyhedron: Polyhedron, param_binding: Optional[Mapping[str, Number]] = None
) -> int:
    """Exact number of integer points of a bounded, specialised polyhedron."""
    return sum(1 for _ in enumerate_integer_points(polyhedron, param_binding))


def bounding_box_point_count(
    polyhedron: Polyhedron, param_binding: Optional[Mapping[str, Number]] = None
) -> int:
    """Product of per-dimension extents — an upper bound on the point count.

    This is the quantity the paper uses as the local-buffer size and as the
    upper bound on copy volume (Algorithm 2 / Section 3.1.3).
    """
    box = polyhedron.bounding_box(param_binding)
    count = 1
    for low, high in box.values():
        if high < low:
            return 0
        count *= high - low + 1
    return count


def union_point_count(
    polyhedra: Sequence[Polyhedron],
    param_binding: Optional[Mapping[str, Number]] = None,
) -> int:
    """Exact number of integer points in a union of polyhedra (each counted once)."""
    seen: set = set()
    for poly in polyhedra:
        for point in enumerate_integer_points(poly, param_binding):
            seen.add(tuple(sorted(point.items())))
    return len(seen)


def intersection_point_count(
    first: Polyhedron,
    second: Polyhedron,
    param_binding: Optional[Mapping[str, Number]] = None,
) -> int:
    """Exact number of integer points in the intersection of two polyhedra."""
    if first.dims != second.dims:
        raise ValueError("intersection volume requires identical dimension tuples")
    return count_integer_points(first.intersect(second), param_binding)
